"""Table 2 — performance and resource-usage impact of stubbing/faking.

Nginx + wrk, Redis + redis-benchmark, iPerf3 + iperf client, 10
replicas each. Regenerates every signature row: write +15%, sigsuspend
-38%, brk->mmap fallbacks, close x8 descriptors, futex -66%/+94%,
pipe2 -25%, sigprocmask -15%.
"""

from __future__ import annotations

import pytest

from repro.study.impact import analyze_impacts, render_table2


def test_table2_impact_rows(benchmark):
    table = benchmark.pedantic(analyze_impacts, rounds=1, iterations=1)

    print("\n=== Table 2: stub/fake impact on perf and resources ===")
    print(render_table2(table))

    assert table.row("nginx", "write").perf_delta == pytest.approx(0.15, abs=0.03)
    assert table.row("nginx", "rt_sigsuspend").perf_delta == pytest.approx(
        -0.38, abs=0.03
    )
    assert table.row("nginx", "brk").mem_delta == pytest.approx(0.17, abs=0.03)
    assert table.row("nginx", "clone").mem_delta == pytest.approx(0.10, abs=0.03)
    assert table.row("redis", "close").fd_delta == pytest.approx(7.0, abs=0.5)
    assert table.row("redis", "munmap").mem_delta == pytest.approx(0.19, abs=0.03)
    assert table.row("redis", "rt_sigprocmask").mem_delta == pytest.approx(
        -0.15, abs=0.03
    )
    assert table.row("redis", "futex").perf_delta == pytest.approx(-0.66, abs=0.05)
    assert table.row("redis", "futex").fd_delta == pytest.approx(0.94, abs=0.08)
    assert table.row("redis", "pipe2").fd_delta == pytest.approx(-0.25, abs=0.05)
    assert table.row("iperf3", "brk").mem_delta == pytest.approx(0.11, abs=0.02)

    impacted = {row.syscall for row in table.rows}
    print(f"\nimpacted syscalls: {len(impacted)} "
          f"(paper: 3/45 perf, 4/45 mem, 3/45 fd per app — a short list)")
    assert len(impacted) <= 12
