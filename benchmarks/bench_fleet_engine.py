"""Fleet benchmark — remote executor + shared HTTP run cache.

The distributed form of ``bench_parallel_engine.py``'s claims: a
campaign dispatched to a two-worker fabric fleet, with every run
published into a campaign server's shared run cache over HTTP, must

* **conclude identically** — reports byte-identical to the strictly
  local serial analysis (the fabric is a transport, never a semantic);
* **warm the whole fleet at once** — a second campaign over the same
  server answers >50% of its requests from the shared store and
  re-executes nothing, because the cache is one store for the fleet,
  not N private files;
* **observe the fleet** — the server's ``/stats`` gauges see the
  announced workers, and its cache counters account for the campaign's
  traffic (the cold run's misses, the warm run's hits).

Numbers land in ``BENCH_fleet_engine.json`` for the CI perf archive.
``LOUPE_BENCH_APPS=N`` shrinks the corpus for smoke runs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.analyzer import Analyzer, AnalyzerConfig
from repro.core.engine import EngineStats
from repro.fabric.worker import FabricWorker
from repro.server import CampaignServer

#: Where the perf numbers land (CI uploads this file).
RESULTS_PATH = Path("BENCH_fleet_engine.json")

_RESULTS: dict = {}

WORKERS = 2


def _reduced(apps):
    """Honor ``LOUPE_BENCH_APPS=N`` (CI smoke runs a reduced corpus)."""
    limit = int(os.environ.get("LOUPE_BENCH_APPS", "0"))
    return list(apps)[:limit] if limit else list(apps)


@pytest.fixture(scope="module", autouse=True)
def _flush_results():
    yield
    if not _RESULTS:
        return
    _RESULTS["workers"] = WORKERS
    RESULTS_PATH.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True))
    print(f"\nbench results written to {RESULTS_PATH}")


def _campaign(apps, *, executor="serial", workers=(), run_cache=None):
    """Analyze every app; returns (results, summed stats, seconds)."""
    started = time.monotonic()
    results = []
    totals = EngineStats()
    for app in apps:
        with Analyzer(AnalyzerConfig(
            parallel=1 if executor == "serial" else 4,
            executor=executor,
            workers=workers,
            run_cache=run_cache,
        )) as analyzer:
            results.append(analyzer.analyze(
                app.backend(), app.workload("bench"),
                app=app.name, app_version=app.version,
            ))
            totals = totals + analyzer.engine.stats
    return results, totals, time.monotonic() - started


def _digest(results):
    return [json.dumps(r.to_dict(), sort_keys=True) for r in results]


def test_fleet_campaign_warm_cache(seven_app_set, tmp_path):
    apps = _reduced(seven_app_set)
    serial_results, _, serial_s = _campaign(apps)

    with CampaignServer(
        tmp_path / "svc", workers=1,
        run_cache=str(tmp_path / "fleet.sqlite"),
    ) as server:
        with FabricWorker(announce_url=server.url, heartbeat_s=0.2) as one, \
                FabricWorker(announce_url=server.url, heartbeat_s=0.2) as two:
            addresses = (one.address, two.address)
            deadline = time.monotonic() + 10.0
            while server.fleet.gauges()["workers"] < WORKERS:
                if time.monotonic() > deadline:
                    raise AssertionError("workers never announced")
                time.sleep(0.05)

            cold_results, cold, cold_s = _campaign(
                apps, executor="remote", workers=addresses,
                run_cache=server.url,
            )
            warm_results, warm, warm_s = _campaign(
                apps, executor="remote", workers=addresses,
                run_cache=server.url,
            )
            gauges = server.fleet.gauges()
            counters = server.cache.counters()

    print(f"\n=== Fleet campaign: {len(apps)} apps, {WORKERS} workers, "
          f"shared HTTP cache ===")
    print(f"serial (local, no cache): {serial_s:6.2f}s")
    print(f"cold fleet campaign:      {cold_s:6.2f}s  [{cold.describe()}]")
    print(f"warm fleet campaign:      {warm_s:6.2f}s  [{warm.describe()}]")
    print(f"warm persistent hit rate: {warm.persistent_hit_rate:.0%}")
    print(f"fleet gauges: {gauges}; cache counters: {counters}")

    _RESULTS["fleet_campaign"] = {
        "apps": len(apps),
        "serial_s": round(serial_s, 3),
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "cold_runs_executed": cold.runs_executed,
        "warm_runs_executed": warm.runs_executed,
        "warm_persistent_hit_rate": round(warm.persistent_hit_rate, 3),
        "cache_counters": counters,
        "fleet_workers_seen": gauges["workers"],
    }

    # The fabric is a scheduling choice: identical conclusions.
    assert _digest(cold_results) == _digest(serial_results)
    assert _digest(warm_results) == _digest(serial_results)
    # The shared store warms the fleet: nothing re-executes.
    assert cold.runs_executed > 0
    assert warm.runs_executed == 0, "warm fleet campaign re-executed runs"
    assert warm.persistent_hit_rate > 0.5, (
        f"only {warm.persistent_hit_rate:.0%} persistent hits"
    )
    # Observability: both workers were announced; the cache surface
    # accounted for the campaigns' traffic.
    assert gauges["workers"] == WORKERS
    assert counters["hits"] > 0 and counters["misses"] > 0
