"""Extension benches: beyond the paper's evaluation.

* **knowledge transfer** (paper Section 6 future work): priors learned
  from the corpus shrink a fresh application's analysis; we measure
  runs saved and verify decisions are unchanged.
* **pseudo-file usage** (set aside in the paper "for space reasons"):
  corpus-wide special-file usage and how much of it actually needs an
  implementation.
"""

from __future__ import annotations

from repro.api.session import AnalysisRequest, LoupeSession
from repro.appsim.corpus import cloud_apps, corpus
from repro.core.analyzer import AnalyzerConfig
from repro.core.transfer import PriorKnowledge
from repro.study.base import analyze_apps
from repro.study.pseudofiles_study import pseudo_file_study, render_pseudo_files


class _CountingBackend:
    def __init__(self, inner):
        self._inner = inner
        self.name = inner.name
        self.runs = 0

    def run(self, workload, policy, *, replica=0):
        self.runs += 1
        return self._inner.run(workload, policy, replica=replica)


def test_extension_knowledge_transfer(benchmark, full_corpus, corpus_bench_results):
    priors = PriorKnowledge.from_results(corpus_bench_results)
    target = full_corpus[30]

    plain_backend = _CountingBackend(target.backend())
    plain_result = LoupeSession(config=AnalyzerConfig(replicas=3)).analyze(
        AnalysisRequest.for_target(plain_backend, target.bench,
                                   app=target.name)
    )

    def transfer_analysis():
        backend = _CountingBackend(target.backend())
        session = LoupeSession(
            config=AnalyzerConfig(replicas=3, priors=priors)
        )
        result = session.analyze(
            AnalysisRequest.for_target(backend, target.bench,
                                       app=target.name)
        )
        return backend, session, result

    backend, session, result = benchmark.pedantic(
        transfer_analysis, rounds=3, iterations=1
    )
    stats = session.last_transfer_stats

    print("\n=== Extension: cross-application knowledge transfer ===")
    print(f"priors learned from {len(corpus_bench_results)} analyses "
          f"({len(priors)} features, "
          f"{len(priors.confident_features())} confidently predictable)")
    print(f"fresh app {target.name}: {plain_backend.runs} runs without "
          f"priors vs {backend.runs} with "
          f"({stats.runs_saved} saved, "
          f"{stats.fast_path_rate:.0%} of features fast-pathed, "
          f"{stats.fallbacks} fallbacks)")

    assert result.required_syscalls() == plain_result.required_syscalls()
    assert result.avoidable_syscalls() == plain_result.avoidable_syscalls()
    assert backend.runs < plain_backend.runs
    assert stats.fast_path_rate > 0.3


def test_extension_pseudo_files(benchmark):
    study = benchmark.pedantic(
        pseudo_file_study, args=(cloud_apps(),), rounds=1, iterations=1
    )

    print("\n=== Extension: pseudo-file usage (cloud apps) ===")
    print(render_pseudo_files(study))

    paths = {row.path for row in study.rows}
    assert "/dev/urandom" in paths
    total_using = sum(r.apps_using for r in study.rows)
    total_requiring = sum(r.apps_requiring for r in study.rows)
    assert total_requiring < total_using  # most special files fail soft


def test_extension_range_split(benchmark, corpus_bench_results):
    """Section 5.2's range insight over the whole corpus: modern
    (high-numbered) syscalls are the better stub/fake candidates."""
    from repro.study.ranges import range_study, render_ranges

    study = benchmark(range_study, corpus_bench_results)

    print("\n=== Section 5.2: low-range vs high-range avoidability ===")
    print(render_ranges(study))

    assert study.modern_syscalls_easier_to_avoid
    assert study.low.used > study.high.used
