"""Shared fixtures for the benchmark harness.

Every bench regenerates one table or figure from the paper's
evaluation. Analyses are memoized process-wide (the loupedb pattern),
so the first bench touching the corpus pays the analysis cost and the
rest measure their own computation.
"""

from __future__ import annotations

import pytest

from repro.appsim.corpus import cloud_apps, corpus, seven_apps


@pytest.fixture(scope="session")
def cloud_app_set():
    return cloud_apps()


@pytest.fixture(scope="session")
def seven_app_set():
    return seven_apps()


@pytest.fixture(scope="session")
def full_corpus():
    return corpus()


@pytest.fixture(scope="session")
def corpus_bench_results(full_corpus):
    from repro.study.base import analyze_apps

    return analyze_apps(full_corpus, "bench")
