"""Real-substrate bench: live ptrace interposition on /bin/echo.

Measures the tracing overhead of the ptrace backend and revalidates
the paper's core mechanism on a real binary: stubbing write fails the
program, faking write silences it successfully, and the static binary
scanner overestimates what the dynamic trace observes.
"""

from __future__ import annotations

import pytest

from repro.core.policy import faking, passthrough, stubbing
from repro.ptracer.ctypes_bindings import ptrace_works
from repro.ptracer.tracer import SyscallTracer

pytestmark = pytest.mark.skipif(
    not ptrace_works(), reason="ptrace unavailable in this environment"
)


def _trace_echo():
    return SyscallTracer(passthrough()).run(["/bin/echo", "bench"])


def test_real_trace_overhead(benchmark):
    outcome = benchmark.pedantic(_trace_echo, rounds=5, iterations=1)

    distinct = sorted(k for k in outcome.traced if ":" not in k)
    print("\n=== Real ptrace: /bin/echo under passthrough ===")
    print(f"exit={outcome.exit_code} distinct syscalls={len(distinct)}")
    print(", ".join(distinct))
    assert outcome.exit_code == 0
    assert "execve" in outcome.traced
    assert "write" in outcome.traced


def test_real_stub_vs_fake(benchmark):
    def run_both():
        stubbed = SyscallTracer(stubbing("write")).run(["/bin/echo", "x"])
        faked = SyscallTracer(faking("write")).run(["/bin/echo", "x"])
        return stubbed, faked

    stubbed, faked = benchmark.pedantic(run_both, rounds=3, iterations=1)
    print("\n=== Real ptrace: stub vs fake write on /bin/echo ===")
    print(f"stub write -> exit {stubbed.exit_code} (echo notices the failure)")
    print(f"fake write -> exit {faked.exit_code} (the lie goes unnoticed)")
    assert stubbed.exit_code != 0
    assert faked.exit_code == 0
