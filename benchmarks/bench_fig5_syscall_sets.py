"""Figure 5 — which syscalls each analysis method identifies.

Four panels over the seven benchmark-driven apps: static binary,
static source, dynamically traced, Loupe-required. Each panel lists
syscall numbers with the fraction of apps identifying them; coverage
shrinks monotonically from static binary down to required.
"""

from __future__ import annotations

import pytest

from repro.study.base import analyze_apps
from repro.study.importance import render_figure5_row, syscall_sets
from repro.syscalls import number_of


def test_fig5_syscall_sets(benchmark, seven_app_set):
    results = analyze_apps(seven_app_set, "bench")
    views = benchmark.pedantic(
        syscall_sets, args=(seven_app_set, results), rounds=3, iterations=1
    )

    print("\n=== Figure 5: syscalls identified per method (bench) ===")
    for method in (
        "static-binary", "static-source", "dynamic-traced", "dynamic-required"
    ):
        print()
        print(render_figure5_row(views[method]))

    binary = views["static-binary"]
    source = views["static-source"]
    traced = views["dynamic-traced"]
    required = views["dynamic-required"]

    assert (
        binary.total_syscalls() > source.total_syscalls()
        > traced.total_syscalls() > required.total_syscalls()
    )

    # The fundamentally-required core sits at 100% in the required
    # panel (Section 5.2: execve, mmap, read); the socket family sits
    # at 6/7 — SQLite is the one subject without a network stack.
    for name in ("execve", "mmap", "read"):
        assert required.importance_of(name) == 1.0, name
    for name in ("socket", "bind", "listen"):
        assert required.importance_of(name) == pytest.approx(6 / 7), name

    # Identity management: traced everywhere, required almost nowhere
    # (webfsd being the exception the paper's Kerla plan shows).
    assert traced.importance_of("getuid") > required.importance_of("getuid")

    # Every required syscall is traced; every traced syscall is in the
    # static views of at least the apps that trace it.
    for name in required.fractions:
        assert traced.importance_of(name) >= required.importance_of(name)

    # Sanity of the rendering: numbers must resolve.
    for name in binary.fractions:
        assert number_of(name) >= 0
