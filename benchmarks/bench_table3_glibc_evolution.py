"""Table 3 — Nginx 0.3.19 syscall usage across 17 years of glibc.

glibc 2.3.2 / 32-bit (48 syscalls) vs glibc 2.31 / 64-bit (51), with
the delta classified into architecture variants, genuinely new
syscalls (the paper counts exactly 8), and deprecations.
"""

from __future__ import annotations

from repro.study.evolution import glibc_comparison, render_table3


def test_table3_glibc_comparison(benchmark):
    comparison = benchmark(glibc_comparison)

    print("\n=== Table 3: Nginx 0.3.19 under two glibc generations ===")
    print(render_table3(comparison))

    assert comparison.old_count == 48
    assert comparison.new_count == 51
    assert len(comparison.genuinely_new) == 8
    assert comparison.genuinely_new == {
        "_sysctl", "lstat", "mprotect", "openat", "prlimit64",
        "sendfile", "set_robust_list", "set_tid_address",
    }
    assert {"open", "uname", "gettimeofday", "getrlimit"} == set(
        comparison.deprecated
    )
    assert comparison.arch_variants["mmap2"] == "mmap"
    assert comparison.arch_variants["set_thread_area"] == "arch_prctl"
