"""Ablation benches for the design choices DESIGN.md calls out.

Three ablations:

* **replica count** — the paper defaults to 3 replicas with
  conservative merging; fewer replicas risk optimistic decisions,
  more cost linearly. We measure both the cost scaling and the
  decision stability.
* **metric guarding** — disabling Section 5.3's impact tracking makes
  analysis cheaper but silently loses the futex/-66% class of red
  flags.
* **final confirmation run** — skipping the combined run (and its
  bisection) would have accepted a per-feature analysis that does not
  compose; we count how often that safety net matters on a
  conflict-prone program.
"""

from __future__ import annotations

from repro.api.session import AnalysisRequest, LoupeSession
from repro.appsim.backend import SimBackend
from repro.appsim.behavior import abort, breaks_core, fallback, harmless, ignore
from repro.appsim.corpus import build
from repro.appsim.program import SimProgram, SyscallOp, WorkloadProfile
from repro.core.analyzer import AnalyzerConfig
from repro.core.workload import health_check


def _analyze_with(replicas: int, guard: bool):
    # One fresh session per config: ablations must never share records.
    session = LoupeSession(
        config=AnalyzerConfig(replicas=replicas, guard_metrics=guard)
    )
    return session.analyze(build("weborf"))


def test_ablation_replica_count(benchmark):
    result_one = _analyze_with(1, True)
    result_five = _analyze_with(5, True)
    timed = benchmark.pedantic(
        _analyze_with, args=(3, True), rounds=1, iterations=1
    )

    print("\n=== Ablation: replica count ===")
    for label, result in (("1", result_one), ("3", timed), ("5", result_five)):
        print(
            f"replicas={label}: required={len(result.required_syscalls())} "
            f"avoidable={len(result.avoidable_syscalls())}"
        )
    # The simulator is deterministic modulo seeded noise, so decisions
    # must be stable across replica counts — the cost is what varies.
    assert result_one.required_syscalls() == timed.required_syscalls()
    assert result_five.required_syscalls() == timed.required_syscalls()


def test_ablation_metric_guarding(benchmark):
    guarded = _analyze_with(3, True)
    unguarded = benchmark.pedantic(
        _analyze_with, args=(3, False), rounds=1, iterations=1
    )

    flagged = [r.feature for r in guarded.impacted_features()]
    print("\n=== Ablation: metric guarding ===")
    print(f"guarded run flags {len(flagged)} feature(s): {flagged}")
    print("unguarded run flags "
          f"{len(unguarded.impacted_features())} feature(s)")
    assert flagged, "guarding should catch weborf's close/fd shift"
    assert not unguarded.impacted_features()
    # Decisions themselves are identical — guarding is advisory.
    assert unguarded.required_syscalls() == guarded.required_syscalls()


def _conflict_program() -> SimProgram:
    inner = SyscallOp(syscall="mmap", on_stub=abort(), on_fake=breaks_core())
    return SimProgram(
        name="conflict-ablation",
        version="1",
        ops=(
            SyscallOp(syscall="mremap", on_stub=fallback(inner),
                      on_fake=harmless()),
            SyscallOp(
                syscall="mmap",
                on_stub=fallback(
                    SyscallOp(syscall="mremap", on_stub=abort(),
                              on_fake=breaks_core())
                ),
                on_fake=breaks_core(),
            ),
            SyscallOp(syscall="close", on_stub=ignore(), on_fake=harmless()),
        ),
        profiles={"*": WorkloadProfile()},
    )


def test_ablation_final_confirmation(benchmark):
    backend = SimBackend(_conflict_program())
    request = AnalysisRequest.for_target(backend, health_check("health"))

    def with_bisection():
        session = LoupeSession(
            config=AnalyzerConfig(bisect_conflicts=True)
        )
        return session.analyze(request)

    checked = benchmark.pedantic(with_bisection, rounds=1, iterations=1)
    unchecked = LoupeSession(
        config=AnalyzerConfig(bisect_conflicts=False)
    ).analyze(request)

    print("\n=== Ablation: final combined run + bisection ===")
    print(f"with bisection: final_ok={checked.final_run_ok} "
          f"conflicts={checked.conflicts}")
    print(f"without: final_ok={unchecked.final_run_ok} (analysis unusable)")
    assert checked.final_run_ok
    assert checked.conflicts
    assert not unchecked.final_run_ok
