"""Figure 4 — syscalls per analysis method for the seven-app set.

Static source/binary vs dynamically traced (required / stubbable /
fakeable / any), for benchmarks and full test suites. Paper aggregate:
46% of suite syscalls and 60% of benchmark syscalls avoid
implementation; Redis headline 103 static-binary / 68 suite-traced /
42 suite-required / 20 bench-required.
"""

from __future__ import annotations

import pytest

from repro.study.methods import figure4, render_figure4


def test_fig4_analysis_methods(benchmark, seven_app_set):
    fig = benchmark.pedantic(
        figure4, args=(seven_app_set,), rounds=1, iterations=1
    )

    print("\n=== Figure 4: syscalls per analysis method ===")
    print(render_figure4(fig))

    assert fig.mean_avoidable_fraction("bench") == pytest.approx(0.60, abs=0.08)
    assert fig.mean_avoidable_fraction("suite") == pytest.approx(0.46, abs=0.10)

    redis_suite = fig.for_app("redis", "suite")
    redis_bench = fig.for_app("redis", "bench")
    assert redis_suite.static_binary == 103
    assert 60 <= redis_suite.traced <= 78
    assert 30 <= redis_suite.required <= 48
    assert 14 <= redis_bench.required <= 24

    for row in fig.rows:
        assert row.static_binary >= row.static_source
        assert row.traced >= row.required
        assert row.required + row.avoidable >= row.traced  # partition

    # Per-app extremes from Section 5.2.
    suite_fractions = {
        row.app: row.avoidable_fraction
        for row in fig.rows
        if row.workload == "suite"
    }
    assert min(suite_fractions, key=suite_fractions.get) == "nginx"
    bench_fractions = {
        row.app: row.avoidable_fraction
        for row in fig.rows
        if row.workload == "bench"
    }
    assert max(bench_fractions, key=bench_fractions.get) == "haproxy"
