"""Table 1 — step-by-step support plans for Unikraft, Fuchsia, Kerla.

Regenerates the paper's plans for the 15 cloud apps: initial coverage
(12/10/4 apps), step counts (3/5/11), and the 1-3-syscalls-per-step
property; also prints the full-corpus plan sizes quoted in Section 4.1.
"""

from __future__ import annotations

from repro.plans import (
    generate_plan,
    render_plan,
    requirements_for_all,
    table1_states,
)


def _generate_all(requirements):
    states = table1_states(requirements)
    return {
        name: generate_plan(state, requirements)
        for name, state in states.items()
    }


def test_table1_support_plans(benchmark, cloud_app_set):
    requirements = requirements_for_all(cloud_app_set, "bench")
    plans = benchmark.pedantic(
        _generate_all, args=(requirements,), rounds=3, iterations=1
    )

    print("\n=== Table 1: step-by-step support plans for 3 OSes ===")
    for name, plan in plans.items():
        print()
        print(render_plan(plan))

    expected = {"unikraft": (12, 3), "fuchsia": (10, 5), "kerla": (4, 11)}
    for name, (initial, steps) in expected.items():
        plan = plans[name]
        assert len(plan.initially_supported) == initial, name
        assert len(plan.steps) == steps, name
        assert plan.steps[-1].app == "mongodb"

    small = sum(
        sum(1 for s in plan.steps if len(s.implement) <= 3)
        for plan in plans.values()
    )
    total = sum(len(plan.steps) for plan in plans.values())
    print(f"\nsteps implementing <=3 syscalls: {small}/{total} "
          f"({small / total:.0%}; paper: >80%)")
    assert small / total >= 0.75


def test_table1_full_corpus_plan_sizes(benchmark, full_corpus, cloud_app_set):
    """Section 4.1: full plans over all 116 apps are much longer —
    35 steps for Fuchsia, 32 for Unikraft, 79 for Kerla."""
    cloud_requirements = requirements_for_all(cloud_app_set, "bench")
    all_requirements = requirements_for_all(full_corpus, "bench")
    states = table1_states(cloud_requirements)

    def run():
        return {
            name: generate_plan(state, all_requirements)
            for name, state in states.items()
        }

    plans = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Section 4.1: full-corpus plan sizes (116 apps) ===")
    for name, plan in plans.items():
        print(
            f"{name:<10} initial={len(plan.initially_supported):>3} apps, "
            f"{len(plan.steps):>3} steps, "
            f"{plan.total_implemented:>3} syscalls implemented"
        )
    # Maturity ordering: Kerla needs by far the most steps.
    assert len(plans["kerla"].steps) > len(plans["fuchsia"].steps)
    assert len(plans["kerla"].steps) > len(plans["unikraft"].steps)
