"""Probe-engine benchmark — serial vs parallel scheduling + run caching.

The paper's run-time model (Section 3.3) is ``(2 + 2·t·s)·ceil(r/p)``:
Loupe amortizes its run cost over a parallelism factor ``p``. This
bench makes ``p`` observable in our reproduction:

* **speedup** — the seven-app corpus is analyzed once with the seed's
  strictly-serial semantics (``parallel=1``, cache and early-exit off)
  and once with the full engine (``parallel=4`` replica fan-out plus
  4 app-level jobs). Simulated runs complete in microseconds, so each
  run is padded with a small sleep modeling real workload wall time
  (the paper quotes 4 minutes to 1.5 days per analysis — run latency,
  not scheduler CPU, is what the engine hides).
* **equivalence** — both configurations must produce byte-identical
  ``AnalysisResult``s: the engine changes how fast an analysis runs,
  never what it concludes.
* **cache hits** — a crafted conflicting program (the Section 5.2
  ``mremap``/``mmap`` fallback interaction) forces the combined-run
  confirmation and ddmin bisection stages, which must be answered
  partly from the probe-phase run cache.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ThreadPoolExecutor

from repro.appsim.backend import SimBackend
from repro.appsim.behavior import abort, breaks_core, fallback, harmless, ignore
from repro.appsim.program import SimProgram, SyscallOp, WorkloadProfile
from repro.core.analyzer import Analyzer, AnalyzerConfig, estimated_runtime_s
from repro.core.engine import EngineStats
from repro.core.workload import health_check

#: Wall-clock cost added to every simulated run. Real workloads run for
#: seconds to hours; a few milliseconds keeps the bench honest about
#: scheduling overlap while finishing quickly.
RUN_COST_S = 0.003

#: Worker-pool width under test (the acceptance point of this bench).
PARALLEL = 4


class _TimedBackend:
    """Wraps a backend so every run costs ``RUN_COST_S`` of wall time."""

    def __init__(self, inner):
        self._inner = inner
        self.name = inner.name
        self.deterministic = getattr(inner, "deterministic", False)
        self.parallel_safe = getattr(inner, "parallel_safe", False)

    def run(self, workload, policy, *, replica=0):
        time.sleep(RUN_COST_S)
        return self._inner.run(workload, policy, replica=replica)


def _analyze_corpus(apps, workload_name, *, parallel, jobs, cache, early_exit):
    """Analyze every app with fresh timed backends; returns (results, stats)."""

    def one(app):
        analyzer = Analyzer(AnalyzerConfig(
            parallel=parallel, cache=cache, early_exit=early_exit,
        ))
        result = analyzer.analyze(
            _TimedBackend(app.backend()), app.workload(workload_name),
            app=app.name, app_version=app.version,
        )
        return result, analyzer.engine.stats

    if jobs == 1:
        pairs = [one(app) for app in apps]
    else:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            pairs = list(pool.map(one, apps))
    results = [result for result, _ in pairs]
    totals = EngineStats(
        runs_requested=sum(s.runs_requested for _, s in pairs),
        runs_executed=sum(s.runs_executed for _, s in pairs),
        cache_hits=sum(s.cache_hits for _, s in pairs),
        replicas_skipped=sum(s.replicas_skipped for _, s in pairs),
    )
    return results, totals


def _digest(results):
    return [json.dumps(r.to_dict(), sort_keys=True) for r in results]


def test_parallel_engine_speedup(seven_app_set):
    started = time.monotonic()
    serial_results, serial_stats = _analyze_corpus(
        seven_app_set, "bench",
        parallel=1, jobs=1, cache=False, early_exit=False,
    )
    serial_s = time.monotonic() - started

    started = time.monotonic()
    parallel_results, parallel_stats = _analyze_corpus(
        seven_app_set, "bench",
        parallel=PARALLEL, jobs=PARALLEL, cache=True, early_exit=True,
    )
    parallel_s = time.monotonic() - started
    speedup = serial_s / parallel_s

    print("\n=== Parallel probe engine: seven-app corpus (bench) ===")
    print(f"run cost model: {RUN_COST_S * 1000:.1f} ms per run")
    print(f"serial   (p=1, no cache, no early-exit): {serial_s:6.2f}s  "
          f"[{serial_stats.describe()}]")
    print(f"parallel (p={PARALLEL}, {PARALLEL} jobs, cache, early-exit): "
          f"{parallel_s:6.2f}s  [{parallel_stats.describe()}]")
    print(f"speedup: {speedup:.2f}x")
    model = estimated_runtime_s(1.0, 40, replicas=3, parallel=1) / \
        estimated_runtime_s(1.0, 40, replicas=3, parallel=3)
    print(f"(paper model predicts {model:.0f}x from replica fan-out alone)")

    # The engine only reschedules runs — it must not change conclusions.
    assert _digest(parallel_results) == _digest(serial_results)
    # The acceptance point: >= 2x wall-clock at parallelism 4.
    assert speedup >= 2.0, f"only {speedup:.2f}x at parallel={PARALLEL}"


def _conflicting_program():
    """Two individually-stubbable syscalls whose stubs conflict (S5.2)."""

    def op(syscall, **kwargs):
        kwargs.setdefault("on_stub", ignore())
        kwargs.setdefault("on_fake", harmless())
        return SyscallOp(syscall=syscall, **kwargs)

    inner = op("mmap", on_stub=abort(), on_fake=breaks_core())
    return SimProgram(
        name="conflicted",
        version="1",
        ops=(
            op("mremap", on_stub=fallback(inner), on_fake=harmless()),
            op("mmap", on_stub=fallback(
                op("mremap", on_stub=abort(), on_fake=breaks_core())
            ), on_fake=breaks_core()),
            op("close", on_stub=ignore(), on_fake=harmless()),
        ),
        features=frozenset({"core"}),
        profiles={"*": WorkloadProfile(metric=1000.0)},
    )


def test_bisection_cache_hit_rate():
    cached = Analyzer(AnalyzerConfig(cache=True))
    result = cached.analyze(
        SimBackend(_conflicting_program()), health_check("health")
    )
    uncached = Analyzer(AnalyzerConfig(cache=False))
    uncached.analyze(
        SimBackend(_conflicting_program()), health_check("health")
    )
    hot = cached.engine.stats
    cold = uncached.engine.stats

    print("\n=== Run cache during combined confirmation + ddmin bisection ===")
    print(f"cache on : {hot.describe()}")
    print(f"cache off: {cold.describe()}")

    assert result.final_run_ok and result.conflicts
    assert hot.cache_hits > 0, "bisection must reuse probe-phase runs"
    assert hot.hit_rate > 0.0
    assert hot.runs_executed < cold.runs_executed
