"""Probe-engine benchmark — executor sharding + run caching.

The paper's run-time model (Section 3.3) is ``(2 + 2·t·s)·ceil(r/p)``:
Loupe amortizes its run cost over a parallelism factor ``p``. This
bench makes ``p`` observable in our reproduction, across all three
executors and both cache tiers:

* **thread speedup** — the seven-app corpus is analyzed once with the
  seed's strictly-serial semantics (``parallel=1``, cache and
  early-exit off) and once with the threaded engine (``parallel=4``
  replica fan-out plus 4 app-level jobs). Simulated runs complete in
  microseconds, so each run is padded with a small sleep modeling real
  workload wall time (the paper quotes 4 minutes to 1.5 days per
  analysis — run latency, not scheduler CPU, is what threads hide).
* **process speedup** — the same corpus with run cost modeled as
  *GIL-bound compute*: a process-local lock stands in for the GIL, so
  in-process worker threads serialize exactly as pure-Python compute
  does, while worker processes proceed independently. The measured
  overlap therefore depends only on the engine's sharding — not on
  how many cores the bench machine happens to have. The acceptance
  gate is ``executor="process"`` beating the thread path >= 2x at 4
  shards.
* **equivalence** — every configuration must produce byte-identical
  ``AnalysisResult``s: the engine changes how fast an analysis runs,
  never what it concludes.
* **cache hits** — a crafted conflicting program (the Section 5.2
  ``mremap``/``mmap`` fallback interaction) forces the combined-run
  confirmation and ddmin bisection stages, which must be answered
  partly from the probe-phase run cache.
* **persistent cache** — a campaign writes its runs to an on-disk
  run-cache store (:mod:`repro.core.cachestore`; both the JSONL and
  the SQLite backend are measured); a second campaign over the same
  path must answer >50% of its requests from disk without
  re-executing anything.
* **compaction** — ``compact()`` on a duplicate-heavy JSONL cache
  must reclaim the superseded bulk while preserving every live key
  (the ratio lands in the JSON as ``compaction.ratio``).

Every test records its numbers into ``BENCH_parallel_engine.json``
(wall-clock per executor, cache hit rates) so CI can archive the perf
trajectory. ``LOUPE_BENCH_APPS=N`` shrinks the corpus for smoke runs;
the speedup gates relax accordingly.
"""

from __future__ import annotations

import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.api.session import AnalysisRequest, LoupeSession
from repro.appsim.backend import SimBackend
from repro.appsim.behavior import abort, breaks_core, fallback, harmless, ignore
from repro.appsim.program import SimProgram, SyscallOp, WorkloadProfile
from repro.core.analyzer import Analyzer, AnalyzerConfig, estimated_runtime_s
from repro.core.engine import EngineStats
from repro.core.workload import health_check

#: Wall-clock cost added to every simulated run. Real workloads run for
#: seconds to hours; a few milliseconds keeps the bench honest about
#: scheduling overlap while finishing quickly.
RUN_COST_S = 0.003

#: Worker-pool width under test (the acceptance point of this bench).
PARALLEL = 4

#: Where the perf numbers land (CI uploads this file).
RESULTS_PATH = Path("BENCH_parallel_engine.json")

#: Collected across tests; flushed to RESULTS_PATH at module teardown.
_RESULTS: dict = {}


def _reduced(apps):
    """Honor ``LOUPE_BENCH_APPS=N`` (CI smoke runs a reduced corpus)."""
    limit = int(os.environ.get("LOUPE_BENCH_APPS", "0"))
    return list(apps)[:limit] if limit else list(apps)


@pytest.fixture(scope="module", autouse=True)
def _flush_results():
    yield
    if not _RESULTS:
        return
    _RESULTS["run_cost_s"] = RUN_COST_S
    _RESULTS["parallel"] = PARALLEL
    RESULTS_PATH.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True))
    print(f"\nbench results written to {RESULTS_PATH}")


class _TimedBackend:
    """Wraps a backend so every run costs ``RUN_COST_S`` of wall time
    (latency-bound: sleeps release the GIL, so threads overlap it)."""

    def __init__(self, inner):
        self._inner = inner
        self.name = inner.name

    def capabilities(self):
        from repro.core.runner import capabilities_of

        return capabilities_of(self._inner)

    def run(self, workload, policy, *, replica=0):
        time.sleep(RUN_COST_S)
        return self._inner.run(workload, policy, replica=replica)


#: One lock per process: the stand-in GIL of :class:`_GilBoundBackend`.
#: Keyed by PID so a forked worker never inherits the parent's lock
#: state — each process contends only with its own threads, exactly
#: like the real GIL.
_GIL_MODELS: dict[int, threading.Lock] = {}


def _gil_model() -> threading.Lock:
    pid = os.getpid()
    lock = _GIL_MODELS.get(pid)
    if lock is None:
        lock = _GIL_MODELS.setdefault(pid, threading.Lock())
    return lock


class _GilBoundBackend:
    """Wraps a backend so every run costs ``RUN_COST_S`` of *GIL-bound*
    time: within one process the cost serializes across threads (a
    process-local lock models the GIL on pure-Python compute), while
    separate worker processes pay it concurrently. This isolates what
    the process executor buys from how many cores the host exposes —
    on any machine, threads cannot overlap this cost and processes
    can, which is precisely the contention the appsim backend's
    CPU-bound simulation hits at scale."""

    def __init__(self, inner):
        self._inner = inner
        self.name = inner.name

    def capabilities(self):
        from repro.core.runner import capabilities_of

        return capabilities_of(self._inner)

    def run(self, workload, policy, *, replica=0):
        with _gil_model():
            time.sleep(RUN_COST_S)
        return self._inner.run(workload, policy, replica=replica)


def _analyze_corpus(
    apps, workload_name, *,
    parallel, jobs, cache, early_exit,
    executor="auto", wrap=_TimedBackend,
):
    """Analyze every app with fresh wrapped backends; returns (results, stats)."""

    def one(app):
        analyzer = Analyzer(AnalyzerConfig(
            parallel=parallel, cache=cache, early_exit=early_exit,
            executor=executor,
        ))
        backend = app.backend() if wrap is None else wrap(app.backend())
        result = analyzer.analyze(
            backend, app.workload(workload_name),
            app=app.name, app_version=app.version,
        )
        return result, analyzer.engine.stats

    if jobs == 1:
        pairs = [one(app) for app in apps]
    else:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            pairs = list(pool.map(one, apps))
    results = [result for result, _ in pairs]
    totals = sum((stats for _, stats in pairs), EngineStats())
    return results, totals


def _digest(results):
    return [json.dumps(r.to_dict(), sort_keys=True) for r in results]


def test_parallel_engine_speedup(seven_app_set):
    apps = _reduced(seven_app_set)
    started = time.monotonic()
    serial_results, serial_stats = _analyze_corpus(
        apps, "bench",
        parallel=1, jobs=1, cache=False, early_exit=False,
    )
    serial_s = time.monotonic() - started

    started = time.monotonic()
    parallel_results, parallel_stats = _analyze_corpus(
        apps, "bench",
        parallel=PARALLEL, jobs=PARALLEL, cache=True, early_exit=True,
    )
    parallel_s = time.monotonic() - started
    speedup = serial_s / parallel_s

    print(f"\n=== Thread sharding: {len(apps)}-app corpus (bench) ===")
    print(f"run cost model: {RUN_COST_S * 1000:.1f} ms of latency per run")
    print(f"serial   (p=1, no cache, no early-exit): {serial_s:6.2f}s  "
          f"[{serial_stats.describe()}]")
    print(f"threads  (p={PARALLEL}, {PARALLEL} jobs, cache, early-exit): "
          f"{parallel_s:6.2f}s  [{parallel_stats.describe()}]")
    print(f"speedup: {speedup:.2f}x")
    model = estimated_runtime_s(1.0, 40, replicas=3, parallel=1) / \
        estimated_runtime_s(1.0, 40, replicas=3, parallel=3)
    print(f"(paper model predicts {model:.0f}x from replica fan-out alone)")

    _RESULTS["thread"] = {
        "apps": len(apps),
        "serial_s": round(serial_s, 3),
        "thread_s": round(parallel_s, 3),
        "speedup": round(speedup, 2),
        "cache_hit_rate": round(parallel_stats.hit_rate, 3),
    }
    # The engine only reschedules runs — it must not change conclusions.
    assert _digest(parallel_results) == _digest(serial_results)
    # The acceptance point: >= 2x wall-clock at parallelism 4.
    floor = 2.0 if len(apps) == len(seven_app_set) else 1.3
    assert speedup >= floor, f"only {speedup:.2f}x at parallel={PARALLEL}"


def test_process_shard_speedup(seven_app_set):
    """Process sharding must beat the PR 1 thread path >= 2x on
    GIL-bound run cost, without changing a byte of any report."""
    apps = _reduced(seven_app_set)
    serial_results, _ = _analyze_corpus(
        apps, "bench",
        parallel=1, jobs=1, cache=True, early_exit=True, wrap=None,
    )

    started = time.monotonic()
    thread_results, thread_stats = _analyze_corpus(
        apps, "bench",
        parallel=PARALLEL, jobs=1, cache=True, early_exit=True,
        executor="thread", wrap=_GilBoundBackend,
    )
    thread_s = time.monotonic() - started

    started = time.monotonic()
    process_results, process_stats = _analyze_corpus(
        apps, "bench",
        parallel=PARALLEL, jobs=1, cache=True, early_exit=True,
        executor="process", wrap=_GilBoundBackend,
    )
    process_s = time.monotonic() - started
    speedup = thread_s / process_s

    print(f"\n=== Process sharding: {len(apps)}-app corpus, GIL-bound "
          f"cost ({RUN_COST_S * 1000:.1f} ms/run) ===")
    print(f"threads   (p={PARALLEL}): {thread_s:6.2f}s  "
          f"[{thread_stats.describe()}]")
    print(f"processes (p={PARALLEL}): {process_s:6.2f}s  "
          f"[{process_stats.describe()}]")
    print(f"process-over-thread speedup: {speedup:.2f}x")

    _RESULTS["process"] = {
        "apps": len(apps),
        "thread_s": round(thread_s, 3),
        "process_s": round(process_s, 3),
        "speedup_over_thread": round(speedup, 2),
        "runs_executed": process_stats.runs_executed,
    }
    # Sharding across processes must not change conclusions either.
    assert _digest(process_results) == _digest(serial_results)
    assert _digest(thread_results) == _digest(serial_results)
    # The tentpole acceptance point: >= 2x over the thread path.
    floor = 2.0 if len(apps) == len(seven_app_set) else 1.3
    assert speedup >= floor, (
        f"process sharding only {speedup:.2f}x over threads"
    )


@pytest.mark.parametrize("store_kind", ["jsonl", "sqlite"])
def test_persistent_cache_warm_campaign(seven_app_set, tmp_path,
                                        store_kind):
    """A second campaign over the same run-cache path starts warm:
    >50% of its requested runs answered from disk, zero re-executed —
    on both store backends (the path's extension picks it)."""
    apps = _reduced(seven_app_set)
    cache_path = tmp_path / f"runs.{store_kind}"

    def campaign():
        started = time.monotonic()
        with LoupeSession(cache_path=str(cache_path)) as session:
            stats = EngineStats()
            for app in apps:
                session.analyze(AnalysisRequest.for_app(app, "bench"))
                stats = stats + session.last_engine_stats
        return stats, time.monotonic() - started

    cold, cold_s = campaign()
    warm, warm_s = campaign()

    print(f"\n=== Persistent run cache across campaigns "
          f"({len(apps)} apps, {store_kind}) ===")
    print(f"cold campaign: {cold_s:6.2f}s  [{cold.describe()}]")
    print(f"warm campaign: {warm_s:6.2f}s  [{warm.describe()}]")
    print(f"warm persistent hit rate: {warm.persistent_hit_rate:.0%}")

    slot = ("persistent_cache" if store_kind == "jsonl"
            else "persistent_cache_sqlite")
    _RESULTS[slot] = {
        "apps": len(apps),
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "cold_runs_executed": cold.runs_executed,
        "warm_runs_executed": warm.runs_executed,
        "warm_persistent_hit_rate": round(warm.persistent_hit_rate, 3),
    }
    assert cold.persistent_hits == 0
    assert warm.runs_executed == 0, "warm campaign re-executed runs"
    # The acceptance point: a warm campaign is >50% served from disk
    # (the rest is early-exit skips, which cost nothing either).
    assert warm.persistent_hit_rate > 0.5, (
        f"only {warm.persistent_hit_rate:.0%} persistent hits"
    )


def test_jsonl_compaction_ratio(tmp_path):
    """``compact()`` must shrink a duplicate-heavy JSONL cache while
    preserving every live key's last-written value.

    Duplicates model a long-lived cache whose records get superseded
    over time (changed app builds re-keying nothing but overwriting
    metrics, or the documented multi-writer re-appends): KEYS live
    records, each superseded VERSIONS-1 times.
    """
    from collections import Counter

    from repro.core.cachestore import JsonlRunCache
    from repro.core.runner import RunResult

    KEYS, VERSIONS = 200, 6
    path = tmp_path / "bloated.jsonl"
    with JsonlRunCache(path) as store:
        for version in range(VERSIONS):
            for index in range(KEYS):
                store.put(
                    ("sim:app-1.0", "bench", f"stub:feature-{index}", 0),
                    RunResult(success=True,
                              traced=Counter({"read": index}),
                              metric=float(version)),
                )
        outcome = store.compact()

    print(f"\n=== JSONL compaction ({KEYS} keys x {VERSIONS} versions) ===")
    print(outcome.describe())

    _RESULTS["compaction"] = {
        "keys": KEYS,
        "versions": VERSIONS,
        "bytes_before": outcome.bytes_before,
        "bytes_after": outcome.bytes_after,
        "ratio": round(outcome.ratio, 2),
    }
    assert outcome.records_kept == KEYS
    assert outcome.records_dropped == KEYS * (VERSIONS - 1)
    # The acceptance point: compaction reclaims the superseded bulk.
    assert outcome.ratio >= VERSIONS * 0.6, (
        f"only {outcome.ratio:.2f}x reclaimed"
    )
    survivor = JsonlRunCache(path)
    assert len(survivor) == KEYS and survivor.stale_records == 0
    for index in range(KEYS):
        key = ("sim:app-1.0", "bench", f"stub:feature-{index}", 0)
        assert survivor.get(key).metric == float(VERSIONS - 1)


def _conflicting_program():
    """Two individually-stubbable syscalls whose stubs conflict (S5.2)."""

    def op(syscall, **kwargs):
        kwargs.setdefault("on_stub", ignore())
        kwargs.setdefault("on_fake", harmless())
        return SyscallOp(syscall=syscall, **kwargs)

    inner = op("mmap", on_stub=abort(), on_fake=breaks_core())
    return SimProgram(
        name="conflicted",
        version="1",
        ops=(
            op("mremap", on_stub=fallback(inner), on_fake=harmless()),
            op("mmap", on_stub=fallback(
                op("mremap", on_stub=abort(), on_fake=breaks_core())
            ), on_fake=breaks_core()),
            op("close", on_stub=ignore(), on_fake=harmless()),
        ),
        features=frozenset({"core"}),
        profiles={"*": WorkloadProfile(metric=1000.0)},
    )


def test_bisection_cache_hit_rate():
    cached = Analyzer(AnalyzerConfig(cache=True))
    result = cached.analyze(
        SimBackend(_conflicting_program()), health_check("health")
    )
    uncached = Analyzer(AnalyzerConfig(cache=False))
    uncached.analyze(
        SimBackend(_conflicting_program()), health_check("health")
    )
    hot = cached.engine.stats
    cold = uncached.engine.stats

    print("\n=== Run cache during combined confirmation + ddmin bisection ===")
    print(f"cache on : {hot.describe()}")
    print(f"cache off: {cold.describe()}")

    _RESULTS["bisection_cache"] = {
        "hit_rate": round(hot.hit_rate, 3),
        "runs_executed_cached": hot.runs_executed,
        "runs_executed_uncached": cold.runs_executed,
    }
    assert result.final_run_ok and result.conflicts
    assert hot.cache_hits > 0, "bisection must reuse probe-phase runs"
    assert hot.hit_rate > 0.0
    assert hot.runs_executed < cold.runs_executed
