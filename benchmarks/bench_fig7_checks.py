"""Figure 7 — which syscall wrappers have their return values checked.

Scans every corpus application's wrapper call sites (app code only,
mirroring the paper's manual source inspection) and correlates checking
with stub/fake-ability. Paper conclusions: most wrappers are checked;
never-checked ones include can't-fail syscalls; and checking does NOT
predict whether a syscall can be stubbed or faked.
"""

from __future__ import annotations

from repro.study.checks import check_study, expected_unchecked


def test_fig7_return_value_checks(benchmark, full_corpus, corpus_bench_results):
    study = benchmark.pedantic(
        check_study,
        args=(full_corpus, corpus_bench_results),
        rounds=3,
        iterations=1,
    )

    print("\n=== Figure 7: apps checking syscall return values ===")
    interesting = [
        row for row in study.rows if row.apps_using >= 5
    ]
    interesting.sort(key=lambda r: -r.check_fraction)
    for row in interesting[:20]:
        print(
            f"{row.syscall:<18} {row.apps_checking:>3}/{row.apps_using:<3} "
            f"({row.check_fraction:.0%})"
        )
    print(f"... {len(study.rows)} wrapper syscalls inspected in total")
    print(f"always checked: {len(study.always_checked)} syscalls")
    print(f"never checked:  {len(study.never_checked)} syscalls "
          f"({', '.join(study.never_checked[:6])}...)")
    print(f"checks/avoidability correlation: {study.correlation:+.3f} "
          f"(paper: no meaningful link)")

    checked_majority = [r for r in study.rows if r.check_fraction > 0.5]
    assert len(checked_majority) > len(study.rows) / 2
    assert abs(study.correlation) < 0.45
    assert expected_unchecked(study) or study.never_checked
