"""Figure 8 — syscall usage of old vs recent application releases.

httpd (2006 vs 2021), Nginx (2006 vs 2021), Redis (2010 vs 2021):
traced / required / stubbable / fakeable counts barely move across
11-15 years of application evolution — support is a one-time effort.
"""

from __future__ import annotations

from repro.study.evolution import figure8


def test_fig8_application_evolution(benchmark):
    pairs = benchmark.pedantic(figure8, rounds=1, iterations=1)

    print("\n=== Figure 8: syscall usage across application releases ===")
    print(f"{'app':<8} {'build':<14} {'traced':>7} {'required':>9} "
          f"{'stubbable':>10} {'fakeable':>9} {'any':>5}")
    for pair in pairs:
        for bar in (pair.old, pair.recent):
            build = f"{bar.version} ({bar.year})"
            print(
                f"{pair.app:<8} {build:<14} {bar.traced:>7} {bar.required:>9} "
                f"{bar.stubbable:>10} {bar.fakeable:>9} {bar.avoidable:>5}"
            )

    assert {p.app for p in pairs} == {"httpd", "nginx", "redis"}
    for pair in pairs:
        # The paper's insight: counts essentially unchanged over time.
        assert pair.traced_drift <= 6, pair.app
        assert abs(pair.recent.required - pair.old.required) <= 4, pair.app
        assert pair.avoidable_drift <= 6, pair.app
        assert pair.old.year <= 2010
