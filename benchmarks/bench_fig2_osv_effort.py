"""Figure 2 — engineering-effort savings for OSv's 62 applications.

Three development strategies over the same apps: Loupe's optimized
plan, the organic (chronological) order, and naive strace-driven
implementation. Paper headline at half coverage (31 apps): 37 vs 92 vs
142 syscalls; shape requirement: loupe < organic < naive with the
organic/loupe factor around 2.5x.
"""

from __future__ import annotations

from repro.plans import run_effort_study


def test_fig2_osv_effort(benchmark, full_corpus):
    apps = full_corpus[:62]
    study = benchmark.pedantic(
        run_effort_study, args=(apps,), rounds=1, iterations=1
    )

    half = study.at_half()
    print("\n=== Figure 2: apps supported vs syscalls implemented ===")
    print(f"{'apps':>5} {'loupe':>7} {'organic':>8} {'naive':>7}")
    for apps_supported in (5, 10, 15, 20, 25, 31, 40, 50, 62):
        print(
            f"{apps_supported:>5} "
            f"{study.loupe.syscalls_for_apps(apps_supported):>7} "
            f"{study.organic.syscalls_for_apps(apps_supported):>8} "
            f"{study.naive.syscalls_for_apps(apps_supported):>7}"
        )
    print(
        f"\nat half coverage ({half['apps']} apps): "
        f"loupe={half['loupe']} organic={half['organic']} "
        f"naive={half['naive']}  (paper: 37 / 92 / 142)"
    )

    assert half["loupe"] < half["organic"] < half["naive"]
    assert half["organic"] / half["loupe"] >= 1.6
    assert half["naive"] / half["organic"] >= 1.3
    # Same destination, different path: loupe and organic converge.
    assert study.loupe.final_syscalls == study.organic.final_syscalls
    for apps_supported in range(1, 63):
        assert (
            study.loupe.syscalls_for_apps(apps_supported)
            <= study.organic.syscalls_for_apps(apps_supported)
        )
