"""Figure 3 — API importance: Loupe vs naive dynamic analysis.

Over the 116-application corpus: the fraction of apps requiring each
syscall, sorted descending. Paper: naive analysis sees 180 syscalls as
required, Loupe 148; the naive curve dominates pointwise.
"""

from __future__ import annotations

from repro.study.importance import figure3


def test_fig3_api_importance(benchmark, corpus_bench_results):
    fig = benchmark(figure3, corpus_bench_results)

    loupe_curve = fig.loupe.curve()
    naive_curve = fig.naive.curve()

    print("\n=== Figure 3: API importance (sorted series) ===")
    print(f"{'rank':>5} {'naive':>7} {'loupe':>7}")
    for rank in (1, 5, 10, 25, 50, 75, 100, 125, 150, 175):
        naive_value = naive_curve[rank - 1] if rank <= len(naive_curve) else 0.0
        loupe_value = loupe_curve[rank - 1] if rank <= len(loupe_curve) else 0.0
        print(f"{rank:>5} {naive_value:>7.0%} {loupe_value:>7.0%}")
    print(
        f"\nsyscalls with nonzero importance: naive={fig.naive.total_syscalls()} "
        f"loupe={fig.loupe.total_syscalls()}  (paper: 180 / 148)"
    )
    print("top required:",
          ", ".join(f"{n}({v:.0%})" for n, v in fig.loupe.top(8)))

    assert fig.dominance_holds()
    assert 170 <= fig.naive.total_syscalls() <= 205
    assert 125 <= fig.loupe.total_syscalls() <= 160
    assert fig.loupe.total_syscalls() < fig.naive.total_syscalls()
