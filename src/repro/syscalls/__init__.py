"""Linux system call knowledge base.

Public surface:

* :data:`TABLE_X86_64` / :data:`TABLE_I386` — :class:`SyscallTable`
  instances with name<->number lookup.
* :func:`name_of` / :func:`number_of` — x86-64 convenience lookups.
* :func:`info` — per-syscall metadata (:class:`~repro.syscalls.info.SyscallInfo`).
* :mod:`repro.syscalls.subfeatures` — vectored syscall operations.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator

from repro.errors import UnknownSyscallError
from repro.syscalls.categories import Category, category_of, is_modern
from repro.syscalls.info import (
    ALWAYS_SUCCEEDS,
    NO_GLIBC_WRAPPER,
    ResourceEffect,
    SyscallInfo,
    all_infos,
    exists,
    info,
)
from repro.syscalls.subfeatures import (
    VECTORED_SYSCALLS,
    SubFeature,
    VectoredSyscall,
    decode,
    is_vectored,
    parse_qualified,
)
from repro.syscalls.table_i386 import NUMBERS_I386, SOCKETCALL_OPS, SYSCALLS_I386
from repro.syscalls.table_x86_64 import NUMBERS_X86_64, SYSCALLS_X86_64

__all__ = [
    "ALWAYS_SUCCEEDS",
    "NO_GLIBC_WRAPPER",
    "NUMBERS_I386",
    "NUMBERS_X86_64",
    "SOCKETCALL_OPS",
    "SYSCALLS_I386",
    "SYSCALLS_X86_64",
    "VECTORED_SYSCALLS",
    "Category",
    "ResourceEffect",
    "SubFeature",
    "SyscallInfo",
    "SyscallTable",
    "TABLE_I386",
    "TABLE_X86_64",
    "VectoredSyscall",
    "all_infos",
    "category_of",
    "decode",
    "exists",
    "info",
    "is_modern",
    "is_vectored",
    "name_of",
    "number_of",
    "parse_qualified",
]


@dataclasses.dataclass(frozen=True)
class SyscallTable:
    """A name<->number mapping for one architecture."""

    arch: str
    by_number: dict[int, str]
    by_name: dict[str, int]

    def name_of(self, number: int) -> str:
        """Canonical name for *number*; raises :class:`UnknownSyscallError`."""
        try:
            return self.by_number[number]
        except KeyError:
            raise UnknownSyscallError(number, self.arch) from None

    def number_of(self, name: str) -> int:
        """Number for *name*; raises :class:`UnknownSyscallError`."""
        try:
            return self.by_name[name]
        except KeyError:
            raise UnknownSyscallError(name, self.arch) from None

    def __contains__(self, key: object) -> bool:
        if isinstance(key, int):
            return key in self.by_number
        return key in self.by_name

    def __len__(self) -> int:
        return len(self.by_number)

    def __iter__(self) -> Iterator[str]:
        return iter(self.by_name)

    def names(self) -> frozenset[str]:
        return frozenset(self.by_name)


TABLE_X86_64 = SyscallTable("x86_64", dict(SYSCALLS_X86_64), dict(NUMBERS_X86_64))
TABLE_I386 = SyscallTable("i386", dict(SYSCALLS_I386), dict(NUMBERS_I386))


def name_of(number: int) -> str:
    """x86-64 syscall name for *number*."""
    return TABLE_X86_64.name_of(number)


def number_of(name: str) -> int:
    """x86-64 syscall number for *name*."""
    return TABLE_X86_64.number_of(name)
