"""Per-syscall metadata used across the analysis and study modules.

Three orthogonal facts about each syscall matter to the paper:

* **resource semantics** — whether the call allocates or frees file
  descriptors or memory. Section 5.3 shows that allocators generally
  cannot be stubbed/faked while liberators can (at a resource-usage
  cost), so the metrics module keys regressions off this.
* **wrapper status** — whether glibc exposes a C wrapper. Section 5.6
  counts ~51 syscalls without a wrapper (invoked via ``syscall(2)``),
  and the return-check study (Figure 7) inspects *wrapper* call sites.
* **failure profile** — a handful of syscalls can essentially never
  fail (``alarm``, ``getppid``...); Figure 7 notes no application checks
  their return values.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.errors import UnknownSyscallError
from repro.syscalls.categories import Category, category_of, is_modern
from repro.syscalls.table_x86_64 import NUMBERS_X86_64, SYSCALLS_X86_64


class ResourceEffect(enum.Enum):
    """What a successful invocation does to process-visible resources."""

    NONE = "none"
    ALLOCATES_FD = "allocates-fd"
    FREES_FD = "frees-fd"
    ALLOCATES_MEMORY = "allocates-memory"
    FREES_MEMORY = "frees-memory"


_FD_ALLOCATORS = frozenset(
    "open openat openat2 creat dup dup2 dup3 socket accept accept4 socketpair "
    "pipe pipe2 epoll_create epoll_create1 eventfd eventfd2 signalfd signalfd4 "
    "timerfd_create inotify_init inotify_init1 fanotify_init memfd_create "
    "memfd_secret perf_event_open userfaultfd io_uring_setup pidfd_open "
    "fcntl64 name_to_handle_at open_by_handle_at".split()
)

_FD_LIBERATORS = frozenset("close close_range".split())

_MEM_ALLOCATORS = frozenset("mmap mmap2 old_mmap brk mremap shmat".split())

_MEM_LIBERATORS = frozenset("munmap shmdt".split())

#: Syscalls that succeed unconditionally (or whose failure is not
#: observable in practice); Figure 7 finds no app checks these.
ALWAYS_SUCCEEDS = frozenset(
    "alarm getpid getppid getuid geteuid getgid getegid gettid umask "
    "getpgrp sync sched_yield pause".split()
)

#: Syscalls without a glibc wrapper as of glibc 2.33 (Section 5.6 counts
#: "around 51"); applications reach them through ``syscall(2)``. The set
#: below lists the prominent members our corpus and studies reference.
NO_GLIBC_WRAPPER = frozenset(
    "futex arch_prctl set_tid_address set_robust_list get_robust_list "
    "gettid tkill tgkill io_setup io_destroy io_getevents io_submit "
    "io_cancel seccomp bpf kcmp rseq membarrier pidfd_open pidfd_getfd "
    "pidfd_send_signal io_uring_setup io_uring_enter io_uring_register "
    "clone3 openat2 close_range faccessat2 process_madvise epoll_pwait2 "
    "mount_setattr landlock_create_ruleset landlock_add_rule "
    "landlock_restrict_self memfd_secret process_mrelease open_tree "
    "move_mount fsopen fsconfig fsmount fspick getdents getdents64 "
    "restart_syscall rt_sigreturn exit_group futimesat _sysctl "
    "modify_ldt lookup_dcookie".split()
)


@dataclasses.dataclass(frozen=True)
class SyscallInfo:
    """Static facts about one x86-64 system call."""

    number: int
    name: str
    category: Category
    resource_effect: ResourceEffect
    has_glibc_wrapper: bool
    always_succeeds: bool
    modern: bool

    @property
    def is_vectored(self) -> bool:
        """True when the syscall multiplexes sub-features (Section 5.4)."""
        from repro.syscalls.subfeatures import VECTORED_SYSCALLS

        return self.name in VECTORED_SYSCALLS


def _resource_effect(name: str) -> ResourceEffect:
    if name in _FD_ALLOCATORS:
        return ResourceEffect.ALLOCATES_FD
    if name in _FD_LIBERATORS:
        return ResourceEffect.FREES_FD
    if name in _MEM_ALLOCATORS:
        return ResourceEffect.ALLOCATES_MEMORY
    if name in _MEM_LIBERATORS:
        return ResourceEffect.FREES_MEMORY
    return ResourceEffect.NONE


def _build_registry() -> dict[str, SyscallInfo]:
    registry: dict[str, SyscallInfo] = {}
    for number, name in SYSCALLS_X86_64.items():
        registry[name] = SyscallInfo(
            number=number,
            name=name,
            category=category_of(name),
            resource_effect=_resource_effect(name),
            has_glibc_wrapper=name not in NO_GLIBC_WRAPPER,
            always_succeeds=name in ALWAYS_SUCCEEDS,
            modern=is_modern(number),
        )
    return registry


_REGISTRY: dict[str, SyscallInfo] = _build_registry()


def info(name_or_number: str | int) -> SyscallInfo:
    """Look up :class:`SyscallInfo` by name or x86-64 number."""
    if isinstance(name_or_number, int):
        name = SYSCALLS_X86_64.get(name_or_number)
        if name is None:
            raise UnknownSyscallError(name_or_number)
        return _REGISTRY[name]
    found = _REGISTRY.get(name_or_number)
    if found is None:
        raise UnknownSyscallError(name_or_number)
    return found


def all_infos() -> tuple[SyscallInfo, ...]:
    """Every known x86-64 syscall, ordered by number."""
    return tuple(sorted(_REGISTRY.values(), key=lambda i: i.number))


def exists(name: str) -> bool:
    """True when *name* is a known x86-64 syscall."""
    return name in NUMBERS_X86_64
