"""Functional classification of Linux system calls.

The paper's analysis (Section 5.2) distinguishes "low range" syscalls
(numbers < ~150, long-standing core services) from "higher range" ones
(modern functionality: futex, epoll, *at variants). Beyond that split we
classify every syscall into a functional category, which the study
modules use to explain *why* groups of syscalls tend to be required,
stubbable, or fakeable.
"""

from __future__ import annotations

import enum

from repro.syscalls.table_x86_64 import SYSCALLS_X86_64


class Category(enum.Enum):
    """Functional group of a system call."""

    FILE_IO = "file-io"              # read/write/seek on open descriptors
    FILESYSTEM = "filesystem"        # namespace operations: open/stat/rename...
    MEMORY = "memory"                # address-space management
    PROCESS = "process"              # lifecycle: fork/exec/exit/wait
    THREADS = "threads"              # clone/TLS/robust lists/futex companions
    SIGNALS = "signals"
    NETWORK = "network"
    TIME = "time"                    # clocks, timers, sleeps
    IPC = "ipc"                      # SysV/POSIX queues, pipes, shared memory
    IDENTITY = "identity"            # uid/gid/pid/session queries and setters
    SECURITY = "security"            # capabilities, seccomp, keys, landlock
    SCHEDULING = "scheduling"
    SYNCHRONIZATION = "synchronization"   # futex and friends
    EVENTS = "events"                # epoll/poll/select/eventfd/signalfd/inotify
    RESOURCE_LIMITS = "resource-limits"
    SYSTEM_INFO = "system-info"      # uname/sysinfo/getrandom/getcpu
    SYSTEM_ADMIN = "system-admin"    # mount/reboot/swap/modules/quota
    ASYNC_IO = "async-io"            # io_setup family, io_uring
    XATTR = "xattr"
    DEBUG = "debug"                  # ptrace/perf/process_vm/kcmp
    MISC = "misc"


def _expand(groups: dict[Category, str]) -> dict[str, Category]:
    mapping: dict[str, Category] = {}
    for category, names in groups.items():
        for name in names.split():
            mapping[name] = category
    return mapping


_GROUPS: dict[Category, str] = {
    Category.FILE_IO: (
        "read write readv writev pread64 pwrite64 preadv pwritev preadv2 pwritev2 "
        "lseek sendfile splice tee vmsplice copy_file_range sync_file_range "
        "fsync fdatasync sync syncfs fadvise64 readahead ioctl fcntl flock "
        "fallocate close close_range dup dup2 dup3 lookup_dcookie"
    ),
    Category.FILESYSTEM: (
        "open openat openat2 creat stat fstat lstat newfstatat statx access "
        "faccessat faccessat2 getdents getdents64 getcwd chdir fchdir rename "
        "renameat renameat2 mkdir mkdirat rmdir link linkat unlink unlinkat "
        "symlink symlinkat readlink readlinkat chmod fchmod fchmodat chown "
        "fchown lchown fchownat truncate ftruncate truncate64 ftruncate64 "
        "mknod mknodat utime utimes utimensat futimesat umask statfs fstatfs "
        "ustat sysfs name_to_handle_at open_by_handle_at memfd_create "
        "memfd_secret uselib open_tree"
    ),
    Category.MEMORY: (
        "mmap munmap mprotect brk mremap msync mincore madvise process_madvise "
        "mlock munlock mlockall munlockall mlock2 remap_file_pages mbind "
        "set_mempolicy get_mempolicy migrate_pages move_pages pkey_mprotect "
        "pkey_alloc pkey_free process_mrelease"
    ),
    Category.PROCESS: (
        "fork vfork execve execveat exit exit_group wait4 waitid waitpid "
        "kill tkill tgkill personality prctl pidfd_open pidfd_getfd "
        "pidfd_send_signal"
    ),
    Category.THREADS: (
        "clone clone3 set_tid_address set_robust_list get_robust_list "
        "set_thread_area get_thread_area arch_prctl modify_ldt gettid "
        "membarrier rseq"
    ),
    Category.SIGNALS: (
        "rt_sigaction rt_sigprocmask rt_sigreturn rt_sigpending "
        "rt_sigtimedwait rt_sigqueueinfo rt_sigsuspend rt_tgsigqueueinfo "
        "sigaltstack pause alarm restart_syscall sigaction sigprocmask "
        "sigreturn"
    ),
    Category.NETWORK: (
        "socket connect accept accept4 bind listen getsockname getpeername "
        "socketpair setsockopt getsockopt shutdown sendto recvfrom sendmsg "
        "recvmsg sendmmsg recvmmsg socketcall sethostname setdomainname"
    ),
    Category.TIME: (
        "gettimeofday settimeofday time times nanosleep clock_gettime "
        "clock_settime clock_getres clock_nanosleep clock_adjtime adjtimex "
        "getitimer setitimer timer_create timer_settime timer_gettime "
        "timer_getoverrun timer_delete timerfd_create timerfd_settime "
        "timerfd_gettime"
    ),
    Category.IPC: (
        "pipe pipe2 shmget shmat shmctl shmdt semget semop semctl semtimedop "
        "msgget msgsnd msgrcv msgctl mq_open mq_unlink mq_timedsend "
        "mq_timedreceive mq_notify mq_getsetattr ipc getpmsg putpmsg"
    ),
    Category.IDENTITY: (
        "getpid getppid getuid geteuid getgid getegid setuid setgid setreuid "
        "setregid getgroups setgroups setresuid getresuid setresgid "
        "getresgid setfsuid setfsgid getpgid setpgid getpgrp getsid setsid "
        "getuid32 geteuid32 getgid32 getegid32 setuid32 setgid32 setreuid32 "
        "setregid32 getgroups32 setgroups32 setresuid32 getresuid32 "
        "setresgid32 getresgid32 fchown32 lchown32 chown32"
    ),
    Category.SECURITY: (
        "capget capset seccomp add_key request_key keyctl landlock_create_ruleset "
        "landlock_add_rule landlock_restrict_self bpf userfaultfd "
        "security chroot pivot_root setns unshare"
    ),
    Category.SCHEDULING: (
        "sched_yield sched_setparam sched_getparam sched_setscheduler "
        "sched_getscheduler sched_get_priority_max sched_get_priority_min "
        "sched_rr_get_interval sched_setaffinity sched_getaffinity "
        "sched_setattr sched_getattr getpriority setpriority ioprio_set "
        "ioprio_get getcpu"
    ),
    Category.SYNCHRONIZATION: "futex",
    Category.EVENTS: (
        "poll ppoll select pselect6 _newselect epoll_create epoll_create1 "
        "epoll_ctl epoll_wait epoll_pwait epoll_pwait2 epoll_ctl_old "
        "epoll_wait_old eventfd eventfd2 signalfd signalfd4 inotify_init "
        "inotify_init1 inotify_add_watch inotify_rm_watch fanotify_init "
        "fanotify_mark"
    ),
    Category.RESOURCE_LIMITS: (
        "getrlimit setrlimit prlimit64 getrusage old_getrlimit"
    ),
    Category.SYSTEM_INFO: (
        "uname sysinfo syslog getrandom _sysctl _llseek"
    ),
    Category.SYSTEM_ADMIN: (
        "mount umount2 mount_setattr move_mount fsopen fsconfig fsmount "
        "fspick swapon swapoff reboot init_module finit_module delete_module "
        "create_module get_kernel_syms query_module quotactl quotactl_fd "
        "nfsservctl acct kexec_load kexec_file_load vhangup iopl ioperm "
        "afs_syscall tuxcall vserver"
    ),
    Category.ASYNC_IO: (
        "io_setup io_destroy io_getevents io_submit io_cancel io_pgetevents "
        "io_uring_setup io_uring_enter io_uring_register"
    ),
    Category.XATTR: (
        "setxattr lsetxattr fsetxattr getxattr lgetxattr fgetxattr listxattr "
        "llistxattr flistxattr removexattr lremovexattr fremovexattr"
    ),
    Category.DEBUG: (
        "ptrace perf_event_open process_vm_readv process_vm_writev kcmp"
    ),
}

#: Mapping of syscall name -> functional category (covers both tables).
CATEGORY_OF: dict[str, Category] = _expand(_GROUPS)

#: Paper Section 5.2 splits the table at number ~150: below are
#: long-standing core services, above are modern functionality.
MODERN_THRESHOLD = 150


def category_of(name: str) -> Category:
    """Return the functional category of *name* (MISC when unclassified)."""
    return CATEGORY_OF.get(name, Category.MISC)


def is_modern(number: int) -> bool:
    """True when the syscall sits in the paper's "higher range" (>~150)."""
    return number >= MODERN_THRESHOLD


def uncategorized_names() -> frozenset[str]:
    """x86-64 syscall names that fall back to MISC (sanity helper)."""
    return frozenset(
        name for name in SYSCALLS_X86_64.values() if name not in CATEGORY_OF
    )
