"""Sub-features of vectored and multi-purpose system calls.

Section 5.4 of the paper shows that treating syscalls as monolithic is
too coarse: ``arch_prctl`` has 6 operations but applications only ever
need ``ARCH_SET_FS``; ``prlimit64`` covers 16 resources of which 3 are
used; ``fcntl`` mixes required commands (``F_SETFL``) with always-
stubbable ones (``F_SETFD``). This module is the vocabulary for that
finer granularity: for each vectored syscall we list its operation
space, the argument register that selects the operation, and the raw
command values so the real ptrace backend can decode live traffic.
"""

from __future__ import annotations

import dataclasses

from repro.errors import UnknownSyscallError


@dataclasses.dataclass(frozen=True)
class SubFeature:
    """One operation of a vectored syscall (e.g. ``fcntl``/``F_SETFL``)."""

    syscall: str
    name: str
    value: int
    description: str = ""

    @property
    def qualified(self) -> str:
        """Canonical ``syscall:OPERATION`` spelling used in reports."""
        return f"{self.syscall}:{self.name}"


@dataclasses.dataclass(frozen=True)
class VectoredSyscall:
    """A syscall whose behavior is selected by one argument register."""

    name: str
    selector_arg: int                      # 0-based index of the selecting argument
    operations: tuple[SubFeature, ...]

    def by_value(self, value: int) -> SubFeature | None:
        """Decode a raw selector value captured from a live register."""
        for operation in self.operations:
            if operation.value == value:
                return operation
        return None

    def by_name(self, name: str) -> SubFeature:
        for operation in self.operations:
            if operation.name == name:
                return operation
        raise UnknownSyscallError(f"{self.name}:{name}")


def _vectored(name: str, selector_arg: int, ops: dict[str, tuple[int, str]]) -> VectoredSyscall:
    features = tuple(
        SubFeature(syscall=name, name=op, value=value, description=desc)
        for op, (value, desc) in ops.items()
    )
    return VectoredSyscall(name=name, selector_arg=selector_arg, operations=features)


IOCTL = _vectored("ioctl", 1, {
    "TCGETS": (0x5401, "get terminal attributes"),
    "TCSETS": (0x5402, "set terminal attributes"),
    "TCSETSW": (0x5403, "set terminal attributes, drain"),
    "TIOCGPGRP": (0x540F, "get foreground process group"),
    "TIOCSPGRP": (0x5410, "set foreground process group"),
    "TIOCGWINSZ": (0x5413, "get terminal window size"),
    "TIOCSWINSZ": (0x5414, "set terminal window size"),
    "FIONREAD": (0x541B, "bytes available to read"),
    "FIONBIO": (0x5421, "set non-blocking I/O"),
    "FIOASYNC": (0x5452, "set async I/O notification"),
    "FIOCLEX": (0x5451, "set close-on-exec"),
    "SIOCGIFCONF": (0x8912, "get interface list"),
    "SIOCGIFFLAGS": (0x8913, "get interface flags"),
    "SIOCGIFADDR": (0x8915, "get interface address"),
    "SIOCGIFMTU": (0x8921, "get interface MTU"),
})

FCNTL = _vectored("fcntl", 1, {
    "F_DUPFD": (0, "duplicate descriptor"),
    "F_GETFD": (1, "get descriptor flags"),
    "F_SETFD": (2, "set descriptor flags (close-on-exec)"),
    "F_GETFL": (3, "get file status flags"),
    "F_SETFL": (4, "set file status flags (O_NONBLOCK)"),
    "F_GETLK": (5, "test record lock"),
    "F_SETLK": (6, "set record lock"),
    "F_SETLKW": (7, "set record lock, wait"),
    "F_SETOWN": (8, "set SIGIO owner"),
    "F_GETOWN": (9, "get SIGIO owner"),
    "F_DUPFD_CLOEXEC": (1030, "duplicate descriptor, close-on-exec"),
    "F_ADD_SEALS": (1033, "add memfd seals"),
})

PRCTL = _vectored("prctl", 0, {
    "PR_SET_PDEATHSIG": (1, "signal on parent death"),
    "PR_GET_DUMPABLE": (3, "query dumpable flag"),
    "PR_SET_DUMPABLE": (4, "set dumpable flag"),
    "PR_SET_KEEPCAPS": (8, "retain capabilities across setuid"),
    "PR_SET_NAME": (15, "set thread name"),
    "PR_GET_NAME": (16, "get thread name"),
    "PR_SET_SECCOMP": (22, "install seccomp filter"),
    "PR_CAPBSET_READ": (23, "read capability bounding set"),
    "PR_SET_NO_NEW_PRIVS": (38, "disable privilege escalation"),
    "PR_CAP_AMBIENT": (47, "ambient capabilities"),
})

ARCH_PRCTL = _vectored("arch_prctl", 0, {
    "ARCH_SET_GS": (0x1001, "set GS base"),
    "ARCH_SET_FS": (0x1002, "set FS base (TLS setup)"),
    "ARCH_GET_FS": (0x1003, "get FS base"),
    "ARCH_GET_GS": (0x1004, "get GS base"),
    "ARCH_GET_CPUID": (0x1011, "query CPUID faulting"),
    "ARCH_SET_CPUID": (0x1012, "set CPUID faulting"),
})

PRLIMIT64 = _vectored("prlimit64", 1, {
    "RLIMIT_CPU": (0, "CPU time"),
    "RLIMIT_FSIZE": (1, "file size"),
    "RLIMIT_DATA": (2, "data segment"),
    "RLIMIT_STACK": (3, "stack size"),
    "RLIMIT_CORE": (4, "core file size"),
    "RLIMIT_RSS": (5, "resident set size"),
    "RLIMIT_NPROC": (6, "process count"),
    "RLIMIT_NOFILE": (7, "open file descriptors"),
    "RLIMIT_MEMLOCK": (8, "locked memory"),
    "RLIMIT_AS": (9, "address space"),
    "RLIMIT_LOCKS": (10, "file locks"),
    "RLIMIT_SIGPENDING": (11, "pending signals"),
    "RLIMIT_MSGQUEUE": (12, "POSIX message queue bytes"),
    "RLIMIT_NICE": (13, "nice ceiling"),
    "RLIMIT_RTPRIO": (14, "realtime priority ceiling"),
    "RLIMIT_RTTIME": (15, "realtime CPU budget"),
})

MADVISE = _vectored("madvise", 2, {
    "MADV_NORMAL": (0, "default paging"),
    "MADV_RANDOM": (1, "random access pattern"),
    "MADV_SEQUENTIAL": (2, "sequential access pattern"),
    "MADV_WILLNEED": (3, "prefetch pages"),
    "MADV_DONTNEED": (4, "drop pages"),
    "MADV_FREE": (8, "lazily free pages"),
    "MADV_HUGEPAGE": (14, "enable THP"),
    "MADV_NOHUGEPAGE": (15, "disable THP"),
})

MMAP = _vectored("mmap", 3, {
    "MAP_SHARED": (0x01, "shared file mapping"),
    "MAP_PRIVATE": (0x02, "private mapping"),
    "MAP_FIXED": (0x10, "fixed-address mapping"),
    "MAP_ANONYMOUS": (0x20, "anonymous memory"),
})

#: All vectored syscalls, keyed by syscall name.
VECTORED_SYSCALLS: dict[str, VectoredSyscall] = {
    v.name: v for v in (IOCTL, FCNTL, PRCTL, ARCH_PRCTL, PRLIMIT64, MADVISE, MMAP)
}


def is_vectored(syscall: str) -> bool:
    """True when *syscall* multiplexes sub-features."""
    return syscall in VECTORED_SYSCALLS


def decode(syscall: str, selector_value: int) -> SubFeature | None:
    """Decode a live selector register value into a sub-feature.

    Returns ``None`` for non-vectored syscalls or unknown selector
    values (the analyzer then falls back to whole-syscall granularity).
    """
    vectored = VECTORED_SYSCALLS.get(syscall)
    if vectored is None:
        return None
    return vectored.by_value(selector_value)


def parse_qualified(qualified: str) -> tuple[str, str | None]:
    """Split ``"fcntl:F_SETFL"`` into ``("fcntl", "F_SETFL")``.

    Plain syscall names pass through as ``(name, None)``.
    """
    if ":" not in qualified:
        return qualified, None
    syscall, _, operation = qualified.partition(":")
    return syscall, operation
