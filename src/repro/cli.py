"""Command-line interface: ``loupe <subcommand>``.

Subcommands mirror how the paper's tool is used:

* ``analyze``  — run the full stub/fake analysis of one corpus app (or
  a real command with ``--exec``) and print the report; ``--backend``
  picks any registered execution backend — or several at once as a
  comma list (``--backend appsim,ptrace``), fanning the campaign out
  and printing the cross-validation report — and ``--events jsonl``
  streams structured progress events.
* ``compare``  — fan one app/workload across several backends and
  print the cross-validation report (divergences classified as
  missing-in-sim / extra-in-sim / count-only / verdict-differs /
  stability-differs; with the ``static`` pseudo-backend in the mix,
  static-overapproximation / soundness-violation — the latter a hard
  error, exit 1).
* ``plan``     — generate an incremental support plan for an OS
  (named profile or a CSV support file) over target apps.
* ``study``    — regenerate a paper table or figure by name.
* ``corpus``   — list the application corpus.
* ``db``       — inspect or merge result databases.
* ``cache``    — operate on persistent run-cache stores (``stats``,
  ``compact``, ``gc``, ``migrate``, and ``verify``, which re-executes
  a sample of records and diffs stored vs fresh results).
* ``scan``     — static binary scan of a native ELF.
* ``lint``     — static soundness auditor: rule-based linting of app
  models and support plans, plus a loupedb audit (``--db``) checking
  every stored dynamic result against its app's static footprint.
  Exit codes gate CI: 1 when any error-severity finding survives
  ``--select``/``--ignore``, 0 otherwise.
* ``serve``    — run the campaign server (job queue, bounded worker
  pool, live event streaming over HTTP; ``--max-queue``, ``--lease``
  and ``--max-attempts`` set the durability posture; ``--run-cache``
  additionally serves the store to the fleet at ``/cache``).
* ``worker``   — run one fabric worker: accepts pickled probe chunks
  from ``--executor remote`` campaigns over TCP and executes them
  locally (``--port-file`` publishes an ephemeral bind address,
  ``--announce`` feeds the server's fleet gauges).
* ``submit`` / ``jobs`` / ``tail`` / ``cancel`` / ``drain`` — the
  server's clients: submit a campaign spec, list jobs (``--state``
  filters, e.g. ``--state quarantined`` for triage), stream a job's
  events until it lands, cancel cooperatively, close intake for a
  graceful shutdown. They find the server through ``--url`` or the
  ``server.json`` discovery file under ``--data-dir``.

``analyze`` and ``compare`` share the fault-tolerance flags:
``--probe-timeout`` bounds each probe run attempt, ``--retries`` /
``--retry-backoff`` retry faulted attempts with exponential backoff,
and ``--on-fault degrade`` quarantines exhausted runs (reporting the
affected features as UNDECIDED) instead of aborting the campaign.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import signal
import sys
import threading
from pathlib import Path

from repro.api.registry import BackendRegistryError, resolve_backend
from repro.api.session import AnalysisRequest, LoupeSession
from repro.appsim.corpus import CLOUD_APPS, cloud_apps, corpus
from repro.core.analyzer import AnalyzerConfig
from repro.core.cachestore import CacheStoreError, migrate_store, open_store
from repro.core.faults import ProbeFaultError
from repro.db import Database
from repro.errors import AnalysisCancelledError, LoupeError, PlanError
from repro.plans import (
    generate_plan,
    render_plan,
    requirements_for_all,
    run_effort_study,
    table1_states,
)
from repro.syscalls import number_of


def _positive_int(raw: str) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{raw!r} is not an integer")
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _nonnegative_int(raw: str) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{raw!r} is not an integer")
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return value


def _jsonl_emitter(args: argparse.Namespace):
    """The ``--events jsonl`` event callback (None when not streaming).

    Concurrency-safe: a multi-backend fan-out (and ``analyze_many``)
    emits events from several threads into this one callback, and
    ``print()`` issues separate writes for the payload and the
    newline — interleaved emissions would corrupt the line protocol.
    One locked ``write()`` per event keeps every line well-formed.

    Pipe-failure-safe: when the consumer goes away mid-campaign
    (``loupe ... --events jsonl | head``), the emitter stops emitting
    after one stderr note instead of killing the analysis — losing a
    progress stream must not lose the campaign.
    """
    if args.events != "jsonl":
        return None
    lock = threading.Lock()
    state = {"broken": False}

    def on_event(event) -> None:
        line = json.dumps(event.to_dict()) + "\n"
        with lock:
            if state["broken"]:
                return
            try:
                sys.stdout.write(line)
                sys.stdout.flush()
            except BrokenPipeError:
                state["broken"] = True
                print("events: stdout pipe closed; suppressing further "
                      "events (analysis continues)", file=sys.stderr)

    return on_event


def _sigint_cancel() -> "tuple[Callable[[], object], Callable[[], None]]":
    """A SIGINT-driven cooperative cancellation hook for one campaign.

    Returns ``(cancel_check, restore)``: *cancel_check* plugs into
    ``AnalyzerConfig.cancel_check`` and answers ``"signal"`` once
    Ctrl-C has been pressed, so the analysis stops at the next wave
    boundary, flushes its accounting, and closes any ``--events
    jsonl`` stream with a terminal ``analysis_cancelled`` event —
    instead of the interpreter tearing the stream mid-line. A second
    Ctrl-C raises ``KeyboardInterrupt`` for callers who really mean
    *now*. *restore* reinstates the previous handler (call it in a
    ``finally``). Off the main thread (where ``signal.signal`` is
    unavailable) the hook degrades to never-cancelled.
    """
    if threading.current_thread() is not threading.main_thread():
        return (lambda: False), (lambda: None)
    flag = threading.Event()

    def handler(_signum, _frame) -> None:
        if flag.is_set():
            raise KeyboardInterrupt
        flag.set()
        print("interrupt: finishing the wave in flight, then stopping "
              "(press Ctrl-C again to abort immediately)",
              file=sys.stderr)

    previous = signal.signal(signal.SIGINT, handler)

    def restore() -> None:
        signal.signal(signal.SIGINT, previous)

    return (lambda: "signal" if flag.is_set() else False), restore


def _save_output(session: LoupeSession, args: argparse.Namespace) -> None:
    """Honor ``--output``: persist the session's result database."""
    if args.output:
        session.database.save(args.output)
        print(f"saved to {args.output}")


def _check_exec_spec(args: argparse.Namespace, request: AnalysisRequest,
                     names: "tuple[str, ...]") -> "int | None":
    """Sanity-check ``--exec`` against the backend spec (both commands).

    Capability-driven, not name-driven (a registered appsim variant
    must not slip past a literal ``"appsim"`` check): each named
    backend is resolved and asked for its contract, and
    ``real_execution`` is what marks a backend as actually running
    the ``--exec`` command. Returns an exit code when *no* named
    backend would run it (the command would be silently dropped), and
    prints a note when model-analyzing backends are merely mixed with
    command-running ones (the paper's model-vs-command comparison,
    meaningful only when both name the same program). Backends whose
    contract comes through the legacy attribute shim cannot express
    ``real_execution``, so they get the benefit of the doubt — no
    refusal, no note — exactly as the pre-contract CLI behaved.
    Resolution failures are left for the main path to report with
    full context; the guard's own resolution is paid again by the
    analysis (targets are cheap to build next to any traced run).
    """
    if not args.exec_argv:
        return None
    from repro.api.registry import create_targets
    from repro.core.runner import capabilities_of

    try:
        targets = create_targets(names, request)
    except Exception:
        return None  # the analysis path surfaces the real error
    consuming, modeled, unknown = [], [], []
    for name, target in zip(names, targets):
        if getattr(target.backend, "capabilities", None) is None:
            unknown.append(name)  # legacy shim: can't express intent
        elif capabilities_of(target.backend).real_execution:
            consuming.append(name)
        else:
            modeled.append(name)
    if not consuming and not unknown:
        print(f"--exec requires a backend that runs commands "
              f"(the real_execution capability, e.g. ptrace); none of "
              f"{', '.join(names)} does, so the command would be "
              f"ignored", file=sys.stderr)
        return 2
    if modeled and consuming:
        print(f"note: {', '.join(modeled)} analyzes the {args.app!r} "
              f"model while {', '.join(consuming)} traces the --exec "
              f"command; the comparison is only meaningful if they "
              f"are the same program", file=sys.stderr)
    return None


def _print_analysis(result) -> None:
    required = sorted(result.required_syscalls())
    stubbable = sorted(result.stubbable_syscalls())
    fakeable = sorted(result.fakeable_syscalls())
    print(f"app: {result.app} workload: {result.workload} "
          f"backend: {result.backend} replicas: {result.replicas}")
    print(f"traced: {len(result.traced_syscalls())} syscalls")
    print(f"required ({len(required)}): {', '.join(required)}")
    print(f"stubbable ({len(stubbable)}): {', '.join(stubbable)}")
    print(f"fakeable ({len(fakeable)}): {', '.join(fakeable)}")
    pseudo = sorted(result.pseudo_files())
    if pseudo:
        print(f"pseudo-files: {', '.join(pseudo)}")
    impacted = result.impacted_features()
    if impacted:
        print("metric impacts:")
        for report in impacted:
            stub = report.stub_impact.describe() if report.stub_impact else "-"
            fake = report.fake_impact.describe() if report.fake_impact else "-"
            print(f"  {report.feature}: stub {stub} | fake {fake}")
    undecided = sorted(
        feature for feature, report in result.features.items()
        if report.verdict.value == "undecided"
    )
    if undecided:
        print(f"undecided ({len(undecided)}): {', '.join(undecided)} "
              f"(probes faulted without an observed failure; re-run "
              f"to decide)")
    faults = getattr(result, "faults", ())
    if faults:
        print(f"quarantined runs ({len(faults)}):")
        for fault in faults:
            print(f"  {fault.describe()}")
    if not result.final_run_ok:
        print("WARNING: final combined run failed; conflicts:", result.conflicts)


def _parse_workers(spec: "str | None") -> tuple:
    """The --workers comma list as a tuple of 'host:port' addresses."""
    if not spec:
        return ()
    return tuple(
        part.strip() for part in spec.split(",") if part.strip()
    )


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.no_cache and args.run_cache:
        print("--run-cache requires run memoization; drop --no-cache",
              file=sys.stderr)
        return 2
    if args.run_cache_max_entries is not None and not args.run_cache:
        print("--run-cache-max-entries requires --run-cache; there is "
              "no persistent store to bound", file=sys.stderr)
        return 2
    if args.run_cache_ttl is not None and not args.run_cache:
        print("--run-cache-ttl requires --run-cache; there is no "
              "persistent store to age out", file=sys.stderr)
        return 2
    if args.executor == "remote" and not args.workers:
        print("--executor remote needs --workers HOST:PORT[,...] "
              "(start them with: loupe worker --port PORT)",
              file=sys.stderr)
        return 2
    config = AnalyzerConfig(
        replicas=args.replicas,
        subfeature_level=args.subfeatures,
        pseudo_files=args.pseudofiles,
        parallel=args.jobs,
        executor=args.executor,
        workers=_parse_workers(args.workers),
        cache=not args.no_cache,
        run_cache=args.run_cache,
        run_cache_max_entries=args.run_cache_max_entries,
        run_cache_ttl_s=args.run_cache_ttl,
        probe_timeout_s=args.probe_timeout,
        retries=args.retries,
        retry_backoff_s=args.retry_backoff,
        on_fault=args.on_fault,
        fault_seed=args.fault_seed,
    )
    backend_spec = args.backend or ("ptrace" if args.exec_argv else "appsim")
    request = AnalysisRequest(
        app=args.app,
        workload=args.workload,
        backend=backend_spec,
        argv=tuple(args.exec_argv or ()),
        timeout_s=args.timeout,
    )
    # Validate before building the session: constructing it opens (and
    # may create) the --run-cache store, a side effect a rejected
    # invocation must not leave behind. resolve_backend() checks each
    # name exists without running any factory.
    try:
        names = request.backend_names()
        for name in names:
            resolve_backend(name)
    except BackendRegistryError as error:
        print(str(error), file=sys.stderr)
        return 2
    blocked = _check_exec_spec(args, request, names)
    if blocked is not None:
        return blocked
    cancel_check, restore_sigint = _sigint_cancel()
    config = dataclasses.replace(config, cancel_check=cancel_check)
    try:
        session = LoupeSession(
            config=config, on_event=_jsonl_emitter(args),
            cache_path=args.run_cache,
        )
    except CacheStoreError as error:
        restore_sigint()
        print(str(error), file=sys.stderr)
        return 2
    with session:
        try:
            outcome = session.analyze(request)
        except BackendRegistryError as error:
            print(str(error), file=sys.stderr)
            return 2
        except ProbeFaultError as error:
            print(f"aborted by fault policy (--on-fault fail): {error}",
                  file=sys.stderr)
            return 1
        except AnalysisCancelledError as error:
            # The analyzer already flushed engine_stats and a terminal
            # analysis_cancelled event onto any --events stream.
            print(f"{error}", file=sys.stderr)
            return 130
        finally:
            restore_sigint()
        if request.is_multi_target():
            # The fan-out returns the cross-validation report; the
            # per-target records are queryable in the session database
            # (and land in --output).
            from repro.report import render_cross_validation

            print(render_cross_validation(outcome))
        else:
            _print_analysis(outcome)
            print(f"engine: {session.last_engine_stats.describe()}")
        _save_output(session, args)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    if args.executor == "remote" and not args.workers:
        print("--executor remote needs --workers HOST:PORT[,...] "
              "(start them with: loupe worker --port PORT)",
              file=sys.stderr)
        return 2
    config = AnalyzerConfig(
        replicas=args.replicas,
        subfeature_level=args.subfeatures,
        pseudo_files=args.pseudofiles,
        parallel=args.jobs,
        executor=args.executor,
        workers=_parse_workers(args.workers),
        probe_timeout_s=args.probe_timeout,
        retries=args.retries,
        retry_backoff_s=args.retry_backoff,
        on_fault=args.on_fault,
        fault_seed=args.fault_seed,
    )
    request = AnalysisRequest(
        app=args.app,
        workload=args.workload,
        backend=args.backends,
        argv=tuple(args.exec_argv or ()),
        timeout_s=args.timeout,
    )
    try:
        names = request.backend_names()
    except BackendRegistryError as error:
        print(str(error), file=sys.stderr)
        return 2
    blocked = _check_exec_spec(args, request, names)
    if blocked is not None:
        return blocked
    from repro.report import render_cross_validation

    cancel_check, restore_sigint = _sigint_cancel()
    config = dataclasses.replace(config, cancel_check=cancel_check)
    with LoupeSession(config=config, on_event=_jsonl_emitter(args)) as session:
        try:
            report = session.compare(request)
        except BackendRegistryError as error:
            print(str(error), file=sys.stderr)
            return 2
        except ProbeFaultError as error:
            print(f"aborted by fault policy (--on-fault fail): {error}",
                  file=sys.stderr)
            return 1
        except AnalysisCancelledError as error:
            print(f"{error}", file=sys.stderr)
            return 130
        finally:
            restore_sigint()
        print(render_cross_validation(report))
        if args.report:
            from pathlib import Path

            Path(args.report).write_text(
                json.dumps(report.to_dict(), indent=1)
            )
            print(f"report saved to {args.report}")
        _save_output(session, args)
    if report.soundness_violations():
        # Static ⊇ dynamic is an invariant, not a preference: a static
        # footprint missing a dynamically observed syscall is the one
        # divergence class that hard-fails the comparison.
        print(
            "soundness violation: a static footprint missed dynamically "
            "observed syscalls (see report)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    try:
        plan = LoupeSession().plan(
            os_name=args.os,
            apps=args.apps,
            workload=args.workload,
            support_csv=args.support_csv,
        )
    except PlanError as error:
        print(str(error), file=sys.stderr)
        return 2
    print(render_plan(plan, syscall_numbers=not args.names))
    return 0


#: Studies whose corpus analyses honor ``study --jobs``.
_PARALLEL_STUDIES = frozenset({"fig3", "fig4", "fig5", "fig7"})


def _cmd_study(args: argparse.Namespace) -> int:
    name = args.name
    if args.jobs > 1 and name not in _PARALLEL_STUDIES:
        print(f"note: --jobs has no effect on study {name!r} "
              f"(parallel-aware: {', '.join(sorted(_PARALLEL_STUDIES))})",
              file=sys.stderr)
    if name == "table1":
        apps = cloud_apps()
        requirements = requirements_for_all(apps, "bench")
        for state in table1_states(requirements).values():
            print(render_plan(generate_plan(state, requirements)))
            print()
    elif name == "table2":
        from repro.study import analyze_impacts, render_table2

        print(render_table2(analyze_impacts()))
    elif name == "table3":
        from repro.study import glibc_comparison, render_table3

        print(render_table3(glibc_comparison()))
    elif name == "table4":
        from repro.study import render_table4, table4

        print(render_table4(table4()))
    elif name == "fig2":
        from repro.report import render_effort_curves

        study = run_effort_study(corpus()[:62])
        half = study.at_half()
        print(render_effort_curves(study))
        print(f"\nto support {half['apps']} apps: loupe={half['loupe']} "
              f"organic={half['organic']} naive={half['naive']} syscalls")
    elif name == "fig3":
        from repro.report import render_importance_curves
        from repro.study import analyze_apps, figure3

        results = analyze_apps(corpus(), "bench", jobs=args.jobs)
        fig = figure3(results)
        print(render_importance_curves(fig))
        print(f"\nloupe: {fig.loupe.total_syscalls()} syscalls required overall")
        print(f"naive: {fig.naive.total_syscalls()} syscalls required overall")
    elif name == "fig4":
        from repro.appsim.corpus import seven_apps
        from repro.study import analyze_apps, figure4, render_figure4

        apps = seven_apps()
        if args.jobs > 1:
            # figure4 reads through the shared study cache app by app;
            # pre-warming it in parallel is what --jobs buys here.
            for workload_name in ("bench", "suite"):
                analyze_apps(apps, workload_name, jobs=args.jobs)
        print(render_figure4(figure4(apps)))
    elif name == "fig5":
        from repro.appsim.corpus import seven_apps
        from repro.study import analyze_apps, render_figure5_row, syscall_sets

        apps = seven_apps()
        results = analyze_apps(apps, "bench", jobs=args.jobs)
        for table in syscall_sets(apps, results).values():
            print(render_figure5_row(table))
    elif name == "fig7":
        from repro.study import analyze_apps, check_study

        apps = corpus()
        study = check_study(apps, analyze_apps(apps, "bench", jobs=args.jobs))
        print(f"{len(study.rows)} wrapper syscalls inspected; "
              f"checks/avoidability correlation: {study.correlation:+.2f}")
    elif name == "fig8":
        from repro.study import figure8

        for pair in figure8():
            print(f"{pair.app}: {pair.old.year} traced={pair.old.traced} "
                  f"required={pair.old.required} | 2021 "
                  f"traced={pair.recent.traced} required={pair.recent.required}")
    elif name == "pseudo":
        from repro.study import pseudo_file_study, render_pseudo_files

        print(render_pseudo_files(pseudo_file_study(cloud_apps())))
    else:
        print(f"unknown study {name!r}", file=sys.stderr)
        return 2
    return 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    apps = corpus(args.size)
    for app in apps:
        marker = "*" if app.name in CLOUD_APPS else " "
        print(f"{marker} {app.name:<12} {app.category:<14} ({app.year})")
    print(f"{len(apps)} applications ('*' = hand-modeled cloud app)")
    return 0


def _cmd_db(args: argparse.Namespace) -> int:
    database = Database.load(args.path)
    if args.merge:
        other = Database.load(args.merge)
        changed = database.merge(other)
        database.save(args.path)
        print(f"merged {changed} record(s) into {args.path}")
        return 0
    print(f"{args.path}: {len(database)} record(s)")
    for result in database:
        print(f"  {result.app} {result.app_version} / {result.workload} "
              f"[{result.backend}]: {len(result.required_syscalls())} required "
              f"of {len(result.traced_syscalls())} traced")
    return 0


def _print_store_stats(stats) -> None:
    print(f"path: {stats.path}")
    print(f"backend: {stats.kind}")
    print(f"entries: {stats.entries}")
    print(f"loaded_records: {stats.loaded_records}")
    print(f"stale_records: {stats.stale_records}")
    print(f"file_bytes: {stats.file_bytes}")
    print(f"max_entries: "
          f"{stats.max_entries if stats.max_entries is not None else '-'}")
    print(f"evictions: {stats.evictions}")
    print(f"ttl_s: {stats.ttl_s if stats.ttl_s is not None else '-'}")
    print(f"expired: {stats.expired}")


def _require_store_file(path: str) -> None:
    """Ops commands operate on *existing* stores: a typo'd path must
    exit 2, not report success on a silently-created empty store."""
    from repro.core.cachestore import parse_store_path

    kind, concrete = parse_store_path(path)
    if kind == "http":
        # A URL names a served store; reachability is checked when the
        # remote client opens (with its own actionable error).
        return
    if not concrete.exists():
        raise CacheStoreError(f"no run-cache store at {concrete}")


def _cmd_cache(args: argparse.Namespace) -> int:
    import sqlite3

    try:
        if args.cache_command == "stats":
            _require_store_file(args.path)
            with open_store(args.path, ttl_s=args.ttl) as store:
                stats = store.stats()
            if args.json:
                # The same serialization the campaign server's
                # GET /stats endpoint embeds (StoreStats.to_dict).
                print(json.dumps(stats.to_dict(), sort_keys=True))
            else:
                _print_store_stats(stats)
        elif args.cache_command == "compact":
            _require_store_file(args.path)
            with open_store(args.path) as store:
                outcome = store.compact()
            print(outcome.describe())
        elif args.cache_command == "gc":
            if args.max_entries is None and args.ttl is None:
                print("cache gc needs an eviction dimension: "
                      "--max-entries N (LRU cap, sqlite only) and/or "
                      "--ttl SECONDS (age sweep)", file=sys.stderr)
                return 2
            _require_store_file(args.path)
            with open_store(args.path) as store:
                evicted = store.gc(args.max_entries, ttl_s=args.ttl)
                remaining = len(store)
            bounds = []
            if args.ttl is not None:
                bounds.append(f"ttl {args.ttl:g}s")
            if args.max_entries is not None:
                bounds.append(f"cap {args.max_entries}")
            print(f"evicted {evicted} record(s); {remaining} remain "
                  f"({', '.join(bounds)})")
        elif args.cache_command == "migrate":
            _require_store_file(args.source)
            migrated = migrate_store(
                args.source, args.destination,
                max_entries=args.max_entries,
            )
            print(f"migrated {migrated} record(s): "
                  f"{args.source} -> {args.destination}")
        elif args.cache_command == "verify":
            from repro.core.cachestore import verify_store

            _require_store_file(args.path)
            with open_store(args.path) as store:
                report = verify_store(
                    store, sample=args.sample, seed=args.seed
                )
            if args.json:
                print(json.dumps(report.to_dict(), sort_keys=True))
            else:
                print(report.describe())
                for mismatch in report.mismatches:
                    print(f"  MISMATCH {mismatch.describe()}")
            if not report.ok:
                return 1
    except (CacheStoreError, ValueError, OSError, sqlite3.Error) as error:
        print(str(error), file=sys.stderr)
        return 2
    return 0


def _service_client(args: argparse.Namespace):
    """A :class:`~repro.server.client.ServiceClient` for the server the
    arguments point at: ``--url`` wins, otherwise the discovery file
    under ``--data-dir`` (written by ``loupe serve``) names it."""
    from repro.server import ServiceClient, discover_url

    url = args.url or discover_url(args.data_dir)
    return ServiceClient(url)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.server import CampaignServer

    try:
        server = CampaignServer(
            args.data_dir,
            host=args.host,
            port=args.port,
            workers=args.workers,
            run_cache=args.run_cache,
            max_queue=args.max_queue,
            lease_s=args.lease,
            max_attempts=args.max_attempts,
            checkpoint_jobs=not args.no_checkpoint,
            verbose=args.verbose,
        )
    except OSError as error:
        print(f"serve: cannot bind {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return 2
    server.start()
    print(f"campaign server listening on {server.url}", flush=True)
    print(f"data dir: {server.data_dir} "
          f"(discovery file: {server.discovery_path})", flush=True)

    # SIGTERM (how scripts and CI stop a backgrounded server) gets the
    # same graceful path as Ctrl-C: cancel in-flight campaigns at their
    # next wave boundary, persist their terminal state, remove the
    # discovery file. Background shells routinely start children with
    # SIGINT ignored, so SIGTERM is the shutdown signal that must work.
    if threading.current_thread() is threading.main_thread():
        def _terminate(signum: int, frame: object) -> None:
            raise KeyboardInterrupt

        signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("interrupt: cancelling in-flight jobs and shutting down",
              file=sys.stderr, flush=True)
        server.close(cancel_running=True)
        return 130
    server.close()
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.fabric import FabricWorker

    try:
        worker = FabricWorker(
            host=args.host,
            port=args.port,
            heartbeat_s=args.heartbeat,
            announce_url=args.announce,
        )
    except (OSError, ValueError) as error:
        print(f"worker: cannot bind {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return 2
    worker.start()
    print(f"fabric worker listening on {worker.address} "
          f"(pid {os.getpid()})", flush=True)
    if args.port_file:
        # Script-friendly discovery, like the server's server.json: an
        # ephemeral --port 0 worker publishes where it actually bound.
        Path(args.port_file).write_text(f"{worker.address}\n")

    # SIGTERM takes the same graceful path as Ctrl-C (background
    # shells start children with SIGINT ignored).
    if threading.current_thread() is threading.main_thread():
        def _terminate(signum: int, frame: object) -> None:
            raise KeyboardInterrupt

        signal.signal(signal.SIGTERM, _terminate)
    try:
        worker.serve_forever()
    except KeyboardInterrupt:
        print("interrupt: shutting down worker", file=sys.stderr,
              flush=True)
        return 130
    finally:
        worker.close()
        if args.port_file:
            try:
                Path(args.port_file).unlink()
            except FileNotFoundError:
                pass
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.server import ServiceError

    spec = {
        "app": args.app,
        "workload": args.workload,
        "backend": args.backend,
        "replicas": args.replicas,
        "subfeatures": args.subfeatures,
        "pseudofiles": args.pseudofiles,
        "jobs": args.jobs,
        "executor": args.executor,
        "workers": args.workers or "",
        "run_cache": args.run_cache,
        "run_cache_max_entries": args.run_cache_max_entries,
        "run_cache_ttl": args.run_cache_ttl,
        "probe_timeout": args.probe_timeout,
        "retries": args.retries,
        "retry_backoff": args.retry_backoff,
        "on_fault": args.on_fault,
        "fault_seed": args.fault_seed,
    }
    try:
        client = _service_client(args)
        meta = client.submit(spec)
    except (ServiceError, LoupeError, OSError) as error:
        print(f"submit: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(meta, sort_keys=True))
    else:
        print(f"{meta['id']} {meta['status']}")
    if args.tail:
        return _tail_job(client, meta["id"])
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.server import ServiceError

    try:
        jobs = _service_client(args).jobs(state=args.state)
    except (ServiceError, LoupeError, OSError) as error:
        print(f"jobs: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(jobs, sort_keys=True))
        return 0
    if not jobs:
        print("no jobs" if not args.state else f"no {args.state} jobs")
        return 0
    for meta in jobs:
        line = (f"{meta['id']}  {meta['status']:<11}  "
                f"{meta['app']}/{meta['workload']} on {meta['backend']}")
        if meta.get("attempt", 1) > 1:
            line += f"  attempt={meta['attempt']}"
        if meta.get("reason"):
            line += f"  ({meta['reason']})"
        print(line)
    return 0


#: ``loupe tail`` exit codes by terminal status: done → 0, failed → 1
#: (quarantined reads as failed — the campaign never completed),
#: cancelled → 3 (distinct from failure — the campaign was *stopped*,
#: not broken — and from the usage-error 2).
_TAIL_EXIT_CODES = {"done": 0, "failed": 1, "quarantined": 1, "cancelled": 3}


def _tail_job(client, job_id: str) -> int:
    """Stream a job's event lines to stdout until it is terminal."""
    from repro.server import ServiceError

    try:
        for line in client.tail(job_id):
            sys.stdout.write(line)
            sys.stdout.flush()
    except (ServiceError, LoupeError) as error:
        # LoupeError also covers ServiceUnavailableError: the client's
        # GET retries already rode out any transient restart; by the
        # time it reaches us the server is genuinely gone.
        print(f"tail: {error}", file=sys.stderr)
        return 2
    status = client.last_status
    print(f"tail: {job_id} {status}", file=sys.stderr)
    return _TAIL_EXIT_CODES.get(status, 2)


def _cmd_tail(args: argparse.Namespace) -> int:
    from repro.server import ServiceError

    try:
        client = _service_client(args)
    except (ServiceError, LoupeError, OSError) as error:
        print(f"tail: {error}", file=sys.stderr)
        return 2
    return _tail_job(client, args.job_id)


def _cmd_cancel(args: argparse.Namespace) -> int:
    from repro.server import ServiceError

    try:
        meta = _service_client(args).cancel(args.job_id)
    except (ServiceError, LoupeError, OSError) as error:
        print(f"cancel: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(meta, sort_keys=True))
    else:
        print(f"{meta['id']} {meta['status']}")
    return 0


def _cmd_drain(args: argparse.Namespace) -> int:
    from repro.server import ServiceError

    try:
        plan = _service_client(args).drain()
    except (ServiceError, LoupeError, OSError) as error:
        print(f"drain: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(plan, sort_keys=True))
    else:
        print(f"draining: {plan.get('running', 0)} running job(s) will "
              f"finish, {plan.get('queued', 0)} queued job(s) stay on "
              f"disk for the next start")
    return 0


def _cmd_scan(args: argparse.Namespace) -> int:
    from repro.staticx import scan_binary

    report = scan_binary(args.binary)
    numbers = sorted(number_of(name) for name in report.syscalls)
    print(f"{report.path}: {len(report.syscalls)} syscalls at "
          f"{report.sites} sites ({report.resolution_rate:.0%} resolved)")
    print(", ".join(str(n) for n in numbers))
    return 0


def _split_rules(raw: "str | None") -> "list[str] | None":
    if raw is None:
        return None
    return [name.strip() for name in raw.split(",") if name.strip()]


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.staticx import rules as lint_rules

    select = _split_rules(args.select)
    ignore = _split_rules(args.ignore)
    try:
        if args.apps:
            from repro.appsim.corpus import HANDBUILT, build

            unknown = [name for name in args.apps if name not in HANDBUILT]
            if unknown:
                print(
                    f"unknown app(s): {', '.join(unknown)}; choose from "
                    f"{', '.join(sorted(HANDBUILT))}",
                    file=sys.stderr,
                )
                return 2
            apps = [build(name) for name in args.apps]
        else:
            apps = corpus()
        findings = lint_rules.lint_corpus(
            apps, select=select, ignore=ignore
        )
        if args.db:
            database = Database.load(args.db)
            findings += lint_rules.audit_database(
                database, level=args.level, select=select, ignore=ignore
            )
        if args.plan:
            from repro.plans.state import SupportState

            state = SupportState.load(args.plan, args.os)
            # A named app list narrows the plan check too; the default
            # sweep covers the Table 1 cloud set (requirements come
            # from memoized dynamic analyses).
            findings += lint_rules.lint_plan(
                state,
                apps if args.apps else None,
                workload=args.workload,
                select=select,
                ignore=ignore,
            )
    except (lint_rules.LintRuleError, LoupeError, OSError) as error:
        print(str(error), file=sys.stderr)
        return 2
    errors = sum(
        1 for f in findings if f.severity == lint_rules.SEVERITY_ERROR
    )
    warnings = len(findings) - errors
    if args.format == "json":
        print(json.dumps({
            "apps_checked": len(apps),
            "findings": [finding.to_dict() for finding in findings],
            "counts": {"error": errors, "warning": warnings},
        }, indent=1))
    else:
        for finding in findings:
            print(finding.describe())
        print(
            f"lint: {len(apps)} app(s) checked, {errors} error(s), "
            f"{warnings} warning(s)"
        )
    return lint_rules.exit_code(findings)


def _add_fault_arguments(parser: argparse.ArgumentParser) -> None:
    """The fault-tolerance flags shared by ``analyze`` and ``compare``."""
    parser.add_argument("--probe-timeout", type=float, default=None,
                        metavar="S", dest="probe_timeout",
                        help="wall-clock budget per probe run attempt; "
                             "an attempt exceeding it is abandoned and "
                             "classified as a timeout fault")
    parser.add_argument("--retries", type=_nonnegative_int, default=0,
                        metavar="N",
                        help="extra attempts after a faulted probe run "
                             "(exponential backoff between attempts; "
                             "default 0)")
    parser.add_argument("--retry-backoff", type=float, default=0.05,
                        metavar="S", dest="retry_backoff",
                        help="base delay of the retry backoff "
                             "(default 0.05s)")
    parser.add_argument("--on-fault", choices=("fail", "degrade"),
                        default="fail", dest="on_fault",
                        help="fail: abort the campaign when a run "
                             "exhausts its attempts (default); degrade: "
                             "quarantine the run, report the feature "
                             "UNDECIDED, and keep going")
    parser.add_argument("--fault-seed", type=int, default=None,
                        metavar="SEED", dest="fault_seed",
                        help="seed the retry-backoff jitter for "
                             "reproducible timings")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="loupe",
        description="Loupe reproduction: OS feature usage analysis and "
                    "compatibility-layer support planning",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="analyze one application")
    analyze.add_argument("--app", default="redis")
    analyze.add_argument("--workload", default="bench",
                         choices=("health", "bench", "suite"))
    analyze.add_argument("--replicas", type=_positive_int, default=3)
    analyze.add_argument("--backend", default=None, metavar="NAME[,NAME...]",
                         help="execution backend from the registry "
                              "(default: appsim, or ptrace with --exec). "
                              "A comma list fans the campaign across "
                              "every named backend and prints the "
                              "cross-validation report")
    analyze.add_argument("--events", choices=("jsonl",), default=None,
                         help="stream analysis progress events to stdout "
                              "(one JSON object per line)")
    analyze.add_argument("--subfeatures", action="store_true")
    analyze.add_argument("--pseudofiles", action="store_true")
    analyze.add_argument("--timeout", type=float, default=60.0)
    analyze.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                         help="probe-engine worker pool width (replicas "
                              "of one probe run concurrently; default 1)")
    analyze.add_argument("--executor",
                         choices=("auto", "serial", "thread", "process",
                                  "remote"),
                         default="auto",
                         help="probe sharding strategy at --jobs > 1: "
                              "threads overlap run latency, processes "
                              "shard CPU-bound simulated runs past the "
                              "GIL, remote ships chunks to a worker "
                              "fleet (--workers) (backends that cannot "
                              "shard fall back automatically; "
                              "default: auto)")
    analyze.add_argument("--workers", metavar="HOST:PORT[,HOST:PORT...]",
                         default=None,
                         help="worker fleet for --executor remote: "
                              "comma list of `loupe worker` addresses")
    analyze.add_argument("--run-cache", metavar="PATH", default=None,
                         help="persistent run-cache store; repeated "
                              "campaigns over the same path start "
                              "warm, across processes and sessions. "
                              "The path picks the backend: *.sqlite "
                              "(or sqlite:PATH) opens the concurrent "
                              "bounded SQLite store, anything else "
                              "an append-only JSONL file")
    analyze.add_argument("--run-cache-max-entries", type=_positive_int,
                         default=None, metavar="N",
                         help="LRU cap on the persistent run cache "
                              "(sqlite backend only): puts past N "
                              "records evict the least recently used")
    analyze.add_argument("--run-cache-ttl", type=float, default=None,
                         metavar="SECONDS",
                         help="age cap on the persistent run cache: "
                              "records older than this read as misses "
                              "(sweep them with `loupe cache gc --ttl`)")
    analyze.add_argument("--no-cache", action="store_true",
                         help="disable run-result memoization in the "
                              "probe engine")
    analyze.add_argument("--output", help="save result database to this path")
    _add_fault_arguments(analyze)
    analyze.add_argument("--exec", dest="exec_argv", nargs=argparse.REMAINDER,
                         help="trace a real command via ptrace instead")
    analyze.set_defaults(func=_cmd_analyze)

    compare = sub.add_parser(
        "compare",
        help="fan one app across several backends and cross-validate "
             "what each observed",
    )
    compare.add_argument("--app", default="redis")
    compare.add_argument("--workload", default="bench",
                         choices=("health", "bench", "suite"))
    compare.add_argument("--backends", default="appsim,ptrace",
                         metavar="NAME[,NAME...]",
                         help="registry backends to fan the campaign "
                              "over (default: appsim,ptrace — the "
                              "paper's sim-vs-real validation)")
    compare.add_argument("--replicas", type=_positive_int, default=3)
    compare.add_argument("--subfeatures", action="store_true")
    compare.add_argument("--pseudofiles", action="store_true")
    compare.add_argument("--timeout", type=float, default=60.0)
    compare.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                         help="probe-engine worker pool width per target")
    compare.add_argument("--executor",
                         choices=("auto", "serial", "thread", "process",
                                  "remote"),
                         default="auto")
    compare.add_argument("--workers", metavar="HOST:PORT[,HOST:PORT...]",
                         default=None,
                         help="worker fleet for --executor remote")
    compare.add_argument("--events", choices=("jsonl",), default=None,
                         help="stream analysis progress events (incl. "
                              "target_started/target_finished and the "
                              "cross_validation_report) to stdout")
    compare.add_argument("--report", metavar="PATH", default=None,
                         help="also write the cross-validation report "
                              "as JSON to this path")
    compare.add_argument("--output", help="save the per-target result "
                                          "database to this path")
    _add_fault_arguments(compare)
    compare.add_argument("--exec", dest="exec_argv",
                         nargs=argparse.REMAINDER,
                         help="command line for command-running "
                              "backends (e.g. ptrace)")
    compare.set_defaults(func=_cmd_compare)

    plan = sub.add_parser("plan", help="generate a support plan")
    plan.add_argument("--os", default="unikraft")
    plan.add_argument("--support-csv", help="CSV of supported syscalls")
    plan.add_argument("--apps", default="cloud", choices=("cloud", "corpus"))
    plan.add_argument("--workload", default="bench")
    plan.add_argument("--names", action="store_true",
                      help="print syscall names instead of numbers")
    plan.set_defaults(func=_cmd_plan)

    study = sub.add_parser("study", help="regenerate a paper table/figure")
    study.add_argument("name", choices=(
        "table1", "table2", "table3", "table4",
        "fig2", "fig3", "fig4", "fig5", "fig7", "fig8", "pseudo",
    ))
    study.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                       help="analyze up to N corpus applications "
                            "concurrently (fig3/fig4/fig5/fig7; default 1)")
    study.set_defaults(func=_cmd_study)

    corpus_cmd = sub.add_parser("corpus", help="list the application corpus")
    corpus_cmd.add_argument("--size", type=int, default=116)
    corpus_cmd.set_defaults(func=_cmd_corpus)

    db = sub.add_parser("db", help="inspect or merge result databases")
    db.add_argument("path")
    db.add_argument("--merge", help="merge another database into this one")
    db.set_defaults(func=_cmd_db)

    cache = sub.add_parser(
        "cache", help="operate on persistent run-cache stores"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="print a store's entry counts and footprint"
    )
    cache_stats.add_argument("path")
    cache_stats.add_argument("--ttl", type=float, default=None,
                             metavar="SECONDS",
                             help="also count records older than this "
                                  "as expired (what `gc --ttl` with "
                                  "the same value would sweep)")
    cache_stats.add_argument("--json", action="store_true",
                             help="print the stats as one JSON object "
                                  "(the shape GET /stats of the "
                                  "campaign server embeds)")
    cache_stats.set_defaults(func=_cmd_cache)
    cache_compact = cache_sub.add_parser(
        "compact",
        help="rewrite a store without its dead weight (jsonl: drop "
             "superseded duplicates; sqlite: checkpoint + vacuum). "
             "Offline operation — stop concurrent writers first",
    )
    cache_compact.add_argument("path")
    cache_compact.set_defaults(func=_cmd_cache)
    cache_gc = cache_sub.add_parser(
        "gc", help="evict records: by age (--ttl, any backend) and/or "
                   "down to an LRU cap (--max-entries, sqlite only)"
    )
    cache_gc.add_argument("path")
    cache_gc.add_argument("--max-entries", type=_positive_int,
                          default=None, metavar="N",
                          help="keep at most N records, evicting the "
                               "least recently used (sqlite only)")
    cache_gc.add_argument("--ttl", type=float, default=None,
                          metavar="SECONDS",
                          help="sweep records older than this many "
                               "seconds (jsonl and sqlite)")
    cache_gc.set_defaults(func=_cmd_cache)
    cache_migrate = cache_sub.add_parser(
        "migrate",
        help="copy every live record between stores (e.g. an "
             "organically-grown JSONL file into a bounded SQLite "
             "cache); warmed campaigns stay warm across the move",
    )
    cache_migrate.add_argument("source")
    cache_migrate.add_argument("destination")
    cache_migrate.add_argument("--max-entries", type=_positive_int,
                               default=None, metavar="N",
                               help="open the destination with this "
                                    "LRU cap (sqlite only)")
    cache_migrate.set_defaults(func=_cmd_cache)
    cache_verify = cache_sub.add_parser(
        "verify",
        help="re-execute (a sample of) a store's records and diff "
             "stored vs fresh results; exits 1 on any mismatch — the "
             "audit of the determinism contract the cache rests on",
    )
    cache_verify.add_argument("path")
    cache_verify.add_argument("--sample", type=_positive_int, default=None,
                              metavar="N",
                              help="re-execute only a seeded random "
                                   "sample of N records (default: all)")
    cache_verify.add_argument("--seed", type=int, default=0,
                              help="sampling seed (default 0); the same "
                                   "seed picks the same records")
    cache_verify.add_argument("--json", action="store_true",
                              help="print the verification report as "
                                   "one JSON object (mismatches "
                                   "included); the exit code still "
                                   "signals failures")
    cache_verify.set_defaults(func=_cmd_cache)

    scan = sub.add_parser("scan", help="static binary scan of an ELF")
    scan.add_argument("binary")
    scan.set_defaults(func=_cmd_scan)

    lint = sub.add_parser(
        "lint",
        help="statically vet app models, support plans, and stored "
             "results",
        description="Run the static soundness auditor. Exit code 0 "
                    "means no error-severity findings (warnings never "
                    "gate); 1 means at least one error; 2 is a usage "
                    "problem — the contract CI jobs gate on.",
    )
    lint.add_argument("--app", action="append", dest="apps",
                      metavar="NAME",
                      help="lint only the named hand-built app "
                           "(repeatable; default: the whole corpus)")
    lint.add_argument("--format", choices=("text", "json"),
                      default="text",
                      help="findings as human-readable lines (default) "
                           "or one JSON object")
    lint.add_argument("--select", metavar="RULE[,RULE]", default=None,
                      help="run only these rules")
    lint.add_argument("--ignore", metavar="RULE[,RULE]", default=None,
                      help="suppress these rules")
    lint.add_argument("--db", metavar="PATH", default=None,
                      help="additionally audit a stored loupedb: every "
                           "dynamic record's traced syscalls must fall "
                           "inside its app's static footprint")
    lint.add_argument("--level", choices=("source", "binary"),
                      default="binary",
                      help="static footprint level for the --db audit "
                           "(default binary)")
    lint.add_argument("--plan", metavar="CSV", default=None,
                      help="additionally check a support-state CSV for "
                           "apps it statically cannot satisfy")
    lint.add_argument("--os", default=None,
                      help="OS name for the --plan state (default: the "
                           "CSV file stem)")
    lint.add_argument("--workload", default="bench",
                      help="workload whose requirements the --plan "
                           "check uses (default bench)")
    lint.set_defaults(func=_cmd_lint)

    serve = sub.add_parser(
        "serve",
        help="run the campaign server: accept job submissions over "
             "HTTP, drain them through a bounded worker pool, stream "
             "events live",
    )
    serve.add_argument("--data-dir", default="loupe-data",
                       help="server state root: per-job lifecycle "
                            "directories live under <data-dir>/jobs, "
                            "and the discovery file <data-dir>/"
                            "server.json records the bound address "
                            "(default: ./loupe-data)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="port to bind; 0 (the default) picks an "
                            "ephemeral one — clients find it through "
                            "the discovery file")
    serve.add_argument("--workers", type=_positive_int, default=2,
                       metavar="N",
                       help="campaigns running concurrently; further "
                            "jobs wait queued in FIFO order "
                            "(default 2)")
    serve.add_argument("--run-cache", metavar="PATH", default=None,
                       help="service-default persistent run cache, "
                            "inherited by jobs that name none — a "
                            "long-lived server amortizes probe work "
                            "across campaigns")
    serve.add_argument("--max-queue", type=_positive_int, default=None,
                       metavar="N",
                       help="admission control: refuse submissions "
                            "(HTTP 429 + Retry-After) past N jobs "
                            "waiting for a worker (default: unbounded)")
    serve.add_argument("--lease", type=float, default=30.0,
                       metavar="SECONDS",
                       help="running-job lease: a worker that makes no "
                            "progress for this long is presumed dead "
                            "and its job reclaimed by the reaper "
                            "(default 30)")
    serve.add_argument("--max-attempts", type=_positive_int, default=3,
                       metavar="N",
                       help="attempt budget per job; reclaims and "
                            "crash-resumes beyond it quarantine the "
                            "job as poisonous (default 3)")
    serve.add_argument("--no-checkpoint", action="store_true",
                       help="disable per-job checkpoint stores "
                            "(jobs/<id>/runcache.sqlite); resumed "
                            "jobs then re-execute every probe")
    serve.add_argument("--verbose", action="store_true",
                       help="log each HTTP request to stderr")
    serve.set_defaults(func=_cmd_serve)

    worker = sub.add_parser(
        "worker",
        help="run one fabric worker: accept pickled probe chunks from "
             "remote-executor campaigns (--executor remote --workers "
             "HOST:PORT,...) over TCP and execute them locally",
    )
    worker.add_argument("--host", default="127.0.0.1")
    worker.add_argument("--port", type=int, default=0,
                        help="port to bind; 0 (the default) picks an "
                             "ephemeral one — publish it with "
                             "--port-file")
    worker.add_argument("--port-file", metavar="PATH", default=None,
                        help="write the bound host:port address to "
                             "this file once listening (removed on "
                             "clean shutdown)")
    worker.add_argument("--announce", metavar="URL", default=None,
                        help="campaign server base URL to send "
                             "periodic fleet heartbeats to (feeds the "
                             "worker gauges in its GET /stats)")
    worker.add_argument("--heartbeat", type=float, default=2.0,
                        metavar="SECONDS",
                        help="connection heartbeat interval; schedulers "
                             "presume a worker dead after ~5 missed "
                             "beats (default 2)")
    worker.set_defaults(func=_cmd_worker)

    def _client_arguments(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--url", default=None,
                            help="server address (http://host:port); "
                                 "default: read the discovery file "
                                 "under --data-dir")
        parser.add_argument("--data-dir", default="loupe-data",
                            help="where to look for the server's "
                                 "discovery file when no --url is "
                                 "given (default: ./loupe-data)")

    submit = sub.add_parser(
        "submit",
        help="submit one campaign to a running server; prints the "
             "job id",
    )
    _client_arguments(submit)
    submit.add_argument("--app", default="redis")
    submit.add_argument("--workload", default="bench",
                        choices=("health", "bench", "suite"))
    submit.add_argument("--backend", default="appsim",
                        metavar="NAME[,NAME...]",
                        help="execution backend(s) from the server's "
                             "registry; a comma list fans out and the "
                             "job's report is the cross-validation "
                             "report")
    submit.add_argument("--replicas", type=_positive_int, default=3)
    submit.add_argument("--subfeatures", action="store_true")
    submit.add_argument("--pseudofiles", action="store_true")
    submit.add_argument("--jobs", type=_positive_int, default=1,
                        metavar="N",
                        help="probe-engine worker pool width inside "
                             "the campaign")
    submit.add_argument("--executor",
                        choices=("auto", "serial", "thread", "process",
                                 "remote"),
                        default="auto")
    submit.add_argument("--workers", metavar="HOST:PORT[,HOST:PORT...]",
                        default=None,
                        help="worker fleet the job's remote executor "
                             "dials (addresses as the *server* reaches "
                             "them)")
    submit.add_argument("--run-cache", metavar="PATH", default=None,
                        help="persistent run cache for this job "
                             "(default: the server's --run-cache, "
                             "if any); http://host:port uses a "
                             "campaign server's /cache surface")
    submit.add_argument("--run-cache-max-entries", type=_positive_int,
                        default=None, metavar="N")
    submit.add_argument("--run-cache-ttl", type=float, default=None,
                        metavar="SECONDS",
                        help="age cap on the job's run cache")
    _add_fault_arguments(submit)
    submit.add_argument("--json", action="store_true",
                        help="print the created job's meta as JSON")
    submit.add_argument("--tail", action="store_true",
                        help="immediately tail the submitted job's "
                             "event stream (exit code follows the "
                             "job's terminal status)")
    submit.set_defaults(func=_cmd_submit)

    jobs_cmd = sub.add_parser("jobs", help="list a server's jobs")
    _client_arguments(jobs_cmd)
    jobs_cmd.add_argument("--state", default=None,
                          choices=("queued", "running", "done", "failed",
                                   "cancelled", "quarantined"),
                          help="only jobs in this lifecycle state "
                               "(e.g. --state quarantined for triage)")
    jobs_cmd.add_argument("--json", action="store_true")
    jobs_cmd.set_defaults(func=_cmd_jobs)

    tail = sub.add_parser(
        "tail",
        help="stream a job's events (the --events jsonl stream, "
             "envelope-wrapped) until it reaches a terminal state; "
             "exits 0 done / 1 failed / 3 cancelled",
    )
    _client_arguments(tail)
    tail.add_argument("job_id")
    tail.set_defaults(func=_cmd_tail)

    cancel = sub.add_parser(
        "cancel",
        help="cancel a job: queued jobs stop immediately, running "
             "jobs at the analyzer's next wave boundary",
    )
    _client_arguments(cancel)
    cancel.add_argument("job_id")
    cancel.add_argument("--json", action="store_true")
    cancel.set_defaults(func=_cmd_cancel)

    drain = sub.add_parser(
        "drain",
        help="close a server's intake: in-flight jobs finish, queued "
             "jobs stay on disk for the next start, new submissions "
             "get 503",
    )
    _client_arguments(drain)
    drain.add_argument("--json", action="store_true")
    drain.set_defaults(func=_cmd_drain)

    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into head/less that exited early; not an error.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
