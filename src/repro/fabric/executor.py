"""The scheduler side of the run fabric: a pool of remote workers.

:class:`FabricExecutor` is to ``--executor remote`` what
``ProcessPoolExecutor`` is to ``--executor process``: the engine hands
it pickled chunk jobs and consumes completion events. The differences
are all about distrust of the transport:

* every connection opens with the versioned ``HELLO``/``WELCOME``
  handshake, and a worker whose advertised
  :class:`~repro.core.runner.BackendCapabilities` is not
  ``process_safe`` is refused — it could not honor pickled chunks;
* each worker runs one chunk at a time (a worker is one slot); excess
  chunks queue client-side and drain as workers free up;
* a worker that closes its socket, breaks the protocol, or goes
  *silent* longer than ``dead_after_s`` (several missed heartbeats) is
  declared dead, and its in-flight chunk surfaces as a ``("lost", ...)``
  event — the engine re-enqueues lost runs on the survivors under the
  same retry budget the process pool uses, so a SIGKILLed worker costs
  wall-clock, never correctness.

Events from :meth:`FabricExecutor.next_event`:

``("done", chunk_id, rows)``
    The worker executed the chunk; *rows* are ``_execute_chunk``'s rows.
``("failed", chunk_id, exception)``
    The chunk itself raised (e.g. a fail-mode :class:`ProbeFaultError`);
    the engine re-raises it exactly as a process future would.
``("lost", chunk_id, exception)``
    The worker died with the chunk assigned; the rows never arrived.
"""

from __future__ import annotations

import itertools
import queue
import socket
import threading
from collections import deque

from repro.errors import LoupeError
from repro.fabric.protocol import (
    KIND_ACK,
    KIND_CHUNK,
    KIND_ERROR,
    KIND_HEARTBEAT,
    KIND_HELLO,
    KIND_RESULT,
    KIND_WELCOME,
    FabricProtocolError,
    decode_ack,
    decode_error,
    decode_result,
    decode_welcome,
    encode_chunk,
    encode_frame,
    hello_payload,
    read_frame,
)

#: Presume a worker dead after this much silence. Workers heartbeat
#: every ~2s even while executing, so this is ~5 missed beats.
DEFAULT_DEAD_AFTER_S = 10.0

DEFAULT_CONNECT_TIMEOUT_S = 5.0


class FabricConnectionError(LoupeError):
    """The worker fleet is unreachable or has no live members left."""


def parse_worker_address(spec: str) -> "tuple[str, int]":
    """``host:port`` → ``(host, port)``, with a typed error on junk."""
    host, separator, port = spec.rpartition(":")
    if not separator or not host:
        raise FabricConnectionError(
            f"worker address {spec!r} is not host:port"
        )
    try:
        return host, int(port)
    except ValueError:
        raise FabricConnectionError(
            f"worker address {spec!r} has a non-numeric port"
        ) from None


class _WorkerLink:
    """One connected worker: socket, identity, and slot state."""

    def __init__(self, addr: str, sock: socket.socket, reader, welcome: dict) -> None:
        self.addr = addr
        self.sock = sock
        # The handshake already read from this buffered reader; reusing
        # it (rather than opening a fresh makefile) keeps any bytes it
        # buffered past the WELCOME frame — an eager heartbeat, say.
        self.reader = reader
        self.welcome = welcome
        self.worker_id = welcome.get("worker_id") or addr
        self.write_lock = threading.Lock()
        self.busy_chunk: "int | None" = None
        self.acked = False
        self.alive = True

    def send(self, frame: bytes) -> None:
        with self.write_lock:
            self.sock.sendall(frame)

    def close(self) -> None:
        for closer in (self.reader.close, self.sock.close):
            try:
                closer()
            except OSError:
                pass


class FabricExecutor:
    """A chunk scheduler over a fleet of ``loupe worker`` processes."""

    def __init__(
        self,
        workers,
        *,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT_S,
        dead_after_s: float = DEFAULT_DEAD_AFTER_S,
    ) -> None:
        self.addresses = tuple(str(w).strip() for w in workers if str(w).strip())
        if not self.addresses:
            raise FabricConnectionError(
                "the remote executor needs at least one worker address "
                "(--workers host:port,...)"
            )
        self.connect_timeout = connect_timeout
        self.dead_after_s = dead_after_s
        self._events: "queue.Queue" = queue.Queue()
        self._links: "list[_WorkerLink]" = []
        self._pending: "deque[tuple[int, bytes]]" = deque()
        self._inflight: "dict[int, _WorkerLink]" = {}
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._connected = False
        #: ``addr -> error`` for workers that never joined the fleet.
        self.connect_errors: "dict[str, Exception]" = {}

    # -- connection management ---------------------------------------------

    def connect(self) -> "FabricExecutor":
        """Dial every worker; at least one must join or this raises."""
        if self._connected:
            return self
        self._connected = True
        for addr in self.addresses:
            try:
                self._connect_one(addr)
            except (OSError, FabricProtocolError) as error:
                self.connect_errors[addr] = error
        if not self._links:
            details = "; ".join(
                f"{addr}: {error}" for addr, error in self.connect_errors.items()
            )
            raise FabricConnectionError(
                f"no fabric workers reachable ({details}) — start them "
                f"with `loupe worker --port PORT`"
            )
        return self

    def _connect_one(self, addr: str) -> None:
        host, port = parse_worker_address(addr)
        sock = socket.create_connection((host, port), timeout=self.connect_timeout)
        try:
            sock.settimeout(self.dead_after_s)
            sock.sendall(encode_frame(KIND_HELLO, hello_payload()))
            reader = sock.makefile("rb")
            frame = read_frame(reader)
            if frame is None:
                raise FabricProtocolError(
                    f"worker {addr} hung up during the handshake"
                )
            kind, payload = frame
            if kind == KIND_ERROR:
                raise FabricProtocolError(
                    f"worker {addr} refused the handshake: "
                    f"{decode_error(payload)[1]}"
                )
            if kind != KIND_WELCOME:
                raise FabricProtocolError(
                    f"worker {addr} answered frame kind {kind}, "
                    f"not WELCOME"
                )
            welcome = decode_welcome(payload)
            if not welcome["capabilities"].process_safe:
                raise FabricProtocolError(
                    f"worker {addr} does not declare process_safe "
                    f"execution; it cannot honor pickled chunks"
                )
        except Exception:
            sock.close()
            raise
        link = _WorkerLink(addr, sock, reader, welcome)
        self._links.append(link)
        pump = threading.Thread(
            target=self._pump, args=(link,), daemon=True,
            name=f"loupe-fabric-pump-{addr}",
        )
        pump.start()

    def _pump(self, link: _WorkerLink) -> None:
        """Reader thread: every frame (or death) becomes a queue event."""
        while True:
            try:
                frame = read_frame(link.reader)
            except socket.timeout:
                self._events.put(("down", link, FabricConnectionError(
                    f"worker {link.addr} went silent for "
                    f"{self.dead_after_s:g}s (presumed dead)"
                )))
                return
            except (OSError, ValueError, FabricProtocolError) as error:
                self._events.put(("down", link, FabricConnectionError(
                    f"worker {link.addr} connection broke: {error}"
                )))
                return
            if frame is None:
                self._events.put(("down", link, FabricConnectionError(
                    f"worker {link.addr} closed the connection"
                )))
                return
            self._events.put(("frame", link, frame[0], frame[1]))

    # -- scheduling --------------------------------------------------------

    @property
    def worker_count(self) -> int:
        with self._lock:
            return sum(1 for link in self._links if link.alive)

    def chunks_in_flight(self) -> int:
        with self._lock:
            return len(self._inflight) + len(self._pending)

    def submit(self, job: object) -> int:
        """Queue one ``_execute_chunk`` job; returns its chunk id."""
        self.connect()
        with self._lock:
            if not any(link.alive for link in self._links):
                raise FabricConnectionError(
                    "every fabric worker has died; cannot place chunks"
                )
            chunk_id = next(self._ids)
            frame = encode_frame(KIND_CHUNK, encode_chunk(chunk_id, job))
            self._place(chunk_id, frame)
        return chunk_id

    def _place(self, chunk_id: int, frame: bytes) -> None:
        """Assign to an idle live worker or queue. Caller holds the lock."""
        for link in self._links:
            if link.alive and link.busy_chunk is None:
                link.busy_chunk = chunk_id
                link.acked = False
                self._inflight[chunk_id] = link
                try:
                    link.send(frame)
                except OSError:
                    # The pump thread will also notice; retire the link
                    # here so the chunk moves on immediately.
                    link.alive = False
                    link.busy_chunk = None
                    self._inflight.pop(chunk_id, None)
                    link.close()
                    continue
                return
        self._pending.append((chunk_id, frame))

    def _drain_pending(self, link: _WorkerLink) -> None:
        """Hand the freed *link* the oldest queued chunk, if any."""
        while self._pending and link.alive and link.busy_chunk is None:
            chunk_id, frame = self._pending.popleft()
            link.busy_chunk = chunk_id
            link.acked = False
            self._inflight[chunk_id] = link
            try:
                link.send(frame)
            except OSError:
                link.alive = False
                link.busy_chunk = None
                self._inflight.pop(chunk_id, None)
                link.close()
                self._pending.appendleft((chunk_id, frame))
                return

    def next_event(self) -> "tuple[str, int, object]":
        """Block until a chunk completes, fails, or is lost."""
        while True:
            with self._lock:
                if not any(link.alive for link in self._links):
                    if self._inflight or self._pending:
                        raise FabricConnectionError(
                            "every fabric worker has died with chunks "
                            "outstanding"
                        )
            item = self._events.get()
            if item[0] == "down":
                event = self._worker_down(item[1], item[2])
                if event is not None:
                    return event
                continue
            _, link, kind, payload = item
            if kind == KIND_HEARTBEAT:
                continue
            if kind == KIND_ACK:
                chunk_id = decode_ack(payload)
                with self._lock:
                    if link.busy_chunk == chunk_id:
                        link.acked = True
                continue
            if kind in (KIND_RESULT, KIND_ERROR):
                decode = decode_result if kind == KIND_RESULT else decode_error
                chunk_id, body = decode(payload)
                with self._lock:
                    owner = self._inflight.pop(chunk_id, None)
                    if link.busy_chunk == chunk_id:
                        link.busy_chunk = None
                        link.acked = False
                    self._drain_pending(link)
                if owner is None:
                    continue  # stale frame for a chunk already written off
                label = "done" if kind == KIND_RESULT else "failed"
                return label, chunk_id, body
            # Anything else after the handshake is a protocol breach;
            # treat the worker as gone rather than guessing.
            event = self._worker_down(link, FabricProtocolError(
                f"worker {link.addr} sent unexpected frame kind {kind}"
            ))
            if event is not None:
                return event

    def _worker_down(self, link: _WorkerLink, error: Exception):
        """Retire a link; surface its in-flight chunk as lost."""
        with self._lock:
            was_alive = link.alive
            link.alive = False
            chunk_id = link.busy_chunk
            link.busy_chunk = None
            if chunk_id is not None:
                self._inflight.pop(chunk_id, None)
            # Any surviving idle worker should pick up queued chunks the
            # dead one will never take.
            for survivor in self._links:
                if survivor.alive:
                    self._drain_pending(survivor)
        if was_alive:
            link.close()
        if chunk_id is not None:
            return "lost", chunk_id, error
        return None

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            links = list(self._links)
            self._links.clear()
            self._pending.clear()
            self._inflight.clear()
        for link in links:
            link.alive = False
            link.close()

    def __enter__(self) -> "FabricExecutor":
        return self.connect()

    def __exit__(self, *exc_info: object) -> None:
        self.close()
