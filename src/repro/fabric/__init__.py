"""Distributed run fabric: remote probe execution over TCP.

The fabric extends the engine's process sharding across machines: a
:class:`FabricWorker` (``loupe worker``) executes the same pickled
chunks a process-pool child would, and a :class:`FabricExecutor` is
the scheduler-side pool the engine drives when
``AnalyzerConfig.executor == "remote"``. The wire format lives in
:mod:`repro.fabric.protocol`.
"""

from repro.fabric.executor import (
    DEFAULT_DEAD_AFTER_S,
    FabricConnectionError,
    FabricExecutor,
    parse_worker_address,
)
from repro.fabric.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FabricProtocolError,
)
from repro.fabric.worker import DEFAULT_HEARTBEAT_S, FabricWorker

__all__ = [
    "DEFAULT_DEAD_AFTER_S",
    "DEFAULT_HEARTBEAT_S",
    "FabricConnectionError",
    "FabricExecutor",
    "FabricProtocolError",
    "FabricWorker",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "parse_worker_address",
]
