"""``loupe worker``: a TCP probe worker for the distributed run fabric.

A :class:`FabricWorker` is the remote half of what a
``ProcessPoolExecutor`` child is to ``--executor process``: it accepts
pickled probe chunks and executes them through the *same*
:func:`repro.core.engine._execute_chunk` entry point, so the fault
semantics (guarded runs, in-chunk early exit, typed probe errors) are
literally shared code — the fabric changes the transport, never the
execution.

Per connection, the worker:

* answers the versioned ``HELLO``/``WELCOME`` handshake (carrying its
  :class:`~repro.core.runner.BackendCapabilities` contract and pid),
* acknowledges every ``CHUNK`` frame the moment it is decoded
  (``ACK``), then executes it and answers ``RESULT`` (pickled rows) or
  ``ERROR`` (pickled exception — :class:`ProbeRunError` /
  :class:`ProbeFaultError` cross the wire intact, exactly as they
  cross a process-pool pipe),
* emits ``HEARTBEAT`` frames every ``heartbeat_s`` from a side thread,
  so the scheduler can tell a worker that is *busy* (heartbeats flow
  while a chunk executes) from one that is *gone* (silence).

Chunks on one connection execute serially, in arrival order — a
worker is one execution slot, and fleet width comes from running more
workers. All writes to a connection go through one lock so heartbeat
frames never interleave into a result frame.

A worker can optionally *announce* itself to a campaign server
(``announce_url``): a background thread POSTs ``/fleet/heartbeat``
documents so ``GET /stats`` can report fleet gauges (connected
workers, chunks in flight). Announce failures are swallowed — the
gauges are observability, not control flow.
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import threading
import urllib.request

from repro.core.engine import _execute_chunk
from repro.core.runner import BackendCapabilities
from repro.fabric.protocol import (
    KIND_ACK,
    KIND_CHUNK,
    KIND_ERROR,
    KIND_HEARTBEAT,
    KIND_HELLO,
    KIND_RESULT,
    KIND_WELCOME,
    FabricProtocolError,
    decode_chunk,
    decode_hello,
    encode_ack,
    encode_error,
    encode_frame,
    encode_result,
    read_frame,
    welcome_payload,
)

#: How often a worker proves liveness, on-socket and to the campaign
#: server alike. Schedulers should presume a worker dead only after
#: several missed beats (see ``FabricExecutor``'s dead_after_s).
DEFAULT_HEARTBEAT_S = 2.0

#: What a fabric worker promises the scheduler: it executes pickled,
#: parallel-safe chunks. ``deterministic`` is true of the *worker* (it
#: adds no nondeterminism of its own); whether a given run may be
#: cached still depends on the shipped backend's own contract, which
#: the scheduling engine checks before any chunk is built.
WORKER_CAPABILITIES = BackendCapabilities(
    deterministic=True, parallel_safe=True, process_safe=True,
)


class _ConnectionHandler(socketserver.BaseRequestHandler):
    """One scheduler connection: handshake, then a serial chunk loop."""

    def handle(self) -> None:  # noqa: D102 - protocol method
        worker: "FabricWorker" = self.server.fabric_worker
        reader = self.request.makefile("rb")
        write_lock = threading.Lock()
        stop_beats = threading.Event()

        def send(frame: bytes) -> None:
            with write_lock:
                self.request.sendall(frame)

        def beat() -> None:
            while not stop_beats.wait(worker.heartbeat_s):
                try:
                    send(encode_frame(KIND_HEARTBEAT, b""))
                except OSError:
                    return

        try:
            try:
                opening = read_frame(reader)
            except FabricProtocolError:
                return
            if opening is None or opening[0] != KIND_HELLO:
                return
            try:
                decode_hello(opening[1])
            except FabricProtocolError as error:
                # Tell the mismatched client why before hanging up.
                try:
                    send(encode_frame(
                        KIND_ERROR,
                        encode_error(0, error),
                    ))
                except OSError:
                    pass
                return
            send(encode_frame(KIND_WELCOME, welcome_payload(
                worker.capabilities,
                pid=os.getpid(),
                worker_id=worker.worker_id,
            )))
            heartbeats = threading.Thread(
                target=beat, daemon=True,
                name=f"loupe-fabric-beat-{worker.worker_id}",
            )
            heartbeats.start()
            self._chunk_loop(worker, reader, send)
        except (OSError, FabricProtocolError):
            # A vanished or misbehaving scheduler ends this connection,
            # never the worker: the next scheduler gets a clean slate.
            pass
        finally:
            stop_beats.set()

    def _chunk_loop(self, worker: "FabricWorker", reader, send) -> None:
        while True:
            frame = read_frame(reader)
            if frame is None:
                return  # scheduler hung up cleanly
            kind, payload = frame
            if kind == KIND_HEARTBEAT:
                continue
            if kind != KIND_CHUNK:
                raise FabricProtocolError(
                    f"unexpected frame kind {kind} after handshake"
                )
            chunk_id, job = decode_chunk(payload)
            send(encode_frame(KIND_ACK, encode_ack(chunk_id)))
            worker._chunk_started()
            try:
                backend, workload, tasks, early_exit, fault_policy = job
                rows = _execute_chunk(
                    backend, workload, tasks, early_exit, fault_policy
                )
            except Exception as error:
                send(encode_frame(KIND_ERROR, encode_error(chunk_id, error)))
            else:
                send(encode_frame(
                    KIND_RESULT, encode_result(chunk_id, rows)
                ))
            finally:
                worker._chunk_finished()


class _WorkerServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class FabricWorker:
    """One fabric execution slot listening on a TCP port.

    ``port=0`` binds an ephemeral port; :attr:`address` reports the
    bound ``host:port`` once :meth:`start` returns, so tests and
    scripts never race the bind. :meth:`serve_forever` blocks (the
    ``loupe worker`` CLI calls it); embedders call :meth:`start` and
    keep the worker on its background threads.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        announce_url: "str | None" = None,
        worker_id: "str | None" = None,
        capabilities: "BackendCapabilities | None" = None,
    ) -> None:
        if heartbeat_s <= 0:
            raise ValueError("heartbeat_s must be positive")
        self.heartbeat_s = heartbeat_s
        self.announce_url = announce_url.rstrip("/") if announce_url else None
        self.capabilities = capabilities or WORKER_CAPABILITIES
        self._server = _WorkerServer((host, port), _ConnectionHandler)
        self._server.fabric_worker = self
        self.worker_id = worker_id or (
            f"{socket.gethostname()}-{os.getpid()}-"
            f"{self._server.server_address[1]}"
        )
        self._lock = threading.Lock()
        self._in_flight = 0
        self._stop_announce = threading.Event()
        self._threads: list[threading.Thread] = []
        self._started = False

    @property
    def address(self) -> str:
        host, port = self._server.server_address[:2]
        return f"{host}:{port}"

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    def chunks_in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def _chunk_started(self) -> None:
        with self._lock:
            self._in_flight += 1

    def _chunk_finished(self) -> None:
        with self._lock:
            self._in_flight -= 1

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "FabricWorker":
        """Serve on background threads; returns immediately."""
        if self._started:
            return self
        self._started = True
        acceptor = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            daemon=True,
            name=f"loupe-fabric-accept-{self.worker_id}",
        )
        acceptor.start()
        self._threads.append(acceptor)
        if self.announce_url:
            announcer = threading.Thread(
                target=self._announce_loop, daemon=True,
                name=f"loupe-fabric-announce-{self.worker_id}",
            )
            announcer.start()
            self._threads.append(announcer)
        return self

    def serve_forever(self) -> None:
        """Start (if needed) and block until :meth:`close`."""
        self.start()
        try:
            while not self._stop_announce.wait(0.5):
                pass
        except KeyboardInterrupt:
            raise
        finally:
            self.close()

    def close(self) -> None:
        self._stop_announce.set()
        try:
            self._server.shutdown()
        except Exception:
            pass
        self._server.server_close()

    def __enter__(self) -> "FabricWorker":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- fleet announcements -----------------------------------------------

    def _announce_loop(self) -> None:
        while True:
            self._announce_once()
            if self._stop_announce.wait(self.heartbeat_s):
                return

    def _announce_once(self) -> None:
        """POST one fleet heartbeat; failures are observability loss,
        not worker failure."""
        body = json.dumps({
            "worker_id": self.worker_id,
            "addr": self.address,
            "chunks_in_flight": self.chunks_in_flight(),
            "ttl_s": self.heartbeat_s * 5,
        }, sort_keys=True).encode()
        request = urllib.request.Request(
            f"{self.announce_url}/fleet/heartbeat",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=2.0):
                pass
        except Exception:
            pass
