"""The fabric wire protocol: length-prefixed frames + versioned handshake.

Everything the distributed run fabric says on a socket is a **frame**:

.. code-block:: text

    +----------+----------------+----------------------+
    | kind (1) | length (4, BE) | payload (length bytes)|
    +----------+----------------+----------------------+

A one-byte frame kind, a big-endian 4-byte payload length, then the
payload. The length prefix is what makes the protocol safe to read
from a stream socket: a reader always knows exactly how many bytes the
current frame still owes, so a slow sender never wedges parsing and a
dead sender is detected as a *truncated* frame, not a hang. Frames are
capped at :data:`MAX_FRAME_BYTES`; an oversized declaration is refused
before a single payload byte is read (a corrupt or adversarial length
cannot make the reader allocate unbounded memory).

Connections open with a **versioned handshake**: the client sends a
``HELLO`` (JSON: magic + protocol version), the worker answers with a
``WELCOME`` (JSON: magic, version, pid, and the worker's
:class:`~repro.core.runner.BackendCapabilities` contract — the same
descriptor local scheduling consults, so the remote executor can
refuse a worker that could not honor pickled chunks). Any mismatch —
wrong magic, wrong version — is a typed
:class:`FabricProtocolError` naming both sides, never a silent
misparse.

After the handshake, probe chunks ride ``CHUNK`` frames as the *same
pickled payload* ``repro.core.engine._execute_chunk`` already accepts
for process sharding — the fabric is process sharding with the pool's
pipe replaced by a socket. Workers acknowledge receipt (``ACK``),
answer with ``RESULT`` (pickled rows) or ``ERROR`` (pickled
exception), and emit periodic ``HEARTBEAT`` frames so a hung worker is
distinguishable from a busy one.

All encode/decode functions here are pure functions over bytes and
file-like objects — the protocol is fully testable over
``io.BytesIO``, no socket required.
"""

from __future__ import annotations

import json
import pickle
import struct

from repro.core.runner import BackendCapabilities
from repro.errors import LoupeError

#: Protocol identity; both handshake documents carry it.
MAGIC = "loupe-fabric"

#: Bumped on any incompatible frame or payload change.
PROTOCOL_VERSION = 1

#: Hard cap on one frame's payload. Generous for chunk pickles (a
#: chunk carries one backend + a slice of policies), small enough that
#: a corrupt length prefix cannot balloon reader memory.
MAX_FRAME_BYTES = 64 << 20

#: Frame kinds (the single header byte).
KIND_HELLO = 1
KIND_WELCOME = 2
KIND_CHUNK = 3
KIND_ACK = 4
KIND_RESULT = 5
KIND_ERROR = 6
KIND_HEARTBEAT = 7

FRAME_KINDS = (
    KIND_HELLO, KIND_WELCOME, KIND_CHUNK, KIND_ACK,
    KIND_RESULT, KIND_ERROR, KIND_HEARTBEAT,
)

_HEADER = struct.Struct(">BI")


class FabricProtocolError(LoupeError):
    """The peer violated the fabric wire protocol.

    Raised for truncated frames, oversized length declarations,
    unknown frame kinds, malformed handshake documents, and
    magic/version mismatches. Never used for clean connection close —
    :func:`read_frame` reports that as ``None`` so callers can tell a
    finished peer from a broken one.
    """


def encode_frame(kind: int, payload: bytes) -> bytes:
    """One wire frame: kind byte, length prefix, payload."""
    if kind not in FRAME_KINDS:
        raise FabricProtocolError(f"unknown frame kind {kind!r}")
    if len(payload) > MAX_FRAME_BYTES:
        raise FabricProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    return _HEADER.pack(kind, len(payload)) + payload


def _read_exact(readable, count: int) -> "bytes | None":
    """Exactly *count* bytes from *readable*, ``None`` on immediate EOF.

    A partial read followed by EOF — the footprint of a peer dying
    mid-frame — is a :class:`FabricProtocolError`, never a short
    return (silent truncation would hand corrupt pickles downstream).
    """
    chunks: list[bytes] = []
    got = 0
    while got < count:
        piece = readable.read(count - got)
        if not piece:
            if got == 0:
                return None
            raise FabricProtocolError(
                f"truncated frame: expected {count} more byte(s), "
                f"got {got} before EOF"
            )
        chunks.append(piece)
        got += len(piece)
    return b"".join(chunks)


def read_frame(readable) -> "tuple[int, bytes] | None":
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    *readable* is any object with a blocking ``read(n)`` (a socket's
    ``makefile("rb")``, an ``io.BytesIO``). Truncation mid-header or
    mid-payload, an unknown kind byte, and an oversized length
    declaration all raise :class:`FabricProtocolError` — the caller
    never hangs on a frame that cannot complete, and never reads a
    payload the length prefix oversold.
    """
    header = _read_exact(readable, _HEADER.size)
    if header is None:
        return None
    kind, length = _HEADER.unpack(header)
    if kind not in FRAME_KINDS:
        raise FabricProtocolError(f"unknown frame kind {kind!r} on the wire")
    if length > MAX_FRAME_BYTES:
        raise FabricProtocolError(
            f"frame declares a {length}-byte payload, over the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    payload = _read_exact(readable, length)
    if payload is None:
        if length == 0:
            return kind, b""
        raise FabricProtocolError(
            f"truncated frame: header promised {length} payload "
            f"byte(s), got EOF"
        )
    return kind, payload


# -- handshake -----------------------------------------------------------


def hello_payload() -> bytes:
    """The client's opening document: who it speaks and which version."""
    return json.dumps(
        {"magic": MAGIC, "version": PROTOCOL_VERSION}, sort_keys=True
    ).encode()


def welcome_payload(
    capabilities: BackendCapabilities, *, pid: int, worker_id: str = ""
) -> bytes:
    """The worker's answer: identity plus its capability contract."""
    return json.dumps({
        "magic": MAGIC,
        "version": PROTOCOL_VERSION,
        "pid": pid,
        "worker_id": worker_id,
        "capabilities": capabilities.to_dict(),
    }, sort_keys=True).encode()


def _decode_handshake(payload: bytes, side: str) -> dict:
    try:
        document = json.loads(payload.decode())
    except (ValueError, UnicodeDecodeError) as error:
        raise FabricProtocolError(
            f"malformed {side} handshake payload: {error}"
        )
    if not isinstance(document, dict):
        raise FabricProtocolError(
            f"malformed {side} handshake payload: expected an object, "
            f"got {type(document).__name__}"
        )
    if document.get("magic") != MAGIC:
        raise FabricProtocolError(
            f"{side} handshake magic {document.get('magic')!r} is not "
            f"{MAGIC!r} — the peer is not a loupe fabric endpoint"
        )
    version = document.get("version")
    if version != PROTOCOL_VERSION:
        raise FabricProtocolError(
            f"fabric protocol version mismatch: peer speaks "
            f"{version!r}, this side speaks {PROTOCOL_VERSION}"
        )
    return document


def decode_hello(payload: bytes) -> dict:
    """Validate a ``HELLO`` document (magic + version), return it."""
    return _decode_handshake(payload, "hello")


def decode_welcome(payload: bytes) -> dict:
    """Validate a ``WELCOME`` document; materialize its capabilities.

    The returned dict carries ``capabilities`` as a
    :class:`BackendCapabilities` descriptor (absent fields read
    ``False``, the conservative default the contract specifies).
    """
    document = _decode_handshake(payload, "welcome")
    raw = document.get("capabilities")
    if not isinstance(raw, dict):
        raise FabricProtocolError(
            "welcome handshake is missing its capabilities contract"
        )
    document["capabilities"] = BackendCapabilities.from_dict(raw)
    return document


# -- chunk payloads ------------------------------------------------------


def encode_chunk(chunk_id: int, job: object) -> bytes:
    """A ``CHUNK`` payload: the id plus the pickled execution job.

    *job* is the exact argument tuple ``_execute_chunk`` accepts —
    ``(backend, workload, tasks, early_exit, fault_policy)`` — so a
    fabric worker and a process-pool worker execute literally the same
    call.
    """
    return pickle.dumps((chunk_id, job), protocol=pickle.HIGHEST_PROTOCOL)


def decode_chunk(payload: bytes) -> tuple[int, object]:
    try:
        chunk_id, job = pickle.loads(payload)
        return int(chunk_id), job
    except Exception as error:
        raise FabricProtocolError(f"undecodable chunk payload: {error}")


def encode_ack(chunk_id: int) -> bytes:
    return struct.pack(">I", chunk_id)


def decode_ack(payload: bytes) -> int:
    if len(payload) != 4:
        raise FabricProtocolError(
            f"ack payload must be 4 bytes, got {len(payload)}"
        )
    return struct.unpack(">I", payload)[0]


def encode_result(chunk_id: int, rows: object) -> bytes:
    return pickle.dumps((chunk_id, rows), protocol=pickle.HIGHEST_PROTOCOL)


def decode_result(payload: bytes) -> tuple[int, object]:
    try:
        chunk_id, rows = pickle.loads(payload)
        return int(chunk_id), rows
    except Exception as error:
        raise FabricProtocolError(f"undecodable result payload: {error}")


def encode_error(chunk_id: int, error: BaseException) -> bytes:
    """An ``ERROR`` payload: the chunk id plus the pickled exception.

    Exceptions that refuse to pickle (a backend error holding a
    socket, say) degrade to a plain :class:`FabricProtocolError`
    carrying the repr — the scheduler always gets *an* exception to
    re-raise, never a torn frame.
    """
    try:
        return pickle.dumps(
            (chunk_id, error), protocol=pickle.HIGHEST_PROTOCOL
        )
    except Exception:
        fallback = FabricProtocolError(
            f"worker error did not survive pickling: {error!r}"
        )
        return pickle.dumps(
            (chunk_id, fallback), protocol=pickle.HIGHEST_PROTOCOL
        )


def decode_error(payload: bytes) -> tuple[int, BaseException]:
    try:
        chunk_id, error = pickle.loads(payload)
    except Exception as error:
        raise FabricProtocolError(f"undecodable error payload: {error}")
    if not isinstance(error, BaseException):
        raise FabricProtocolError(
            f"error payload carries {type(error).__name__}, not an "
            f"exception"
        )
    return int(chunk_id), error
