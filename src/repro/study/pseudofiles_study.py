"""Pseudo-file usage study (extension; the paper sets this aside
"for space reasons", Section 4/5 intro).

Loupe tracks accesses to /proc, /dev and /sys files alongside
syscalls. This study runs the corpus with pseudo-file analysis enabled
and reports, per special file: how many applications touch it, and for
how many it genuinely needs an implementation (neither disabling nor
faking the access survives the workload).
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from collections.abc import Sequence

from repro.appsim.apps import App
from repro.core.analyzer import Analyzer, AnalyzerConfig
from repro.core.pseudofiles import classify


@dataclasses.dataclass(frozen=True)
class PseudoFileRow:
    """Corpus-wide usage of one special file."""

    path: str
    filesystem: str              # /proc, /dev, or /sys
    apps_using: int
    apps_requiring: int

    @property
    def required_fraction(self) -> float:
        if self.apps_using == 0:
            return 0.0
        return self.apps_requiring / self.apps_using


@dataclasses.dataclass(frozen=True)
class PseudoFileStudy:
    rows: tuple[PseudoFileRow, ...]
    app_count: int

    def by_filesystem(self) -> dict[str, int]:
        counts: Counter = Counter()
        for row in self.rows:
            counts[row.filesystem] += 1
        return dict(counts)

    def row(self, path: str) -> PseudoFileRow:
        for entry in self.rows:
            if entry.path == path:
                return entry
        raise KeyError(path)


def pseudo_file_study(
    apps: Sequence[App], *, workload: str = "bench", replicas: int = 3
) -> PseudoFileStudy:
    """Analyze *apps* with pseudo-file tracking and aggregate usage."""
    using: Counter = Counter()
    requiring: Counter = Counter()
    analyzer = Analyzer(AnalyzerConfig(replicas=replicas, pseudo_files=True))
    for app in apps:
        result = analyzer.analyze(
            app.backend(), app.workload(workload),
            app=app.name, app_version=app.version,
        )
        for path in result.pseudo_files():
            using[path] += 1
            if result.features[path].decision.required:
                requiring[path] += 1
    rows = tuple(
        PseudoFileRow(
            path=path,
            filesystem=classify(path),
            apps_using=count,
            apps_requiring=requiring[path],
        )
        for path, count in sorted(using.items())
    )
    return PseudoFileStudy(rows=rows, app_count=len(apps))


def render_pseudo_files(study: PseudoFileStudy) -> str:
    lines = [
        "Pseudo-file usage across the application set",
        f"{'path':<48} {'fs':<6} {'using':>6} {'required':>9}",
    ]
    for row in study.rows:
        lines.append(
            f"{row.path:<48} {row.filesystem:<6} {row.apps_using:>6} "
            f"{row.apps_requiring:>9}"
        )
    by_fs = ", ".join(
        f"{fs}: {count}" for fs, count in sorted(study.by_filesystem().items())
    )
    lines.append(f"distinct special files by filesystem -> {by_fs}")
    return "\n".join(lines)
