"""Temporal stability studies (paper Section 5.5, Table 3 and Figure 8).

Two questions: how does the *libc* change an app's syscall footprint
over 17 years (Table 3: Nginx 0.3.19 against glibc 2.3.2/i386 vs glibc
2.31/x86-64), and how does the *application* change it over 11-15
years (Figure 8: httpd, Nginx, Redis old vs 2021 builds)? The paper's
punchline: support is a one-time effort — only 8 genuinely new
syscalls across 17 years of glibc, and old/new app builds use nearly
identical footprints.

The Table 3 syscall lists are transcribed verbatim from the paper
(the i386 build cannot be synthesized from our x86-64 op models); the
*classification* of the differences — architecture variants vs new
syscalls vs deprecations — is computed, not transcribed.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping

from repro.appsim.apps.legacy import build_legacy_pairs
from repro.study.base import analyze_app

#: Nginx 0.3.19 with glibc 2.3.2, compiled and run in 32-bit mode
#: (paper Table 3, left column): 48 distinct syscalls.
NGINX_GLIBC_232_I386: frozenset[str] = frozenset(
    """
    _llseek accept access bind brk clone close connect epoll_create
    fcntl64 epoll_ctl epoll_wait execve exit_group dup2 fstat64
    geteuid32 mkdir mmap2 setuid32 old_mmap setgroups32 uname open
    prctl pread pwrite read rt_sigaction rt_sigprocmask rt_sigsuspend
    set_thread_area setgid32 setsid setsockopt recv socket socketpair
    stat64 munmap umask getpid getrlimit ioctl write writev
    gettimeofday listen
    """.split()
)

#: Nginx 0.3.19 with glibc 2.31 on x86-64 (paper Table 3, right
#: column): 51 distinct syscalls. The paper's table prints 50 names
#: for a claimed count of 51; ``bind`` — unquestionably used by a
#: server that the left column shows binding — is the reconstruction.
NGINX_GLIBC_231_X86_64: frozenset[str] = frozenset(
    """
    read write close stat fstat lstat lseek brk rt_sigaction mmap
    ioctl rt_sigprocmask pread64 setsockopt writev access sendfile
    socket munmap accept connect epoll_wait mprotect recvfrom listen
    socketpair pwrite64 prlimit64 epoll_create clone execve fcntl
    mkdir umask setuid setgid geteuid setsid rt_sigsuspend dup2
    setgroups _sysctl prctl arch_prctl getpid set_tid_address
    exit_group epoll_ctl openat set_robust_list bind
    """.split()
)

#: i386 name -> x86-64 equivalent for pure architecture variants
#: (the paper's italics).
ARCH_VARIANTS: dict[str, str] = {
    "_llseek": "lseek",
    "fcntl64": "fcntl",
    "fstat64": "fstat",
    "stat64": "stat",
    "geteuid32": "geteuid",
    "setuid32": "setuid",
    "setgid32": "setgid",
    "setgroups32": "setgroups",
    "mmap2": "mmap",
    "old_mmap": "mmap",
    "pread": "pread64",
    "pwrite": "pwrite64",
    "recv": "recvfrom",
    "set_thread_area": "arch_prctl",
}


@dataclasses.dataclass(frozen=True)
class GlibcComparison:
    """Table 3, classified."""

    old_syscalls: frozenset[str]
    new_syscalls: frozenset[str]
    arch_variants: Mapping[str, str]
    genuinely_new: frozenset[str]      # require fresh compat-layer work
    deprecated: frozenset[str]         # present old, gone new

    @property
    def old_count(self) -> int:
        return len(self.old_syscalls)

    @property
    def new_count(self) -> int:
        return len(self.new_syscalls)


def glibc_comparison() -> GlibcComparison:
    """Classify the Table 3 delta between the two Nginx builds."""
    translated = {
        ARCH_VARIANTS.get(name, name) for name in NGINX_GLIBC_232_I386
    }
    genuinely_new = NGINX_GLIBC_231_X86_64 - translated
    deprecated = translated - NGINX_GLIBC_231_X86_64
    used_variants = {
        old: new
        for old, new in ARCH_VARIANTS.items()
        if old in NGINX_GLIBC_232_I386
    }
    return GlibcComparison(
        old_syscalls=NGINX_GLIBC_232_I386,
        new_syscalls=NGINX_GLIBC_231_X86_64,
        arch_variants=used_variants,
        genuinely_new=frozenset(genuinely_new),
        deprecated=frozenset(deprecated),
    )


# -- Figure 8: application evolution -----------------------------------------


@dataclasses.dataclass(frozen=True)
class EvolutionBar:
    """One Figure 8 bar: syscall usage of one build of one app."""

    app: str
    version: str
    year: int
    traced: int
    required: int
    stubbable: int
    fakeable: int
    avoidable: int


@dataclasses.dataclass(frozen=True)
class EvolutionPair:
    """Old vs recent build of one application."""

    app: str
    old: EvolutionBar
    recent: EvolutionBar

    @property
    def traced_drift(self) -> int:
        """Absolute change in traced syscall count (paper: small)."""
        return abs(self.recent.traced - self.old.traced)

    @property
    def avoidable_drift(self) -> int:
        return abs(self.recent.avoidable - self.old.avoidable)


def _bar(app, year: int) -> EvolutionBar:
    result = analyze_app(app, "bench")
    stubbable = result.stubbable_syscalls()
    fakeable = result.fakeable_syscalls()
    return EvolutionBar(
        app=app.name,
        version=app.version,
        year=year,
        traced=len(result.traced_syscalls()),
        required=len(result.required_syscalls()),
        stubbable=len(stubbable),
        fakeable=len(fakeable),
        avoidable=len(stubbable | fakeable),
    )


def figure8() -> list[EvolutionPair]:
    """Analyze old and recent builds of httpd, Nginx, and Redis."""
    pairs = []
    for name, (old_app, recent_app) in build_legacy_pairs().items():
        pairs.append(
            EvolutionPair(
                app=name,
                old=_bar(old_app, old_app.year),
                recent=_bar(recent_app, 2021),
            )
        )
    return pairs


def render_table3(comparison: GlibcComparison) -> str:
    lines = [
        "Table 3: Nginx 0.3.19 syscall usage across glibc versions",
        f"glibc 2.3.2 / 32-bit: {comparison.old_count} syscalls",
        f"glibc 2.31  / 64-bit: {comparison.new_count} syscalls",
        "architecture variants: "
        + ", ".join(f"{o}->{n}" for o, n in sorted(comparison.arch_variants.items())),
        f"genuinely new ({len(comparison.genuinely_new)}): "
        + ", ".join(sorted(comparison.genuinely_new)),
        f"deprecated/dropped ({len(comparison.deprecated)}): "
        + ", ".join(sorted(comparison.deprecated)),
    ]
    return "\n".join(lines)
