"""API importance (paper Section 5.1, Figures 3 and 5).

*API importance* of a syscall is the fraction of applications in the
data set that **require** it (Tsai et al.'s metric, reused by the
paper). Under naive dynamic analysis every traced syscall counts as
required; under Loupe only those that can neither be stubbed nor faked
do. The gap between those two curves is the paper's headline: 180
syscalls appear required to the naive eye, 148 to Loupe's, and the
naive curve dominates pointwise.

Figure 5 applies the same per-syscall counting to four views over the
seven-app set: static binary, static source, dynamic traced, dynamic
required.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from collections.abc import Mapping, Sequence

from repro.appsim.apps import App
from repro.core.result import AnalysisResult
from repro.syscalls import number_of


@dataclasses.dataclass(frozen=True)
class ImportanceTable:
    """Per-syscall importance for one analysis mode."""

    mode: str
    fractions: Mapping[str, float]     # syscall -> fraction of apps
    app_count: int

    def curve(self) -> list[float]:
        """Importance values sorted descending (the Figure 3 series)."""
        return sorted(self.fractions.values(), reverse=True)

    def total_syscalls(self) -> int:
        """How many syscalls have nonzero importance."""
        return len(self.fractions)

    def importance_of(self, syscall: str) -> float:
        return self.fractions.get(syscall, 0.0)

    def top(self, n: int) -> list[tuple[str, float]]:
        ranked = sorted(
            self.fractions.items(), key=lambda item: (-item[1], item[0])
        )
        return ranked[:n]


def _fractions(sets: Sequence[frozenset[str]]) -> dict[str, float]:
    counts: Counter = Counter()
    for syscalls in sets:
        for name in syscalls:
            counts[name] += 1
    total = len(sets)
    return {name: count / total for name, count in counts.items()}


def loupe_importance(results: Sequence[AnalysisResult]) -> ImportanceTable:
    """Importance where required = traced and not stub/fake-able."""
    return ImportanceTable(
        mode="loupe",
        fractions=_fractions([r.required_syscalls() for r in results]),
        app_count=len(results),
    )


def naive_importance(results: Sequence[AnalysisResult]) -> ImportanceTable:
    """Importance where required = traced (strace-level analysis)."""
    return ImportanceTable(
        mode="naive",
        fractions=_fractions([r.traced_syscalls() for r in results]),
        app_count=len(results),
    )


@dataclasses.dataclass(frozen=True)
class Figure3:
    """Both Figure 3 series, ready to print or plot."""

    loupe: ImportanceTable
    naive: ImportanceTable

    def dominance_holds(self) -> bool:
        """True when the naive sorted curve dominates Loupe's pointwise."""
        loupe_curve = self.loupe.curve()
        naive_curve = self.naive.curve()
        padded = loupe_curve + [0.0] * (len(naive_curve) - len(loupe_curve))
        return all(n >= l for n, l in zip(naive_curve, padded))


def figure3(results: Sequence[AnalysisResult]) -> Figure3:
    return Figure3(
        loupe=loupe_importance(results), naive=naive_importance(results)
    )


# -- Figure 5: per-method syscall identification over the seven apps --------

FIVE_METHODS = (
    "static-binary", "static-source", "dynamic-traced", "dynamic-required"
)


def syscall_sets(
    apps: Sequence[App], results: Sequence[AnalysisResult]
) -> dict[str, ImportanceTable]:
    """Figure 5's four views: which syscalls each method identifies.

    *results* must be the analyses of *apps* in the same order.
    """
    if len(apps) != len(results):
        raise ValueError("apps and results must align")
    views: dict[str, list[frozenset[str]]] = {m: [] for m in FIVE_METHODS}
    for app, result in zip(apps, results):
        views["static-binary"].append(app.program.static_view("binary"))
        views["static-source"].append(app.program.static_view("source"))
        views["dynamic-traced"].append(result.traced_syscalls())
        views["dynamic-required"].append(result.required_syscalls())
    return {
        method: ImportanceTable(
            mode=method,
            fractions=_fractions(sets),
            app_count=len(apps),
        )
        for method, sets in views.items()
    }


def render_figure5_row(table: ImportanceTable) -> str:
    """One Figure 5 panel as text: syscall numbers sorted by importance."""
    ranked = sorted(
        table.fractions.items(), key=lambda item: (-item[1], number_of(item[0]))
    )
    cells = [
        f"{number_of(name)}({fraction:.0%})" for name, fraction in ranked
    ]
    return f"[{table.mode}] {len(cells)} syscalls: " + " ".join(cells)
