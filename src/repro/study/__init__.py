"""The paper's Section 5 analysis suite."""

from repro.study.base import analyze_app, analyze_apps, clear_cache, shared_database
from repro.study.checks import (
    CheckRow,
    CheckStudy,
    check_rows,
    check_study,
    expected_unchecked,
)
from repro.study.evolution import (
    ARCH_VARIANTS,
    NGINX_GLIBC_231_X86_64,
    NGINX_GLIBC_232_I386,
    EvolutionBar,
    EvolutionPair,
    GlibcComparison,
    figure8,
    glibc_comparison,
    render_table3,
)
from repro.study.impact import (
    IMPACT_APPS,
    ImpactRow,
    Table2,
    analyze_impacts,
    render_table2,
)
from repro.study.importance import (
    Figure3,
    ImportanceTable,
    figure3,
    loupe_importance,
    naive_importance,
    render_figure5_row,
    syscall_sets,
)
from repro.study.libcinit import (
    CONFIGURATIONS,
    LibcTraceRow,
    Table4,
    render_table4,
    table4,
    trace_hello,
)
from repro.study.methods import (
    Figure4,
    MethodCounts,
    counts_for,
    figure4,
    render_figure4,
)
from repro.study.pseudofiles_study import (
    PseudoFileRow,
    PseudoFileStudy,
    pseudo_file_study,
    render_pseudo_files,
)
from repro.study.arch_translate import (
    GeneratedColumn,
    generate_table3_left,
    to_i386_era,
)
from repro.study.ranges import (
    RangeBucket,
    RangeStudy,
    range_study,
    render_ranges,
)
from repro.study.vectored_study import (
    VectoredStudy,
    VectoredUsage,
    render_vectored,
    vectored_study,
)

__all__ = [
    "ARCH_VARIANTS",
    "CONFIGURATIONS",
    "CheckRow",
    "CheckStudy",
    "EvolutionBar",
    "EvolutionPair",
    "Figure3",
    "Figure4",
    "GeneratedColumn",
    "GlibcComparison",
    "IMPACT_APPS",
    "ImpactRow",
    "ImportanceTable",
    "LibcTraceRow",
    "MethodCounts",
    "NGINX_GLIBC_231_X86_64",
    "NGINX_GLIBC_232_I386",
    "PseudoFileRow",
    "PseudoFileStudy",
    "RangeBucket",
    "RangeStudy",
    "Table2",
    "Table4",
    "VectoredStudy",
    "VectoredUsage",
    "analyze_app",
    "analyze_apps",
    "analyze_impacts",
    "check_rows",
    "check_study",
    "clear_cache",
    "counts_for",
    "expected_unchecked",
    "figure3",
    "figure4",
    "figure8",
    "generate_table3_left",
    "glibc_comparison",
    "loupe_importance",
    "naive_importance",
    "pseudo_file_study",
    "range_study",
    "render_figure4",
    "render_pseudo_files",
    "render_ranges",
    "render_vectored",
    "to_i386_era",
    "vectored_study",
    "render_figure5_row",
    "render_table2",
    "render_table3",
    "render_table4",
    "shared_database",
    "syscall_sets",
    "table4",
    "trace_hello",
]
