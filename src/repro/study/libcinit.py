"""Libc initialization-sequence study (paper Section 5.6, Table 4).

A trivial hello-world is traced against glibc 2.28 and musl 1.2.2, in
dynamic and static linking. The invocation counts come out of actually
*running* the modeled programs, not from transcribed constants — the
libc models encode the sequences, and this study traces them exactly
as Loupe would:

=================== ============== =================
configuration        invocations    distinct syscalls
=================== ============== =================
glibc dynamic        28             13
musl dynamic         11             9
glibc static         11             8
musl static          6              6
=================== ============== =================
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from collections.abc import Mapping

from repro.appsim.apps.misc import build_hello
from repro.appsim.libc import (
    GLIBC_228_DYNAMIC,
    GLIBC_228_STATIC,
    MUSL_122_DYNAMIC,
    MUSL_122_STATIC,
    LibcModel,
)
from repro.core.policy import passthrough

#: The four configurations of Table 4, in the paper's reading order.
CONFIGURATIONS: tuple[LibcModel, ...] = (
    GLIBC_228_DYNAMIC,
    MUSL_122_DYNAMIC,
    GLIBC_228_STATIC,
    MUSL_122_STATIC,
)


@dataclasses.dataclass(frozen=True)
class LibcTraceRow:
    """One Table 4 cell: hello-world's trace under one libc build."""

    libc: str
    version: str
    linking: str
    invocations: Mapping[str, int]      # syscall -> call count

    @property
    def total_invocations(self) -> int:
        return sum(self.invocations.values())

    @property
    def distinct_syscalls(self) -> int:
        return len(self.invocations)

    @property
    def syscall_set(self) -> frozenset[str]:
        return frozenset(self.invocations)


def trace_hello(libc: LibcModel) -> LibcTraceRow:
    """Run the modeled hello-world under *libc* and record its trace."""
    app = build_hello(libc)
    run = app.backend().run(app.workload("suite"), passthrough())
    assert run.success, f"hello-world failed under {libc.vendor} {libc.linking}"
    plain = Counter(
        {
            name: count
            for name, count in run.traced.items()
            if ":" not in name and not name.startswith("/")
        }
    )
    return LibcTraceRow(
        libc=libc.vendor,
        version=libc.version,
        linking=libc.linking,
        invocations=dict(sorted(plain.items())),
    )


@dataclasses.dataclass(frozen=True)
class Table4:
    """All four rows plus the paper's comparison facts."""

    rows: tuple[LibcTraceRow, ...]

    def row(self, vendor: str, linking: str) -> LibcTraceRow:
        for entry in self.rows:
            if entry.libc == vendor and entry.linking == linking:
                return entry
        raise KeyError((vendor, linking))

    def common_syscalls(self, linking: str) -> frozenset[str]:
        """Syscalls shared by glibc and musl under one linking mode."""
        return (
            self.row("glibc", linking).syscall_set
            & self.row("musl", linking).syscall_set
        )

    def overall_common(self) -> frozenset[str]:
        common = self.rows[0].syscall_set
        for entry in self.rows[1:]:
            common &= entry.syscall_set
        return common

    def dynamic_ratio(self) -> float:
        """glibc-dynamic over musl-dynamic invocation counts (~2.5x)."""
        return (
            self.row("glibc", "dynamic").total_invocations
            / self.row("musl", "dynamic").total_invocations
        )

    def extreme_ratio(self) -> float:
        """glibc-dynamic over musl-static (the paper's "as much as 4.5x")."""
        return (
            self.row("glibc", "dynamic").total_invocations
            / self.row("musl", "static").total_invocations
        )


def table4() -> Table4:
    return Table4(rows=tuple(trace_hello(libc) for libc in CONFIGURATIONS))


def render_table4(table: Table4) -> str:
    lines = ["Table 4: hello-world syscalls across libcs"]
    for row in table.rows:
        calls = ", ".join(
            f"{name} ({count}x)" for name, count in row.invocations.items()
        )
        lines.append(
            f"{row.libc} {row.version} {row.linking}: "
            f"{row.total_invocations} invocations, "
            f"{row.distinct_syscalls} distinct -> {calls}"
        )
    lines.append(
        f"common dynamic: {sorted(table.common_syscalls('dynamic'))}"
    )
    lines.append(f"common static: {sorted(table.common_syscalls('static'))}")
    lines.append(f"common overall: {sorted(table.overall_common())}")
    lines.append(
        f"glibc-dyn/musl-dyn = {table.dynamic_ratio():.1f}x, "
        f"glibc-dyn/musl-static = {table.extreme_ratio():.1f}x"
    )
    return "\n".join(lines)
