"""Shared plumbing for the Section 5 studies: cached corpus analysis.

Analyses are memoized process-wide (the loupedb pattern) and, since the
probe engine landed, may be computed concurrently: ``analyze_apps``
fans independent applications out over a thread pool (``jobs``), and
each per-app analyzer can itself replicate probes in parallel
(``parallel``). The shared cache is guarded by a lock so concurrent
workers can never race on it.
"""

from __future__ import annotations

import threading
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor

from repro.appsim.apps import App
from repro.core.analyzer import Analyzer, AnalyzerConfig
from repro.core.result import AnalysisResult
from repro.db import Database, RecordKey

#: Process-wide cache: studies and benchmarks share analyses, mirroring
#: how the paper's studies all read the same loupedb measurements.
_CACHE = Database()

#: Guards every access to ``_CACHE`` (membership, get, add, swap):
#: ``analyze_apps(jobs>1)`` hits it from several worker threads.
_CACHE_LOCK = threading.Lock()


def analyze_app(
    app: App,
    workload_name: str,
    *,
    replicas: int = 3,
    parallel: int = 1,
    cache: bool = True,
) -> AnalysisResult:
    """Analyze one app+workload, memoized in the shared database.

    ``parallel``/``cache`` configure the per-analysis probe engine;
    they change how fast an analysis runs, never what it concludes, so
    memoized records are valid across every knob combination.
    """
    backend = app.backend()
    key = RecordKey(
        app=app.name,
        app_version=app.version,
        workload=workload_name,
        backend=backend.name,
    )
    with _CACHE_LOCK:
        if key in _CACHE:
            return _CACHE.get(key)
    analyzer = Analyzer(
        AnalyzerConfig(replicas=replicas, parallel=parallel, cache=cache)
    )
    result = analyzer.analyze(
        backend,
        app.workload(workload_name),
        app=app.name,
        app_version=app.version,
    )
    with _CACHE_LOCK:
        # A concurrent worker may have analyzed the same app meanwhile;
        # analyses are deterministic, so first-write-wins keeps every
        # caller seeing one canonical record.
        if key in _CACHE:
            return _CACHE.get(key)
        _CACHE.add(result)
    return result


def analyze_apps(
    apps: Sequence[App],
    workload_name: str,
    *,
    replicas: int = 3,
    jobs: int = 1,
    parallel: int = 1,
) -> list[AnalysisResult]:
    """Analyze many apps under the same workload name (cached).

    ``jobs`` schedules whole applications concurrently (they share
    nothing but the lock-guarded result cache); ``parallel`` is handed
    to each per-app probe engine. Results come back in corpus order
    regardless of completion order.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if jobs == 1:
        return [
            analyze_app(
                app, workload_name,
                replicas=replicas, parallel=parallel,
            )
            for app in apps
        ]
    with ThreadPoolExecutor(
        max_workers=jobs, thread_name_prefix="loupe-app"
    ) as pool:
        futures = [
            pool.submit(
                analyze_app, app, workload_name,
                replicas=replicas, parallel=parallel,
            )
            for app in apps
        ]
        return [future.result() for future in futures]


def shared_database() -> Database:
    """The process-wide analysis cache as a queryable database."""
    return _CACHE


def clear_cache() -> None:
    """Drop all memoized analyses (tests that mutate models need this)."""
    global _CACHE
    with _CACHE_LOCK:
        _CACHE = Database()
