"""Shared plumbing for the Section 5 studies: the default campaign session.

Studies and benchmarks all read the same measurements, mirroring how
the paper's studies share one loupedb. That shared state is a
module-default :class:`~repro.api.session.LoupeSession`:
``analyze_app``/``analyze_apps`` are thin wrappers that submit
requests to it, the old process-global ``_CACHE`` is simply the
session's database, and app-level concurrency (``jobs``) plus
per-analysis probe parallelism (``parallel``) ride on the session's
scheduling. First write wins on concurrent duplicates, so every
caller sees one canonical record per (app, version, workload, backend).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.api.session import AnalysisRequest, LoupeSession
from repro.appsim.apps import App
from repro.core.analyzer import AnalyzerConfig
from repro.core.result import AnalysisResult
from repro.db import Database

#: Process-wide default session: studies and benchmarks share analyses,
#: mirroring how the paper's studies all read the same loupedb.
_SESSION = LoupeSession()


def default_session() -> LoupeSession:
    """The module-default session every study submits work to."""
    return _SESSION


def analyze_app(
    app: App,
    workload_name: str,
    *,
    replicas: int = 3,
    parallel: int = 1,
    cache: bool = True,
    executor: str = "auto",
) -> AnalysisResult:
    """Analyze one app+workload, memoized in the shared session database.

    ``parallel``/``cache``/``executor`` configure the per-analysis
    probe engine; they change how fast an analysis runs, never what it
    concludes, so memoized records are valid across every knob
    combination.
    """
    config = AnalyzerConfig(
        replicas=replicas, parallel=parallel, cache=cache, executor=executor
    )
    return _SESSION.analyze(
        AnalysisRequest.for_app(app, workload_name), config=config
    )


def analyze_apps(
    apps: Sequence[App],
    workload_name: str,
    *,
    replicas: int = 3,
    jobs: int = 1,
    parallel: int = 1,
    executor: str = "auto",
) -> list[AnalysisResult]:
    """Analyze many apps under the same workload name (cached).

    ``jobs`` schedules whole applications concurrently (they share
    nothing but the session's lock-guarded database); ``parallel`` and
    ``executor`` are handed to each per-app probe engine (``"process"``
    shards the CPU-bound simulated runs past the GIL). Results come
    back in corpus order regardless of completion order.
    """
    config = AnalyzerConfig(
        replicas=replicas, parallel=parallel, executor=executor
    )
    return _SESSION.analyze_many(
        [AnalysisRequest.for_app(app, workload_name) for app in apps],
        jobs=jobs,
        config=config,
    )


def static_result(
    app: App, workload_name: str, level: str = "binary"
) -> AnalysisResult:
    """Static footprint analysis of one app, memoized like any record.

    Goes through the ``static:<level>`` registry backend, so static
    counts come from the same session/fan-out machinery as dynamic
    ones (one record per (app, version, workload, backend) key). Apps
    the registry cannot vouch for — synthetic corpus members, version
    variants — run the same :class:`~repro.staticx.StaticBackend`
    over the in-hand model instead.
    """
    from repro.api.registry import BackendResolutionError

    request = AnalysisRequest(
        app=app.name, workload=workload_name, backend=f"static:{level}"
    )
    try:
        resolved = request.resolve()
    except BackendResolutionError:
        resolved = None
    if resolved is None or resolved.app_version != app.version:
        from repro.staticx import StaticBackend

        request = AnalysisRequest.for_target(
            StaticBackend(app.program, level=level),
            app.workload(workload_name),
            app=app.name,
            app_version=app.version,
        )
    return _SESSION.analyze(request)


def shared_database() -> Database:
    """The default session's analysis cache as a queryable database."""
    return _SESSION.database


def clear_cache() -> None:
    """Drop all memoized analyses (tests that mutate models need this)."""
    _SESSION.clear()
