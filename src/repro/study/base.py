"""Shared plumbing for the Section 5 studies: cached corpus analysis."""

from __future__ import annotations

from collections.abc import Sequence

from repro.appsim.apps import App
from repro.core.analyzer import Analyzer, AnalyzerConfig
from repro.core.result import AnalysisResult
from repro.db import Database, RecordKey

#: Process-wide cache: studies and benchmarks share analyses, mirroring
#: how the paper's studies all read the same loupedb measurements.
_CACHE = Database()


def analyze_app(
    app: App, workload_name: str, *, replicas: int = 3
) -> AnalysisResult:
    """Analyze one app+workload, memoized in the shared database."""
    backend = app.backend()
    key = RecordKey(
        app=app.name,
        app_version=app.version,
        workload=workload_name,
        backend=backend.name,
    )
    if key in _CACHE:
        return _CACHE.get(key)
    analyzer = Analyzer(AnalyzerConfig(replicas=replicas))
    result = analyzer.analyze(
        backend,
        app.workload(workload_name),
        app=app.name,
        app_version=app.version,
    )
    _CACHE.add(result)
    return result


def analyze_apps(
    apps: Sequence[App], workload_name: str, *, replicas: int = 3
) -> list[AnalysisResult]:
    """Analyze many apps under the same workload name (cached)."""
    return [analyze_app(app, workload_name, replicas=replicas) for app in apps]


def shared_database() -> Database:
    """The process-wide analysis cache as a queryable database."""
    return _CACHE


def clear_cache() -> None:
    """Drop all memoized analyses (tests that mutate models need this)."""
    global _CACHE
    _CACHE = Database()
