"""Return-value check study (paper Section 5.2, Figure 7).

The paper manually inspected application sources to record which libc
syscall wrappers have their return values checked, then asked: does
checking predict stub/fake-ability? (Answer: no — the ability to stub
or fake "is not a factor of the presence (or absence) of checks, but
rather of the semantics of individual system calls and applications".)

Our application models carry the same ground truth per call site
(``checks_return``), restricted — as in the paper — to app-originated
wrapper calls. We reproduce both the per-syscall check percentages and
the (non-)correlation with avoidability.
"""

from __future__ import annotations

import dataclasses
import math
from collections import Counter
from collections.abc import Sequence

from repro.appsim.apps import App
from repro.appsim.program import Origin
from repro.core.result import AnalysisResult
from repro.syscalls import ALWAYS_SUCCEEDS, NO_GLIBC_WRAPPER


@dataclasses.dataclass(frozen=True)
class CheckRow:
    """Figure 7 entry for one syscall."""

    syscall: str
    apps_using: int
    apps_checking: int

    @property
    def check_fraction(self) -> float:
        if self.apps_using == 0:
            return 0.0
        return self.apps_checking / self.apps_using


def check_rows(apps: Sequence[App]) -> list[CheckRow]:
    """Scan every app's wrapper call sites, as the paper's scripts did.

    Only wrapper calls from application code count: direct ``syscall()``
    invocations (no glibc wrapper) and libc-internal calls are excluded.
    """
    using: Counter = Counter()
    checking: Counter = Counter()
    for app in apps:
        used: set[str] = set()
        checked: set[str] = set()
        for op in app.program.ops:
            if op.origin is not Origin.APP:
                continue
            if op.syscall in NO_GLIBC_WRAPPER:
                continue
            used.add(op.syscall)
            if op.checks_return:
                checked.add(op.syscall)
        for name in used:
            using[name] += 1
        for name in checked:
            checking[name] += 1
    return [
        CheckRow(syscall=name, apps_using=using[name], apps_checking=checking[name])
        for name in sorted(using)
    ]


@dataclasses.dataclass(frozen=True)
class CheckStudy:
    """Figure 7 data plus the correlation analysis."""

    rows: tuple[CheckRow, ...]
    #: Point-biserial correlation between "wrapper is checked by the
    #: app" and "syscall is avoidable for that app"; the paper's claim
    #: is that this is weak.
    correlation: float
    never_checked: tuple[str, ...]
    always_checked: tuple[str, ...]

    def row(self, syscall: str) -> CheckRow:
        for entry in self.rows:
            if entry.syscall == syscall:
                return entry
        raise KeyError(syscall)


def _correlation(pairs: list[tuple[float, float]]) -> float:
    if len(pairs) < 2:
        return 0.0
    xs = [p[0] for p in pairs]
    ys = [p[1] for p in pairs]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    cov = sum((x - mean_x) * (y - mean_y) for x, y in pairs)
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0.0 or var_y == 0.0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def check_study(
    apps: Sequence[App], results: Sequence[AnalysisResult]
) -> CheckStudy:
    """Figure 7 plus the checks-vs-avoidability correlation."""
    rows = tuple(check_rows(apps))
    pairs: list[tuple[float, float]] = []
    for app, result in zip(apps, results):
        avoidable = result.avoidable_syscalls()
        for op in app.program.ops:
            if op.origin is not Origin.APP or op.syscall in NO_GLIBC_WRAPPER:
                continue
            pairs.append(
                (
                    1.0 if op.checks_return else 0.0,
                    1.0 if op.syscall in avoidable else 0.0,
                )
            )
    never = tuple(r.syscall for r in rows if r.apps_checking == 0)
    always = tuple(
        r.syscall for r in rows if r.apps_checking == r.apps_using
    )
    return CheckStudy(
        rows=rows,
        correlation=_correlation(pairs),
        never_checked=never,
        always_checked=always,
    )


def expected_unchecked(study: CheckStudy) -> list[str]:
    """Sanity view: unchecked syscalls that indeed cannot fail."""
    return [s for s in study.never_checked if s in ALWAYS_SUCCEEDS]
