"""Corpus-wide vectored-syscall study (Section 5.4's findings).

Applies the partial-implementation analysis to a set of applications
and aggregates per vectored syscall: which operations appear at all,
which are required somewhere, and how thin the genuinely-needed slice
of each operation space is. Reproduces the section's headline facts:
``arch_prctl`` is universally invoked yet needs exactly one of six
operations (ARCH_SET_FS); ``prlimit64`` needs ~3 of 16 resources;
``fcntl`` mixes an everywhere-required ``F_SETFL`` with an
always-stubbable ``F_SETFD``.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from collections.abc import Sequence

from repro.appsim.apps import App
from repro.core.analyzer import Analyzer, AnalyzerConfig
from repro.core.partial import summarize
from repro.syscalls.subfeatures import VECTORED_SYSCALLS


@dataclasses.dataclass(frozen=True)
class VectoredUsage:
    """Aggregate usage of one vectored syscall across applications."""

    syscall: str
    total_operations: int
    apps_invoking: int
    operations_used: frozenset[str]        # used by >= 1 app
    operations_required: frozenset[str]    # required by >= 1 app
    required_everywhere: frozenset[str]    # required by every invoking app

    @property
    def used_fraction(self) -> float:
        if self.total_operations == 0:
            return 0.0
        return len(self.operations_used) / self.total_operations

    @property
    def needs_full_implementation(self) -> bool:
        return len(self.operations_required) == self.total_operations


@dataclasses.dataclass(frozen=True)
class VectoredStudy:
    rows: tuple[VectoredUsage, ...]
    app_count: int

    def row(self, syscall: str) -> VectoredUsage:
        for entry in self.rows:
            if entry.syscall == syscall:
                return entry
        raise KeyError(syscall)


def vectored_study(
    apps: Sequence[App], *, workload: str = "bench", replicas: int = 3
) -> VectoredStudy:
    """Sub-feature analysis of *apps*, aggregated per vectored syscall."""
    analyzer = Analyzer(
        AnalyzerConfig(replicas=replicas, subfeature_level=True)
    )
    invoking: Counter = Counter()
    used: dict[str, set[str]] = {name: set() for name in VECTORED_SYSCALLS}
    required: dict[str, set[str]] = {name: set() for name in VECTORED_SYSCALLS}
    required_by_all: dict[str, Counter] = {
        name: Counter() for name in VECTORED_SYSCALLS
    }
    for app in apps:
        result = analyzer.analyze(
            app.backend(), app.workload(workload),
            app=app.name, app_version=app.version,
        )
        for syscall, summary in summarize(result).items():
            invoking[syscall] += 1
            used[syscall].update(summary.used)
            required[syscall].update(summary.required)
            for operation in summary.required:
                required_by_all[syscall][operation] += 1
    rows = []
    for syscall, vectored in sorted(VECTORED_SYSCALLS.items()):
        if invoking[syscall] == 0:
            continue
        everywhere = frozenset(
            operation
            for operation, count in required_by_all[syscall].items()
            if count == invoking[syscall]
        )
        rows.append(
            VectoredUsage(
                syscall=syscall,
                total_operations=len(vectored.operations),
                apps_invoking=invoking[syscall],
                operations_used=frozenset(used[syscall]),
                operations_required=frozenset(required[syscall]),
                required_everywhere=everywhere,
            )
        )
    return VectoredStudy(rows=tuple(rows), app_count=len(apps))


def render_vectored(study: VectoredStudy) -> str:
    lines = [
        "Vectored syscall usage (Section 5.4)",
        f"{'syscall':<12} {'apps':>5} {'ops':>4} {'used':>5} "
        f"{'req':>4}  operations required somewhere",
    ]
    for row in study.rows:
        lines.append(
            f"{row.syscall:<12} {row.apps_invoking:>5} "
            f"{row.total_operations:>4} {len(row.operations_used):>5} "
            f"{len(row.operations_required):>4}  "
            + (", ".join(sorted(row.operations_required)) or "-")
        )
    return "\n".join(lines)
