"""x86-64 -> i386-era syscall translation (generative Table 3 check).

Table 3's left column — Nginx 0.3.19 against glibc 2.3.2 on i386 — is
transcribed from the paper in :mod:`repro.study.evolution`. This module
*generates* that column instead: take the modern Nginx model, backdate
it to the 0.3.19 era (classic syscall variants, era-appropriate
drops), then rename each syscall the way a 2003 i386 glibc would have
issued it:

* 64-bit-struct variants: ``stat``->``stat64``, ``fstat``->``fstat64``,
  ``lseek``->``_llseek``, ``fcntl``->``fcntl64``, ``mmap``->``mmap2``...
* credential size variants: ``setuid``->``setuid32``...
* TLS setup: ``arch_prctl``->``set_thread_area``;
* socket calls multiplexed behind ``socketcall`` keep their operation
  names (``accept``, ``recv``), as the paper's table prints them.

Comparing the generated set against the transcription is a
consistency check between two *independent* artifacts: our behavioral
Nginx model and the paper's measured table.
"""

from __future__ import annotations

import dataclasses

from repro.appsim.apps import App
from repro.study.evolution import NGINX_GLIBC_232_I386

#: x86-64 name -> the name an early-2000s i386 glibc build shows.
X86_64_TO_I386_ERA: dict[str, str] = {
    "lseek": "_llseek",
    "fcntl": "fcntl64",
    "fstat": "fstat64",
    "stat": "stat64",
    "lstat": "lstat64",
    "geteuid": "geteuid32",
    "getuid": "getuid32",
    "getgid": "getgid32",
    "getegid": "getegid32",
    "setuid": "setuid32",
    "setgid": "setgid32",
    "setgroups": "setgroups32",
    "getgroups": "getgroups32",
    "mmap": "mmap2",
    "pread64": "pread",
    "pwrite64": "pwrite",
    "recvfrom": "recv",
    "arch_prctl": "set_thread_area",
    "openat": "open",
    "newfstatat": "stat64",
    "prlimit64": "getrlimit",
    "set_tid_address": None,          # did not exist yet
    "set_robust_list": None,
    "sendfile": "sendfile",
    "_sysctl": "_sysctl",
}

#: Syscalls a 2003-era build simply did not issue.
_ERA_ABSENT = frozenset(
    "set_tid_address set_robust_list getrandom statx rseq "
    "epoll_pwait eventfd2 memfd_create clock_getres _sysctl sendfile "
    "lstat mprotect".split()
)
# Note: _sysctl/sendfile/lstat/mprotect existed but the paper's 2.3.2
# column does not show them for Nginx 0.3.19 — the old glibc reached
# the same functionality through other calls (e.g. plain read loops).


@dataclasses.dataclass(frozen=True)
class GeneratedColumn:
    """The model-generated i386 column and its match to the paper."""

    generated: frozenset[str]
    transcribed: frozenset[str]

    @property
    def agreement(self) -> float:
        """Jaccard similarity between generated and transcribed sets."""
        union = self.generated | self.transcribed
        if not union:
            return 1.0
        return len(self.generated & self.transcribed) / len(union)

    @property
    def missing_from_generated(self) -> frozenset[str]:
        return self.transcribed - self.generated

    @property
    def extra_in_generated(self) -> frozenset[str]:
        return self.generated - self.transcribed


def to_i386_era(names: frozenset[str]) -> frozenset[str]:
    """Rename an x86-64 syscall set the way an old i386 build shows it."""
    translated = set()
    for name in names:
        if name in _ERA_ABSENT:
            continue
        mapped = X86_64_TO_I386_ERA.get(name, name)
        if mapped is None:
            continue
        translated.add(mapped)
    # An i386 mmap-heavy program also shows the legacy old_mmap entry
    # (glibc 2.3.2 used both mmap paths, as the paper's column does).
    if "mmap2" in translated:
        translated.add("old_mmap")
    return frozenset(translated)


def generate_table3_left(nginx_old: App | None = None) -> GeneratedColumn:
    """Generate Table 3's left column from the backdated Nginx model.

    Uses the *benchmark-traced* set: the paper's footprints come from
    running the server, so suite-only code paths (reload, uploads,
    proxying) are rightly absent.
    """
    from repro.core.policy import passthrough

    if nginx_old is None:
        from repro.appsim.apps.legacy import build_legacy_pairs

        nginx_old, _recent = build_legacy_pairs()["nginx"]
    run = nginx_old.backend().run(nginx_old.bench, passthrough())
    return GeneratedColumn(
        generated=to_i386_era(run.syscalls()),
        transcribed=NGINX_GLIBC_232_I386,
    )
