"""Analysis-method comparison per application (paper Figure 4).

For each of the seven apps and each workload (benchmark, test suite):
how many syscalls does each method report? Static source, static
binary, dynamically traced — broken down into required / stubbable /
fakeable / either — per Figure 4's bars. The accompanying aggregate
(Section 5.2): on average 46% of invoked syscalls can be stubbed or
faked under test suites, 60% under benchmarks.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from repro.appsim.apps import App
from repro.core.result import AnalysisResult
from repro.study.base import analyze_app, static_result


@dataclasses.dataclass(frozen=True)
class MethodCounts:
    """One group of Figure 4 bars (one app, one workload)."""

    app: str
    workload: str
    static_source: int
    static_binary: int
    traced: int
    required: int
    stubbable: int
    fakeable: int
    avoidable: int          # stubbable or fakeable ("any")

    @property
    def avoidable_fraction(self) -> float:
        if self.traced == 0:
            return 0.0
        return self.avoidable / self.traced

    @property
    def static_overestimation(self) -> float:
        """Binary-level static count over Loupe-required count."""
        if self.required == 0:
            return 0.0
        return self.static_binary / self.required


def counts_for(app: App, workload_name: str) -> MethodCounts:
    """Compute one Figure 4 bar group."""
    result = analyze_app(app, workload_name)
    return _counts_from(app, result)


def _counts_from(app: App, result: AnalysisResult) -> MethodCounts:
    traced = result.traced_syscalls()
    required = result.required_syscalls()
    stubbable = result.stubbable_syscalls()
    fakeable = result.fakeable_syscalls()
    # Static bars come through the registry's static pseudo-backend —
    # the same measurement path cross-validation diffs — whose
    # conservative analysis concludes required == footprint.
    return MethodCounts(
        app=app.name,
        workload=result.workload,
        static_source=len(
            static_result(app, result.workload, "source").required_syscalls()
        ),
        static_binary=len(
            static_result(app, result.workload, "binary").required_syscalls()
        ),
        traced=len(traced),
        required=len(required),
        stubbable=len(stubbable),
        fakeable=len(fakeable),
        avoidable=len(stubbable | fakeable),
    )


@dataclasses.dataclass(frozen=True)
class Figure4:
    """All bar groups plus the Section 5.2 aggregate statistics."""

    rows: tuple[MethodCounts, ...]

    def for_app(self, app: str, workload: str) -> MethodCounts:
        for row in self.rows:
            if row.app == app and row.workload == workload:
                return row
        raise KeyError((app, workload))

    def mean_avoidable_fraction(self, workload: str) -> float:
        relevant = [r for r in self.rows if r.workload == workload]
        if not relevant:
            return 0.0
        return sum(r.avoidable_fraction for r in relevant) / len(relevant)


def figure4(apps: Sequence[App]) -> Figure4:
    """Compute Figure 4 for *apps* under bench and suite workloads."""
    rows = []
    for app in apps:
        for workload_name in ("bench", "suite"):
            rows.append(counts_for(app, workload_name))
    return Figure4(rows=tuple(rows))


def render_figure4(figure: Figure4) -> str:
    """Figure 4 as a text table."""
    header = (
        f"{'app':<12} {'wl':<6} {'stat-src':>8} {'stat-bin':>8} "
        f"{'traced':>7} {'required':>9} {'stubbed':>8} {'faked':>6} {'any':>5}"
    )
    lines = [header, "-" * len(header)]
    for row in figure.rows:
        lines.append(
            f"{row.app:<12} {row.workload:<6} {row.static_source:>8} "
            f"{row.static_binary:>8} {row.traced:>7} {row.required:>9} "
            f"{row.stubbable:>8} {row.fakeable:>6} {row.avoidable:>5}"
        )
    lines.append(
        "mean avoidable: "
        f"bench {figure.mean_avoidable_fraction('bench'):.0%}, "
        f"suite {figure.mean_avoidable_fraction('suite'):.0%}"
    )
    return "\n".join(lines)
