"""Performance/resource impact study (paper Section 5.3, Table 2).

For Nginx (wrk), Redis (redis-benchmark), and iPerf3 (iperf client),
measure — over 10 replicated runs, like the paper — how stubbing and
faking each invoked syscall moves throughput, peak file descriptors
and peak memory. Only syscalls with an impact beyond the error margin
in some cell make the table; a row is printed for every app in which
that syscall is traced, which is why Redis's +2% ``brk`` appears even
though it is within margin (the syscall is over margin for Nginx and
iPerf3).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from repro.appsim.corpus import build
from repro.core.analyzer import Analyzer, AnalyzerConfig
from repro.core.result import AnalysisResult, FeatureReport

#: The paper's three performance-focused subjects.
IMPACT_APPS = ("nginx", "redis", "iperf3")

#: Replicas used for the impact measurements (paper: averages of 10).
IMPACT_REPLICAS = 10


@dataclasses.dataclass(frozen=True)
class ImpactRow:
    """One Table 2 row: one syscall's impact in one application."""

    app: str
    syscall: str
    perf_delta: float | None      # significant relative change, else None
    fd_delta: float | None
    mem_delta: float | None
    notes: tuple[str, ...]

    @property
    def has_impact(self) -> bool:
        return any(
            delta is not None
            for delta in (self.perf_delta, self.fd_delta, self.mem_delta)
        )

    def cell(self, delta: float | None) -> str:
        if delta is None:
            return "-"
        return f"{delta:+.0%}"


def _significant(report: FeatureReport) -> tuple[float | None, float | None, float | None]:
    """Extract the strongest significant delta per dimension."""
    perf = fd = mem = None
    for impact in (report.stub_impact, report.fake_impact):
        if impact is None:
            continue
        if impact.perf is not None and impact.perf.significant:
            if perf is None or abs(impact.perf.delta) > abs(perf):
                perf = impact.perf.delta
        if impact.fd is not None and impact.fd.significant:
            if fd is None or abs(impact.fd.delta) > abs(fd):
                fd = impact.fd.delta
        if impact.mem is not None and impact.mem.significant:
            if mem is None or abs(impact.mem.delta) > abs(mem):
                mem = impact.mem.delta
    return perf, fd, mem


def _weak_delta(report: FeatureReport) -> tuple[float | None, float | None, float | None]:
    """Deltas even when insignificant (for the union-row display)."""
    perf = fd = mem = None
    for impact in (report.stub_impact, report.fake_impact):
        if impact is None:
            continue
        if impact.perf is not None and abs(impact.perf.delta) > 0.01:
            perf = impact.perf.delta if perf is None else perf
        if impact.fd is not None and abs(impact.fd.delta) > 0.01:
            fd = impact.fd.delta if fd is None else fd
        if impact.mem is not None and abs(impact.mem.delta) > 0.01:
            mem = impact.mem.delta if mem is None else mem
    return perf, fd, mem


@dataclasses.dataclass(frozen=True)
class Table2:
    """All rows plus lookup helpers."""

    rows: tuple[ImpactRow, ...]

    def row(self, app: str, syscall: str) -> ImpactRow:
        for entry in self.rows:
            if entry.app == app and entry.syscall == syscall:
                return entry
        raise KeyError((app, syscall))

    def syscalls_for(self, app: str) -> list[str]:
        return sorted({r.syscall for r in self.rows if r.app == app})


def analyze_impacts(
    results: Sequence[AnalysisResult] | None = None,
) -> Table2:
    """Build Table 2 (runs the three analyses unless given results)."""
    if results is None:
        analyzer = Analyzer(AnalyzerConfig(replicas=IMPACT_REPLICAS))
        results = []
        for name in IMPACT_APPS:
            app = build(name)
            results.append(
                analyzer.analyze(
                    app.backend(), app.bench, app=name, app_version=app.version
                )
            )

    # First pass: which syscalls show a significant impact anywhere.
    impacted_syscalls: set[str] = set()
    for result in results:
        for report in result.features.values():
            if report.is_subfeature or report.is_pseudofile:
                continue
            perf, fd, mem = _significant(report)
            if perf is not None or fd is not None or mem is not None:
                impacted_syscalls.add(report.feature)

    # Second pass: one row per (app, impacted syscall traced by it).
    rows: list[ImpactRow] = []
    for result in results:
        for syscall in sorted(impacted_syscalls):
            report = result.features.get(syscall)
            if report is None:
                continue
            perf, fd, mem = _significant(report)
            if perf is None and fd is None and mem is None:
                # Shown in the union row even when within margin,
                # mirroring Redis's +2% brk in the paper's table.
                perf, fd, mem = _weak_delta(report)
            rows.append(
                ImpactRow(
                    app=result.app,
                    syscall=syscall,
                    perf_delta=perf,
                    fd_delta=fd,
                    mem_delta=mem,
                    notes=report.notes,
                )
            )
    return Table2(rows=tuple(rows))


def render_table2(table: Table2) -> str:
    header = f"{'app':<10} {'syscall':<16} {'perf':>8} {'fd':>8} {'mem':>8}"
    lines = [header, "-" * len(header)]
    for row in table.rows:
        lines.append(
            f"{row.app:<10} {row.syscall:<16} "
            f"{row.cell(row.perf_delta):>8} {row.cell(row.fd_delta):>8} "
            f"{row.cell(row.mem_delta):>8}"
        )
    return "\n".join(lines)
