"""Low-range vs high-range syscall analysis (paper Section 5.2).

The paper splits the table at number ~150: below sit long-standing
core services (basic file and network I/O), above the modern
functionality (futex, epoll, the *at variants). Its observation: "out
of the lower half of used system calls (46 system calls with number <
63), 13 system calls can always be stubbed vs. 30 for the upper half"
— higher-numbered syscalls are better stub/fake candidates because
they map to more recent, generally less critical functionality.

This study computes that split for any set of analyses.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from collections.abc import Sequence

from repro.core.result import AnalysisResult
from repro.syscalls import number_of
from repro.syscalls.categories import MODERN_THRESHOLD


@dataclasses.dataclass(frozen=True)
class RangeBucket:
    """Stub/fake statistics for one half of the syscall table."""

    label: str
    used: int                    # distinct syscalls invoked in this range
    always_avoidable: int        # avoidable in every app that traces them
    required_somewhere: int      # required by at least one app

    @property
    def always_avoidable_fraction(self) -> float:
        if self.used == 0:
            return 0.0
        return self.always_avoidable / self.used


@dataclasses.dataclass(frozen=True)
class RangeStudy:
    low: RangeBucket             # numbers below the modern threshold
    high: RangeBucket
    threshold: int

    @property
    def modern_syscalls_easier_to_avoid(self) -> bool:
        """The Section 5.2 insight, as a predicate."""
        return (
            self.high.always_avoidable_fraction
            > self.low.always_avoidable_fraction
        )


def range_study(
    results: Sequence[AnalysisResult], *, threshold: int = MODERN_THRESHOLD
) -> RangeStudy:
    """Split traced syscalls at *threshold* and compare avoidability."""
    traced_by: Counter = Counter()
    avoidable_by: Counter = Counter()
    required_somewhere: set[str] = set()
    for result in results:
        for name in result.traced_syscalls():
            traced_by[name] += 1
        for name in result.avoidable_syscalls():
            avoidable_by[name] += 1
        required_somewhere |= result.required_syscalls()

    def bucket(label: str, in_range) -> RangeBucket:
        names = [name for name in traced_by if in_range(number_of(name))]
        always = sum(
            1 for name in names if avoidable_by[name] == traced_by[name]
        )
        required = sum(1 for name in names if name in required_somewhere)
        return RangeBucket(
            label=label,
            used=len(names),
            always_avoidable=always,
            required_somewhere=required,
        )

    return RangeStudy(
        low=bucket(f"< {threshold}", lambda n: n < threshold),
        high=bucket(f">= {threshold}", lambda n: n >= threshold),
        threshold=threshold,
    )


def render_ranges(study: RangeStudy) -> str:
    lines = [
        f"Syscall-range avoidability (split at {study.threshold})",
        f"{'range':<10} {'used':>5} {'always-avoidable':>17} {'required':>9}",
    ]
    for bucket in (study.low, study.high):
        lines.append(
            f"{bucket.label:<10} {bucket.used:>5} "
            f"{bucket.always_avoidable:>10} "
            f"({bucket.always_avoidable_fraction:>4.0%}) "
            f"{bucket.required_somewhere:>9}"
        )
    verdict = (
        "modern (high-range) syscalls are the better stub/fake candidates"
        if study.modern_syscalls_easier_to_avoid
        else "no range effect observed"
    )
    lines.append(verdict)
    return "\n".join(lines)
