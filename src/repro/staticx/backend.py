"""The ``static`` pseudo-backend: footprint extraction behind the
execution-backend protocol.

Static analysis never runs anything, but the paper's Section 5.1
comparison treats it as just another measurement method — so this
module puts the modeled static views (:meth:`SimProgram.static_view`)
behind :class:`~repro.core.runner.ExecutionBackend` and registers them
in :mod:`repro.api.registry`. ``loupe compare --backend static,appsim``
then lands static-vs-dynamic results in the ordinary
:class:`~repro.report.CrossValidationReport`, where the
``static_analysis`` capability routes the diff to the footprint
classes (``static-overapproximation`` / ``soundness-violation``).

A "run" reports the whole footprint as its trace and *fails* whenever
the policy stubs or fakes any footprint syscall: static analysis has
no evidence that any call site is avoidable, so its conservative
verdict is "implement everything". An analysis of this backend
therefore concludes ``required == footprint`` — exactly the static
bars of Figure 4.

Registered names:

* ``static`` — the binary-level footprint (the fullest
  over-approximation, the conventional static baseline);
* ``static:source`` / ``static:binary`` — an explicit level.
"""

from __future__ import annotations

import dataclasses
from collections import Counter

from repro.api.registry import (
    BackendResolutionError,
    ResolvedTarget,
    register_backend,
)
from repro.appsim.program import SimProgram
from repro.core.policy import Action, InterpositionPolicy
from repro.core.runner import BackendCapabilities, RunResult
from repro.core.workload import Workload

#: The two static views of Section 5.1, weakest first.
STATIC_LEVELS = ("source", "binary")


@dataclasses.dataclass
class StaticBackend:
    """Footprint extraction over one simulated application.

    Deterministic and stateless by construction: the "run" is a pure
    function of the program model and the policy, so every scheduling
    capability holds. ``static_analysis`` is what routes this target's
    observations onto the footprint diff in cross-validation.
    """

    program: SimProgram
    level: str = "binary"

    def __post_init__(self) -> None:
        if self.level not in STATIC_LEVELS:
            raise ValueError(
                f"unknown static analysis level {self.level!r}; "
                f"choose from {', '.join(STATIC_LEVELS)}"
            )
        self.name = (
            f"static:{self.level}:{self.program.name}-{self.program.version}"
        )

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            deterministic=True,
            parallel_safe=True,
            process_safe=True,
            supports_pseudo_files=False,
            supports_subfeatures=False,
            real_execution=False,
            static_analysis=True,
        )

    def run(
        self,
        workload: Workload,
        policy: InterpositionPolicy,
        *,
        replica: int = 0,
    ) -> RunResult:
        footprint = sorted(self.program.static_view(self.level))
        blocked = [
            syscall for syscall in footprint
            if policy.action_for(syscall) is not Action.PASSTHROUGH
        ]
        traced = Counter({syscall: 1 for syscall in footprint})
        if blocked:
            return RunResult(
                success=False,
                traced=traced,
                failure_reason=(
                    f"static analysis cannot prove {blocked[0]} avoidable "
                    f"({len(blocked)} footprint syscall(s) not passed "
                    f"through)"
                ),
                exit_code=1,
            )
        return RunResult(success=True, traced=traced)


def _static_backend_factory(level: str):
    """A registry factory resolving corpus apps at one static level."""

    def factory(request) -> ResolvedTarget:
        from repro.appsim.corpus import HANDBUILT, build

        if request.app not in HANDBUILT:
            raise BackendResolutionError(
                f"static backend knows no app model {request.app!r}; "
                f"choose from {', '.join(sorted(HANDBUILT))}"
            )
        app = build(request.app)
        try:
            workload = app.workload(request.workload)
        except KeyError:
            raise BackendResolutionError(
                f"app {request.app!r} declares no workload "
                f"{request.workload!r}; choose from "
                f"{', '.join(sorted(app.workloads))}"
            ) from None
        return ResolvedTarget(
            backend=StaticBackend(app.program, level=level),
            workload=workload,
            app=app.name,
            app_version=app.version,
        )

    return factory


#: Module-import registration, like the appsim/ptrace packages: the
#: registry's bootstrap imports :mod:`repro.staticx`, which pulls in
#: this module. Identical factory objects make re-imports harmless.
STATIC_FACTORIES = {
    f"static:{level}": _static_backend_factory(level)
    for level in STATIC_LEVELS
}
for _name, _factory in STATIC_FACTORIES.items():
    register_backend(_name, _factory)
#: The unqualified spelling is the binary-level footprint.
register_backend("static", STATIC_FACTORIES["static:binary"])
