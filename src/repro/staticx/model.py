"""Modeled static analyzers over simulated applications.

For corpus applications (which have no ELF binary to scan), the static
views are part of the application model: the live call-site set plus
the calibrated dead-code/error-path overestimation recorded in
``SimProgram.static_extra`` (see DESIGN.md's substitution table). This
module wraps those views behind the same report types as the real
scanner so the Figure 4/5 studies treat both uniformly.
"""

from __future__ import annotations

import dataclasses

from repro.appsim.apps import App
from repro.appsim.program import SimProgram


@dataclasses.dataclass(frozen=True)
class StaticReport:
    """One static view of one application."""

    app: str
    level: str                  # "source" | "binary"
    syscalls: frozenset[str]

    @property
    def count(self) -> int:
        return len(self.syscalls)


def analyze_program(program: SimProgram, level: str) -> StaticReport:
    """Static view of a simulated program at *level*."""
    if level not in ("source", "binary"):
        raise ValueError(f"unknown static analysis level {level!r}")
    return StaticReport(
        app=program.name,
        level=level,
        syscalls=program.static_view(level),
    )


def analyze_app(app: App, level: str) -> StaticReport:
    return analyze_program(app.program, level)


def overestimation_factor(
    report: StaticReport, required: frozenset[str]
) -> float:
    """How many times more syscalls static analysis reports vs required.

    The paper's Section 5.1 finds factors "generally between 5x and 2x"
    for the seven-app comparison.
    """
    if not required:
        return 0.0
    return report.count / len(required)
