"""Source-level static syscall analysis for C sources (real, textual).

The paper's source-level comparator resolves libc wrapper calls in
application sources. We implement the same idea as a lexical analyzer
over C code: find identifiers that name libc syscall wrappers used in
call position, plus literal ``syscall(SYS_xxx, ...)`` invocations.
Like all source-level analysis it is language-specific and
conservative — dead code counts, macro indirection may hide calls —
which is precisely the imprecision Section 5.1 quantifies.
"""

from __future__ import annotations

import dataclasses
import re
from pathlib import Path

from repro.syscalls import TABLE_X86_64

#: Wrapper name -> syscall name, where they differ.
_WRAPPER_ALIASES: dict[str, str] = {
    "printf": "write",
    "puts": "write",
    "fwrite": "write",
    "fread": "read",
    "fopen": "openat",
    "open": "openat",
    "open64": "openat",
    "creat64": "creat",
    "stat64": "stat",
    "fstat64": "fstat",
    "lstat64": "lstat",
    "lseek64": "lseek",
    "mmap64": "mmap",
    "pread": "pread64",
    "pwrite": "pwrite64",
    "select": "select",
    "signal": "rt_sigaction",
    "sigaction": "rt_sigaction",
    "sigprocmask": "rt_sigprocmask",
    "sigsuspend": "rt_sigsuspend",
    "exit": "exit_group",
    "_exit": "exit_group",
    "malloc": "brk",
    "calloc": "brk",
    "realloc": "brk",
    "waitpid": "wait4",
    "getdtablesize": "getrlimit",
}

_CALL_RE = re.compile(r"\b([A-Za-z_][A-Za-z0-9_]*)\s*\(")
_SYS_RE = re.compile(r"\bsyscall\s*\(\s*(?:SYS_|__NR_)([a-z0-9_]+)")
_COMMENT_RE = re.compile(r"/\*.*?\*/|//[^\n]*", re.DOTALL)
_STRING_RE = re.compile(r'"(?:\\.|[^"\\])*"' + r"|'(?:\\.|[^'\\])*'")


@dataclasses.dataclass(frozen=True)
class SourceScanReport:
    """Outcome of scanning one source tree or file."""

    origin: str
    syscalls: frozenset[str]
    call_sites: int

    @property
    def count(self) -> int:
        return len(self.syscalls)


def scan_source_text(text: str, origin: str = "<memory>") -> SourceScanReport:
    """Scan one C source string for syscall-wrapper call sites."""
    stripped = _STRING_RE.sub('""', _COMMENT_RE.sub("", text))
    found: set[str] = set()
    sites = 0
    for match in _CALL_RE.finditer(stripped):
        identifier = match.group(1)
        target = _WRAPPER_ALIASES.get(identifier, identifier)
        if target in TABLE_X86_64.by_name:
            found.add(target)
            sites += 1
    for match in _SYS_RE.finditer(stripped):
        name = match.group(1)
        if name in TABLE_X86_64.by_name:
            found.add(name)
            sites += 1
    return SourceScanReport(
        origin=origin, syscalls=frozenset(found), call_sites=sites
    )


def scan_source_tree(root: str | Path, *, suffixes: tuple[str, ...] = (".c", ".h")) -> SourceScanReport:
    """Scan every matching file below *root* and merge results."""
    root = Path(root)
    merged: set[str] = set()
    sites = 0
    for path in sorted(root.rglob("*")):
        if path.suffix not in suffixes or not path.is_file():
            continue
        report = scan_source_text(
            path.read_text(errors="replace"), origin=str(path)
        )
        merged |= report.syscalls
        sites += report.call_sites
    return SourceScanReport(
        origin=str(root), syscalls=frozenset(merged), call_sites=sites
    )
