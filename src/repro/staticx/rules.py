"""Static soundness auditor: lint rules over app models, plans, and
stored results.

The growing appsim corpus and the support plans built on it are inputs
every other subsystem trusts — the engine burns probe time on an app
model, a campaign server schedules it, a planner commits an OS to its
requirements. This module vets those inputs *statically*, before any
of that spend:

* app-model rules catch models that are internally broken (footprint
  syscalls absent from the arch tables, never-executable feature
  branches and lifecycle phases, declarations the owning backend's
  capability contract cannot honor);
* plan rules catch support states that statically cannot satisfy an
  app (a required syscall the plan neither implements nor can avoid);
* database rules re-check the paper's Section 5.1 invariant over every
  stored dynamic result: the static footprint must cover everything
  dynamics observed (static ⊇ dynamic), anything else is a soundness
  violation.

Findings are typed (:class:`Finding`: rule id, severity, location,
message), rules are individually selectable/suppressible, and
:func:`exit_code` maps a finding list onto the CI-gateable contract of
``loupe lint``: 1 when any *error* survives, 0 otherwise.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Iterable, Iterator, Sequence

from repro.appsim.apps import App
from repro.appsim.program import Phase
from repro.core.runner import capabilities_of
from repro.errors import LoupeError
from repro.syscalls import exists

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


class LintRuleError(LoupeError):
    """An unknown rule id was selected or suppressed."""


@dataclasses.dataclass(frozen=True)
class Finding:
    """One lint conclusion, addressable by rule id and location."""

    rule: str
    severity: str
    location: str
    message: str

    def describe(self) -> str:
        return f"{self.severity}[{self.rule}] {self.location}: {self.message}"

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @staticmethod
    def from_dict(document: dict) -> "Finding":
        return Finding(
            rule=document["rule"],
            severity=document["severity"],
            location=document["location"],
            message=document["message"],
        )


@dataclasses.dataclass(frozen=True)
class Rule:
    """One named check: severity, what it inspects, and the checker.

    The checker yields ``(location, message)`` pairs; the engine wraps
    them into :class:`Finding` s so severity lives in exactly one
    place (here, where the catalogue is rendered from).
    """

    name: str
    severity: str
    scope: str                   # "app" | "plan" | "db"
    description: str
    check: Callable[..., Iterator[tuple[str, str]]]


# -- app-model rules ----------------------------------------------------------


def _check_unknown_syscall(app: App) -> Iterator[tuple[str, str]]:
    # Op-level syscalls are validated at construction (SyscallOp
    # rejects unknown names), so the only way an out-of-table name
    # enters a model is through the unvalidated static_extra views.
    for level in ("source", "binary"):
        for syscall in sorted(app.program.static_view(level)):
            if not exists(syscall):
                yield (
                    f"app:{app.name}",
                    f"{level}-level static footprint names syscall "
                    f"{syscall!r}, absent from the x86-64 table",
                )


def _dead_ops(app: App) -> list:
    """Ops gated on features no declared workload ever exercises."""
    exercised_sets = [
        workload.features_exercised for workload in app.workloads.values()
    ]
    return [
        op for op in app.program.ops
        if op.when is not None
        and not any(op.when & exercised for exercised in exercised_sets)
    ]


def _check_dead_branch(app: App) -> Iterator[tuple[str, str]]:
    for op in _dead_ops(app):
        gates = ",".join(sorted(op.when))
        yield (
            f"app:{app.name}/{op.syscall}",
            f"op gated on feature(s) {gates} which no declared workload "
            f"({', '.join(sorted(app.workloads))}) exercises — the branch "
            f"can never execute",
        )


def _check_unreachable_phase(app: App) -> Iterator[tuple[str, str]]:
    dead = set(id(op) for op in _dead_ops(app))
    for phase in Phase:
        ops = [op for op in app.program.ops if op.phase is phase]
        if ops and all(id(op) in dead for op in ops):
            yield (
                f"app:{app.name}/phase:{phase.name.lower()}",
                f"all {len(ops)} op(s) of the {phase.name.lower()} "
                f"lifecycle phase are dead branches — the phase is "
                f"unreachable under every declared workload",
            )


def _check_capability_mismatch(app: App) -> Iterator[tuple[str, str]]:
    contract = capabilities_of(app.backend())
    subfeatures = sorted({
        f"{op.syscall}:{op.subfeature}"
        for op in app.program.ops if op.subfeature
    })
    if subfeatures and not contract.supports_subfeatures:
        yield (
            f"app:{app.name}",
            f"model declares {len(subfeatures)} sub-feature(s) "
            f"(e.g. {subfeatures[0]}) but the owning backend's "
            f"capability contract does not support sub-features",
        )
    pseudo_files = sorted({
        op.path for op in app.program.ops if op.path
    })
    if pseudo_files and not contract.supports_pseudo_files:
        yield (
            f"app:{app.name}",
            f"model declares {len(pseudo_files)} pseudo-file(s) "
            f"(e.g. {pseudo_files[0]}) but the owning backend's "
            f"capability contract does not support pseudo-files",
        )


# -- plan rules ---------------------------------------------------------------


def _check_unsatisfiable_plan(state, requirements) -> Iterator[tuple[str, str]]:
    missing = sorted(requirements.missing(state.implemented))
    if missing:
        shown = ", ".join(missing[:5])
        if len(missing) > 5:
            shown += f", … ({len(missing) - 5} more)"
        yield (
            f"plan:{state.os_name}/app:{requirements.app}",
            f"{len(missing)} required syscall(s) neither implemented nor "
            f"avoidable (stub/fake cannot satisfy a required call): {shown}",
        )


# -- database (soundness audit) rules -----------------------------------------


def _check_static_soundness(record, app: App, level: str) -> Iterator[tuple[str, str]]:
    footprint = app.program.static_view(level)
    missing = sorted(record.traced_syscalls() - footprint)
    if missing:
        shown = ", ".join(missing[:5])
        if len(missing) > 5:
            shown += f", … ({len(missing) - 5} more)"
        yield (
            f"db:{record.app}/{record.workload}/{record.backend}",
            f"dynamically observed syscall(s) absent from the "
            f"{level}-level static footprint (soundness violation): "
            f"{shown}",
        )


APP_RULES = (
    Rule(
        name="unknown-syscall",
        severity=SEVERITY_ERROR,
        scope="app",
        description="static footprint names a syscall absent from the "
                    "x86-64 table",
        check=_check_unknown_syscall,
    ),
    Rule(
        name="dead-branch",
        severity=SEVERITY_WARNING,
        scope="app",
        description="feature-gated op no declared workload can execute",
        check=_check_dead_branch,
    ),
    Rule(
        name="unreachable-phase",
        severity=SEVERITY_WARNING,
        scope="app",
        description="lifecycle phase whose every op is a dead branch",
        check=_check_unreachable_phase,
    ),
    Rule(
        name="capability-mismatch",
        severity=SEVERITY_ERROR,
        scope="app",
        description="sub-feature/pseudo-file declarations the owning "
                    "backend's capability contract cannot honor",
        check=_check_capability_mismatch,
    ),
)

PLAN_RULES = (
    Rule(
        name="unsatisfiable-plan",
        severity=SEVERITY_ERROR,
        scope="plan",
        description="support plan cannot satisfy an app: a required "
                    "syscall is neither implemented nor avoidable",
        check=_check_unsatisfiable_plan,
    ),
)

DB_RULES = (
    Rule(
        name="static-soundness",
        severity=SEVERITY_ERROR,
        scope="db",
        description="stored dynamic result observed a syscall the "
                    "static footprint misses",
        check=_check_static_soundness,
    ),
    Rule(
        name="unknown-app",
        severity=SEVERITY_WARNING,
        scope="db",
        description="stored result names an app with no corpus model "
                    "to audit against",
        check=None,  # structural: emitted by audit_database itself
    ),
    Rule(
        name="version-skew",
        severity=SEVERITY_WARNING,
        scope="db",
        description="stored result's app version differs from the "
                    "corpus model's — footprint not comparable",
        check=None,  # structural: emitted by audit_database itself
    ),
)

ALL_RULES = APP_RULES + PLAN_RULES + DB_RULES


def rule_catalogue() -> tuple[Rule, ...]:
    """Every known rule, app rules first — the ``--select`` namespace."""
    return ALL_RULES


def _rule_names() -> frozenset[str]:
    return frozenset(rule.name for rule in ALL_RULES)


def _selection(
    select: "Iterable[str] | None", ignore: "Iterable[str] | None"
) -> Callable[[Rule], bool]:
    """Per-rule suppression: keep a rule iff selected and not ignored."""
    known = _rule_names()
    selected = frozenset(select) if select is not None else None
    ignored = frozenset(ignore) if ignore is not None else frozenset()
    for name in (selected or frozenset()) | ignored:
        if name not in known:
            raise LintRuleError(
                f"unknown lint rule {name!r}; known rules: "
                f"{', '.join(sorted(known))}"
            )

    def keep(rule: Rule) -> bool:
        if selected is not None and rule.name not in selected:
            return False
        return rule.name not in ignored

    return keep


def _wrap(rule: Rule, pairs: Iterable[tuple[str, str]]) -> Iterator[Finding]:
    for location, message in pairs:
        yield Finding(
            rule=rule.name, severity=rule.severity,
            location=location, message=message,
        )


def lint_app(
    app: App,
    *,
    select: "Iterable[str] | None" = None,
    ignore: "Iterable[str] | None" = None,
) -> list[Finding]:
    """Run every (selected) app-model rule over one application."""
    keep = _selection(select, ignore)
    findings: list[Finding] = []
    for rule in APP_RULES:
        if keep(rule):
            findings.extend(_wrap(rule, rule.check(app)))
    return findings


def lint_corpus(
    apps: "Sequence[App] | None" = None,
    *,
    select: "Iterable[str] | None" = None,
    ignore: "Iterable[str] | None" = None,
) -> list[Finding]:
    """Lint the whole (or a given) application corpus."""
    if apps is None:
        from repro.appsim.corpus import corpus

        apps = corpus()
    findings: list[Finding] = []
    for app in apps:
        findings.extend(lint_app(app, select=select, ignore=ignore))
    return findings


def lint_plan(
    state,
    apps: "Sequence[App] | None" = None,
    *,
    workload: str = "bench",
    select: "Iterable[str] | None" = None,
    ignore: "Iterable[str] | None" = None,
) -> list[Finding]:
    """Check one support plan (:class:`~repro.plans.state.SupportState`)
    against what the corpus apps require.

    Requirements come from the memoized dynamic analyses
    (:func:`repro.plans.requirements.requirements_for`), so repeated
    lint passes are cheap.
    """
    from repro.plans.requirements import requirements_for

    keep = _selection(select, ignore)
    if apps is None:
        from repro.appsim.corpus import cloud_apps

        apps = cloud_apps()
    findings: list[Finding] = []
    for rule in PLAN_RULES:
        if not keep(rule):
            continue
        for app in apps:
            requirements = requirements_for(app, workload)
            findings.extend(_wrap(rule, rule.check(state, requirements)))
    return findings


def audit_database(
    database,
    *,
    level: str = "binary",
    select: "Iterable[str] | None" = None,
    ignore: "Iterable[str] | None" = None,
) -> list[Finding]:
    """Sweep stored dynamic results against static footprints.

    Every record whose app has a current corpus model is checked for
    the soundness invariant (static ⊇ dynamically traced). Records of
    the ``static`` pseudo-backend are skipped — their traces *are*
    footprints, not dynamic observations — and records the corpus
    cannot vouch for (unknown app, version skew) surface as warnings
    rather than silently shrinking the sweep.
    """
    from repro.appsim.corpus import HANDBUILT, build

    if level not in ("source", "binary"):
        raise ValueError(f"unknown static analysis level {level!r}")
    keep = _selection(select, ignore)
    by_name = {rule.name: rule for rule in DB_RULES}
    soundness = by_name["static-soundness"]
    unknown = by_name["unknown-app"]
    skew = by_name["version-skew"]
    findings: list[Finding] = []
    models: dict[str, App] = {}
    for record in database:
        if record.backend.startswith("static:"):
            continue
        location = f"db:{record.app}/{record.workload}/{record.backend}"
        if record.app not in HANDBUILT:
            if keep(unknown):
                findings.extend(_wrap(unknown, [(
                    location,
                    f"no corpus model named {record.app!r} to audit "
                    f"this record against",
                )]))
            continue
        app = models.get(record.app)
        if app is None:
            app = models[record.app] = build(record.app)
        if record.app_version and record.app_version != app.version:
            if keep(skew):
                findings.extend(_wrap(skew, [(
                    location,
                    f"record is for version {record.app_version}, corpus "
                    f"model is {app.version} — footprint not comparable",
                )]))
            continue
        if keep(soundness):
            findings.extend(_wrap(
                soundness, soundness.check(record, app, level)
            ))
    return findings


def max_severity(findings: Iterable[Finding]) -> "str | None":
    """The worst severity present, or None for a clean pass."""
    worst = None
    for finding in findings:
        if finding.severity == SEVERITY_ERROR:
            return SEVERITY_ERROR
        worst = SEVERITY_WARNING
    return worst


def exit_code(findings: Iterable[Finding]) -> int:
    """The CI contract: 1 when any error survives selection, else 0.

    Warnings never gate — they flag style/coverage debt, not broken
    inputs — so a warnings-only pass still exits 0.
    """
    return 1 if max_severity(findings) == SEVERITY_ERROR else 0
