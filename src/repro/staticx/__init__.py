"""Static analysis substrates: the comparison baselines of Section 5.1."""

from repro.staticx.binary import BinaryScanReport, scan_binary, scan_bytes, scan_elf
from repro.staticx.model import (
    StaticReport,
    analyze_app,
    analyze_program,
    overestimation_factor,
)
from repro.staticx.source import (
    SourceScanReport,
    scan_source_text,
    scan_source_tree,
)

__all__ = [
    "BinaryScanReport",
    "SourceScanReport",
    "StaticReport",
    "analyze_app",
    "analyze_program",
    "overestimation_factor",
    "scan_binary",
    "scan_bytes",
    "scan_elf",
    "scan_source_text",
    "scan_source_tree",
]
