"""Static analysis substrates: baselines, backend, and linter.

Three layers live here:

* the Section 5.1 comparison baselines — a real ELF scanner
  (:mod:`repro.staticx.binary`), a source-tree scanner
  (:mod:`repro.staticx.source`), and the modeled views over corpus
  apps (:mod:`repro.staticx.model`);
* the ``static`` pseudo-backend (:mod:`repro.staticx.backend`), which
  registers footprint extraction in the execution-backend registry so
  cross-validation can diff static against dynamic;
* the corpus linter (:mod:`repro.staticx.rules`) behind ``loupe
  lint``: typed findings over app models, support plans, and stored
  results, including the corpus-wide soundness audit.
"""

from repro.staticx.backend import STATIC_LEVELS, StaticBackend
from repro.staticx.binary import BinaryScanReport, scan_binary, scan_bytes, scan_elf
from repro.staticx.model import (
    StaticReport,
    analyze_app,
    analyze_program,
    overestimation_factor,
)
from repro.staticx.rules import (
    Finding,
    LintRuleError,
    audit_database,
    exit_code,
    lint_app,
    lint_corpus,
    lint_plan,
    max_severity,
    rule_catalogue,
)
from repro.staticx.source import (
    SourceScanReport,
    scan_source_text,
    scan_source_tree,
)

__all__ = [
    "BinaryScanReport",
    "Finding",
    "LintRuleError",
    "STATIC_LEVELS",
    "SourceScanReport",
    "StaticBackend",
    "StaticReport",
    "analyze_app",
    "analyze_program",
    "audit_database",
    "exit_code",
    "lint_app",
    "lint_corpus",
    "lint_plan",
    "max_severity",
    "overestimation_factor",
    "rule_catalogue",
    "scan_binary",
    "scan_bytes",
    "scan_elf",
    "scan_source_text",
    "scan_source_tree",
]
