"""Binary-level static syscall analysis (real, for native ELF files).

The paper compares Loupe against the Unikraft static binary analyzer,
which scans executables for syscall instructions and recovers the
syscall number from the preceding register assignment. We implement
the same linear-sweep heuristic over ELF64 executable sections:

* find every ``syscall`` instruction (``0f 05``);
* walk backwards a bounded window looking for the closest assignment
  to ``eax``/``rax``: ``mov eax, imm32`` (``b8 xx xx xx xx``),
  ``xor eax, eax`` (``31 c0`` / ``33 c0``, i.e. syscall 0 = read),
  or ``mov rax, imm32`` (``48 c7 c0 xx xx xx xx``);
* map recovered numbers through the x86-64 table.

Exactly like the real tool, this is conservative and imprecise in both
directions (dead code counts; indirect numbers are missed) — which is
the paper's point about static analysis. The scanner also powers the
Figure 4 "static binary" bars for any native binary a user points it
at.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from pathlib import Path

from repro.errors import StaticAnalysisError
from repro.ptracer.elf import ElfFile, parse
from repro.syscalls import TABLE_X86_64

SYSCALL_OPCODE = b"\x0f\x05"

#: How far back (bytes) to look for the eax assignment.
_BACKWARD_WINDOW = 64


@dataclasses.dataclass(frozen=True)
class BinaryScanReport:
    """Outcome of scanning one ELF binary."""

    path: str
    syscalls: frozenset[str]
    numbers: frozenset[int]
    sites: int                      # syscall instructions found
    unresolved_sites: int           # no register assignment recovered

    @property
    def resolution_rate(self) -> float:
        if self.sites == 0:
            return 0.0
        return 1.0 - (self.unresolved_sites / self.sites)


def _recover_number(code: bytes, site: int) -> int | None:
    """Walk backwards from *site* looking for the eax assignment."""
    window_start = max(0, site - _BACKWARD_WINDOW)
    best: tuple[int, int] | None = None  # (position, number)
    position = window_start
    while position < site:
        byte = code[position]
        if byte == 0xB8 and position + 5 <= site:
            number = int.from_bytes(code[position + 1:position + 5], "little")
            best = (position, number)
            position += 5
            continue
        if byte in (0x31, 0x33) and position + 2 <= site and code[position + 1] == 0xC0:
            best = (position, 0)
            position += 2
            continue
        if (
            byte == 0x48
            and position + 7 <= site
            and code[position + 1] == 0xC7
            and code[position + 2] == 0xC0
        ):
            number = int.from_bytes(code[position + 3:position + 7], "little")
            best = (position, number)
            position += 7
            continue
        position += 1
    if best is None:
        return None
    return best[1]


def scan_bytes(code: bytes) -> tuple[Counter, int, int]:
    """Scan raw machine code; returns (number counts, sites, unresolved)."""
    counts: Counter = Counter()
    sites = 0
    unresolved = 0
    offset = code.find(SYSCALL_OPCODE)
    while offset != -1:
        sites += 1
        number = _recover_number(code, offset)
        if number is None or number not in TABLE_X86_64.by_number:
            unresolved += 1
        else:
            counts[number] += 1
        offset = code.find(SYSCALL_OPCODE, offset + 2)
    return counts, sites, unresolved


def scan_elf(elf: ElfFile) -> BinaryScanReport:
    """Scan every executable section of a parsed ELF."""
    if not elf.is_x86_64:
        raise StaticAnalysisError(
            f"{elf.path}: static scanning supports x86-64 only"
        )
    counts: Counter = Counter()
    sites = 0
    unresolved = 0
    for section in elf.executable_sections():
        section_counts, section_sites, section_unresolved = scan_bytes(
            section.data
        )
        counts.update(section_counts)
        sites += section_sites
        unresolved += section_unresolved
    names = frozenset(
        TABLE_X86_64.by_number[number] for number in counts
    )
    return BinaryScanReport(
        path=elf.path,
        syscalls=names,
        numbers=frozenset(counts),
        sites=sites,
        unresolved_sites=unresolved,
    )


def scan_binary(path: str | Path) -> BinaryScanReport:
    """Parse and scan the ELF binary at *path*."""
    return scan_elf(parse(path))
