"""Loupe as a service: the campaign server.

The paper's workflow — submit a campaign, watch it run, collect the
support matrix — generalizes past one terminal: this package wraps
:class:`~repro.api.session.LoupeSession` in a small stdlib-only HTTP
service with a job queue, a bounded worker pool, durable per-job
lifecycle directories, and live event streaming, so campaigns can be
submitted from anywhere and survive their submitter.

The pieces, bottom up:

* :mod:`~repro.server.jobstore` — job specs, the lifecycle state
  machine (``queued → running → done/failed/cancelled``), filesystem
  storage with atomic metadata writes, and crash recovery;
* :mod:`~repro.server.queue` — the FIFO queue and worker pool that
  drain jobs through sessions, wiring cooperative cancellation into
  the analyzer's ``cancel_check`` hook;
* :mod:`~repro.server.handlers` — the HTTP surface, including the
  long-polling ``/jobs/<id>/events`` replay;
* :mod:`~repro.server.app` — :class:`CampaignServer`, composing the
  above behind one lifecycle;
* :mod:`~repro.server.client` — the urllib client the CLI
  subcommands (``loupe serve/submit/jobs/tail/cancel``) are built on.

No new dependencies anywhere: ``http.server`` on the way in,
``urllib.request`` on the way out, JSON files in between.
"""

from repro.server.app import CampaignServer
from repro.server.client import ServiceClient, ServiceError, discover_url
from repro.server.jobstore import (
    CANCELLED,
    DONE,
    FAILED,
    LEGAL_TRANSITIONS,
    QUEUED,
    RUNNING,
    STATES,
    TERMINAL_STATES,
    JobError,
    JobMeta,
    JobSpec,
    JobSpecError,
    JobStateError,
    JobStore,
    UnknownJobError,
    encode_report,
)
from repro.server.queue import JobRunner

__all__ = [
    "CampaignServer",
    "ServiceClient",
    "ServiceError",
    "discover_url",
    "JobError",
    "JobMeta",
    "JobRunner",
    "JobSpec",
    "JobSpecError",
    "JobStateError",
    "JobStore",
    "UnknownJobError",
    "encode_report",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "STATES",
    "TERMINAL_STATES",
    "LEGAL_TRANSITIONS",
]
