"""Loupe as a service: the campaign server.

The paper's workflow — submit a campaign, watch it run, collect the
support matrix — generalizes past one terminal: this package wraps
:class:`~repro.api.session.LoupeSession` in a small stdlib-only HTTP
service with a job queue, a bounded worker pool, durable per-job
lifecycle directories, and live event streaming, so campaigns can be
submitted from anywhere and survive their submitter.

The pieces, bottom up:

* :mod:`~repro.server.jobstore` — job specs, the lifecycle state
  machine (``queued → running → done/failed/cancelled/quarantined``),
  filesystem storage with atomic metadata writes, leases and attempt
  history, and crash recovery that *resumes* orphaned work;
* :mod:`~repro.server.queue` — the FIFO queue, worker pool, and
  lease reaper that drain jobs through sessions, wiring cooperative
  cancellation and heartbeats into the analyzer's ``cancel_check``
  and ``progress_hook``, with per-job checkpoint stores, admission
  control, and drain mode;
* :mod:`~repro.server.handlers` — the HTTP surface, including the
  long-polling ``/jobs/<id>/events`` replay;
* :mod:`~repro.server.app` — :class:`CampaignServer`, composing the
  above behind one lifecycle;
* :mod:`~repro.server.client` — the urllib client the CLI
  subcommands (``loupe serve/submit/jobs/tail/cancel``) are built on.

No new dependencies anywhere: ``http.server`` on the way in,
``urllib.request`` on the way out, JSON files in between.
"""

from repro.server.app import CampaignServer
from repro.server.client import ServiceClient, ServiceError, discover_url
from repro.server.jobstore import (
    CANCELLED,
    DONE,
    FAILED,
    LEGAL_TRANSITIONS,
    QUARANTINED,
    QUEUED,
    RUNNING,
    STATES,
    TERMINAL_STATES,
    JobError,
    JobMeta,
    JobSpec,
    JobSpecError,
    JobStateError,
    JobStore,
    TornMetaError,
    UnknownJobError,
    encode_report,
)
from repro.server.queue import (
    JobRunner,
    QueueFullError,
    ServerDrainingError,
)

__all__ = [
    "CampaignServer",
    "ServiceClient",
    "ServiceError",
    "discover_url",
    "JobError",
    "JobMeta",
    "JobRunner",
    "JobSpec",
    "JobSpecError",
    "JobStateError",
    "JobStore",
    "QueueFullError",
    "ServerDrainingError",
    "TornMetaError",
    "UnknownJobError",
    "encode_report",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "QUARANTINED",
    "STATES",
    "TERMINAL_STATES",
    "LEGAL_TRANSITIONS",
]
