"""Job specs, the lifecycle state machine, and on-disk job storage.

The campaign server's unit of work is a **job**: one campaign spec
submitted over HTTP, owned end-to-end by a lifecycle directory

.. code-block:: text

    <data_dir>/jobs/<id>/
        spec.json       what was asked for (immutable after submit)
        meta.json       where the job is in its lifecycle (atomic writes)
        events.jsonl    the campaign's event stream, envelope-wrapped
        report.json     the result, written once on success
        runcache.sqlite the job's checkpoint store (probe results)

mirroring the per-app lifecycle-dir shape of the streamlit-manager
exemplar the ROADMAP cites (single service, one directory per managed
thing, ``meta.json`` + logs inside it). Everything is plain files, so
a human (or a crashed server's successor) can always reconstruct the
service's state with ``ls`` and ``cat``.

The state machine::

    queued ──> running ──> done
       │          ├──────> failed
       │          ├──────> quarantined   (attempt budget exhausted)
       │          ├──────> queued        (lease reclaim / crash resume)
       └──────────┴──────> cancelled

:meth:`JobStore.transition` enforces exactly those edges under one
lock, which is what makes the submit/cancel race benign: a concurrent
``queued→running`` (worker) and ``queued→cancelled`` (cancel request)
resolve to whichever transition commits first, and the loser gets a
:class:`JobStateError` instead of a corrupted meta file.

**Leases.** A ``running`` job is not merely a status — it is a claim:
``meta.json`` records the owning worker (``lease_owner``), the
deadline by which that worker must prove liveness (``lease_deadline``)
and its last proof (``heartbeat_at``, refreshed at analyzer wave
boundaries through ``AnalyzerConfig.progress_hook``). Transitions out
of ``running`` verify the caller still holds the lease, so a worker
whose job was reclaimed by the reaper cannot overwrite the successor's
state — the stale claim dies with a :class:`JobStateError`, not a
corrupted lifecycle.

**Attempts.** ``attempt`` counts executions of the job (1-based);
every reclaim or crash recovery bumps it and appends a record to
``history`` (who held the lease, why it was lost, when), the full
audit trail ``GET /jobs/<id>`` exposes. A job whose attempts are
exhausted lands ``quarantined`` — terminal, never blocking the queue,
history intact for triage.

Crash recovery (:meth:`JobStore.recover`) runs at server start: jobs
found ``running`` were orphaned by a dead server and are **resumed**
— re-enqueued as ``queued`` with ``attempt+1`` (their per-job
checkpoint store answers every probe the previous attempt completed)
— unless their attempt budget is spent, in which case they are
quarantined. Jobs found ``queued`` are returned for re-enqueueing in
submission order, so a restart never silently drops accepted work.
Torn metadata (a server killed mid-write of a brand-new job, or a
filesystem that tore what :func:`os.replace` promised atomic) is
rebuilt from ``spec.json`` as a fresh ``queued`` job rather than
wedging the store.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
from pathlib import Path

from repro.api.session import AnalysisRequest
from repro.core.analyzer import AnalyzerConfig
from repro.errors import LoupeError

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
QUARANTINED = "quarantined"

STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED, QUARANTINED)
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED, QUARANTINED})

#: The legal edges of the lifecycle state machine — everything else is
#: a bug (or a race that lost, which callers handle explicitly).
#: ``running → queued`` is the durability edge: a lease reclaim or a
#: crash recovery hands the job back to the queue for another attempt.
LEGAL_TRANSITIONS = frozenset({
    (QUEUED, RUNNING),
    (QUEUED, CANCELLED),
    (RUNNING, DONE),
    (RUNNING, FAILED),
    (RUNNING, CANCELLED),
    (RUNNING, QUEUED),
    (RUNNING, QUARANTINED),
})


class JobError(LoupeError):
    """Base class of campaign-server job errors."""


class JobSpecError(JobError):
    """A submitted campaign spec is malformed."""


class UnknownJobError(JobError):
    """No job with the given id exists in this store."""

    def __init__(self, job_id: str) -> None:
        super().__init__(f"unknown job {job_id!r}")
        self.job_id = job_id


class TornMetaError(JobError):
    """A job's ``meta.json`` exists but does not parse — the footprint
    of a write torn by a crash. :meth:`JobStore.recover` rebuilds such
    jobs from their immutable ``spec.json``; until it runs, readers
    see this error instead of a stack trace from ``json``."""

    def __init__(self, job_id: str) -> None:
        super().__init__(
            f"job {job_id}: meta.json is torn or unreadable "
            f"(recoverable: restart the server, or call recover())"
        )
        self.job_id = job_id


class JobStateError(JobError):
    """An illegal lifecycle transition was requested."""

    def __init__(
        self, job_id: str, current: str, wanted: str, *, detail: str = ""
    ) -> None:
        message = f"job {job_id}: illegal transition {current!r} -> {wanted!r}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)
        self.job_id = job_id
        self.current = current
        self.wanted = wanted
        self.detail = detail


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """One campaign, declaratively — the JSON body of ``POST /jobs``.

    Field names mirror the ``loupe analyze`` flags one-for-one, so a
    CLI invocation and a job submission describe campaigns in the same
    vocabulary. ``backend`` accepts the same comma list as the CLI
    (``"appsim,ptrace"`` fans out and lands a cross-validation report
    as the job's ``report.json``).
    """

    app: str = "redis"
    workload: str = "bench"
    backend: str = "appsim"
    replicas: int = 3
    subfeatures: bool = False
    pseudofiles: bool = False
    jobs: int = 1
    executor: str = "auto"
    #: Fleet addresses for ``executor="remote"`` — a ``host:port``
    #: list, or the same comma string the CLI's ``--workers`` takes.
    workers: "tuple | list | str" = ()
    run_cache: "str | None" = None
    run_cache_max_entries: "int | None" = None
    run_cache_ttl: "float | None" = None
    probe_timeout: "float | None" = None
    retries: int = 0
    retry_backoff: float = 0.05
    on_fault: str = "fail"
    fault_seed: "int | None" = None

    @staticmethod
    def from_dict(data: object) -> "JobSpec":
        """Parse and validate a submitted spec document.

        Unknown fields are rejected rather than ignored: a client
        typo'ing ``replcias`` must hear about it at submit time, not
        discover a silently-default campaign three hours later.
        """
        if not isinstance(data, dict):
            raise JobSpecError(
                f"campaign spec must be a JSON object, got "
                f"{type(data).__name__}"
            )
        known = {field.name for field in dataclasses.fields(JobSpec)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise JobSpecError(
                f"unknown spec field(s): {', '.join(unknown)}; "
                f"known fields: {', '.join(sorted(known))}"
            )
        try:
            spec = JobSpec(**data)
        except TypeError as error:
            raise JobSpecError(f"malformed campaign spec: {error}")
        spec.validate()
        return spec

    def validate(self) -> None:
        """Reject specs the analyzer would refuse (or worse, accept
        and misinterpret) — the same checks the CLI's argparse layer
        performs, reproduced here for the HTTP front door."""
        if not isinstance(self.app, str) or not self.app:
            raise JobSpecError("app must be a non-empty string")
        if self.workload not in ("health", "bench", "suite"):
            raise JobSpecError(
                f"unknown workload {self.workload!r}; choose from: "
                f"health, bench, suite"
            )
        try:
            self.analyzer_config()
        except (ValueError, TypeError) as error:
            raise JobSpecError(f"invalid campaign spec: {error}")

    def __post_init__(self):
        object.__setattr__(self, "workers", self.worker_list())

    def to_dict(self) -> dict:
        document = dataclasses.asdict(self)
        document["workers"] = list(self.worker_list())
        return document

    def worker_list(self) -> tuple:
        """The ``workers`` field normalized to a tuple of addresses
        (accepts the CLI's comma string or a JSON list)."""
        if isinstance(self.workers, str):
            return tuple(
                part.strip() for part in self.workers.split(",")
                if part.strip()
            )
        if not all(isinstance(part, str) for part in self.workers):
            raise JobSpecError(
                "workers must be a comma string or a list of "
                "'host:port' strings"
            )
        return tuple(self.workers)

    def analyzer_config(self) -> AnalyzerConfig:
        """The spec as the analyzer configuration it describes."""
        return AnalyzerConfig(
            replicas=self.replicas,
            subfeature_level=self.subfeatures,
            pseudo_files=self.pseudofiles,
            parallel=self.jobs,
            executor=self.executor,
            workers=self.worker_list(),
            run_cache=self.run_cache,
            run_cache_max_entries=self.run_cache_max_entries,
            run_cache_ttl_s=self.run_cache_ttl,
            probe_timeout_s=self.probe_timeout,
            retries=self.retries,
            retry_backoff_s=self.retry_backoff,
            on_fault=self.on_fault,
            fault_seed=self.fault_seed,
        )

    def request(self) -> AnalysisRequest:
        """The spec as the session request it describes."""
        return AnalysisRequest(
            app=self.app,
            workload=self.workload,
            backend=self.backend,
        )


@dataclasses.dataclass(frozen=True)
class JobMeta:
    """One job's lifecycle facts — the contents of ``meta.json``.

    ``reason`` explains terminal states that need explaining
    (``failed``: the error; ``cancelled``: who asked; ``quarantined``:
    which budget ran out). ``engine_stats`` preserves the probe-engine
    accounting of finished *and* cancelled jobs — a cancelled campaign
    still reports what it paid for.

    The durability fields: ``attempt`` is 1-based and bumps on every
    reclaim/resume; ``lease_owner``/``lease_deadline``/``heartbeat_at``
    describe the live claim while ``running`` (cleared on requeue,
    deadline cleared but owner kept on terminal states — forensics);
    ``history`` is the append-only audit trail of lost attempts, one
    record per reclaim/recovery/rebuild, each carrying at least
    ``attempt``, ``outcome`` and ``at``.
    """

    id: str
    status: str
    app: str
    workload: str
    backend: str
    created_at: float
    started_at: "float | None" = None
    finished_at: "float | None" = None
    reason: str = ""
    engine_stats: "dict | None" = None
    attempt: int = 1
    lease_owner: str = ""
    lease_deadline: "float | None" = None
    heartbeat_at: "float | None" = None
    history: tuple = ()

    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        data["history"] = list(self.history)
        return data

    @staticmethod
    def from_dict(data: dict) -> "JobMeta":
        known = {field.name for field in dataclasses.fields(JobMeta)}
        fields = {
            key: value for key, value in data.items() if key in known
        }
        fields["history"] = tuple(fields.get("history") or ())
        return JobMeta(**fields)


def encode_report(outcome: object) -> str:
    """The canonical ``report.json`` serialization.

    One definition shared by the job runner, the tests, and the CI
    smoke job, so "the server's report is byte-identical to a direct
    :meth:`LoupeSession.analyze` run" is checkable with ``cmp``:
    serialize the direct outcome with this same function and compare
    bytes. Works for both job outcome shapes —
    :class:`~repro.core.result.AnalysisResult` and
    :class:`~repro.report.CrossValidationReport` (multi-backend
    specs) — via their ``to_dict``.
    """
    return json.dumps(outcome.to_dict(), indent=1, sort_keys=True) + "\n"


class JobStore:
    """Filesystem-backed job storage with a lock-guarded state machine.

    All mutation goes through :meth:`new_job`, :meth:`transition`,
    :meth:`heartbeat`, and :meth:`append_event`; reads (:meth:`meta`,
    :meth:`spec`, :meth:`read_events`) go straight to disk, so any
    process — the server, a test, an operator's shell — sees the same
    truth. ``meta.json`` writes are atomic (temp file +
    ``os.replace``): a server killed mid-transition leaves the
    previous consistent state, never a torn file.
    """

    def __init__(self, data_dir: "str | Path") -> None:
        self.data_dir = Path(data_dir)
        self.jobs_dir = self.data_dir / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._conditions: dict[str, threading.Condition] = {}
        self._next_seq = 1 + max(
            (
                int(path.name.split("-")[-1])
                for path in self.jobs_dir.iterdir()
                if path.is_dir() and path.name.split("-")[-1].isdigit()
            ),
            default=0,
        )

    # -- paths --------------------------------------------------------------

    def job_dir(self, job_id: str) -> Path:
        return self.jobs_dir / job_id

    def spec_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "spec.json"

    def meta_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "meta.json"

    def events_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "events.jsonl"

    def report_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "report.json"

    def checkpoint_path(self, job_id: str) -> Path:
        """The job's private run-cache store — the checkpoint a
        resumed attempt warms from. SQLite (crash-safe WAL) because a
        checkpoint that tears under the very crash it exists for
        would be decoration."""
        return self.job_dir(job_id) / "runcache.sqlite"

    # -- creation and reads --------------------------------------------------

    def new_job(self, spec: JobSpec) -> JobMeta:
        """Persist one accepted spec as a fresh ``queued`` job."""
        with self._lock:
            job_id = f"job-{self._next_seq:06d}"
            self._next_seq += 1
            directory = self.job_dir(job_id)
            directory.mkdir(parents=True)
            meta = JobMeta(
                id=job_id,
                status=QUEUED,
                app=spec.app,
                workload=spec.workload,
                backend=spec.backend,
                created_at=time.time(),
            )
            self.spec_path(job_id).write_text(
                json.dumps(spec.to_dict(), indent=1, sort_keys=True) + "\n"
            )
            self._write_meta(meta)
        return meta

    def exists(self, job_id: str) -> bool:
        return self.meta_path(job_id).is_file()

    def meta(self, job_id: str) -> JobMeta:
        try:
            data = json.loads(self.meta_path(job_id).read_text())
        except FileNotFoundError:
            raise UnknownJobError(job_id)
        except (json.JSONDecodeError, UnicodeDecodeError):
            raise TornMetaError(job_id)
        return JobMeta.from_dict(data)

    def spec(self, job_id: str) -> JobSpec:
        try:
            data = json.loads(self.spec_path(job_id).read_text())
        except FileNotFoundError:
            raise UnknownJobError(job_id)
        return JobSpec.from_dict(data)

    def list_jobs(self) -> list[JobMeta]:
        """Every readable job's meta, in submission (id) order.

        Jobs with torn metadata are skipped rather than turning every
        listing into a stack trace — :meth:`recover` rebuilds them at
        the next server start, and :meth:`meta` still reports them
        individually as :class:`TornMetaError`.
        """
        metas = []
        for path in sorted(self.jobs_dir.iterdir()):
            if not (path / "meta.json").is_file():
                continue
            try:
                metas.append(self.meta(path.name))
            except (TornMetaError, UnknownJobError):
                continue
        return metas

    def counts(self) -> dict[str, int]:
        """Job totals by status (every state present, zeros included)."""
        totals = {state: 0 for state in STATES}
        for meta in self.list_jobs():
            totals[meta.status] = totals.get(meta.status, 0) + 1
        totals["total"] = sum(
            totals[state] for state in STATES
        )
        return totals

    # -- the state machine ---------------------------------------------------

    def transition(
        self,
        job_id: str,
        status: str,
        *,
        reason: str = "",
        engine_stats: "dict | None" = None,
        owner: "str | None" = None,
        lease_s: "float | None" = None,
        bump_attempt: bool = False,
        history_event: "dict | None" = None,
    ) -> JobMeta:
        """Atomically move one job along a legal lifecycle edge.

        Raises :class:`JobStateError` on an illegal edge — which is
        how lifecycle races resolve: of a concurrent ``queued →
        running`` and ``queued → cancelled``, exactly one commits and
        the other gets the error to react to.

        *owner* is the lease protocol: a transition **into**
        ``running`` records the caller as the lease holder (with a
        deadline ``lease_s`` seconds out); a transition **out of**
        ``running`` that names an *owner* commits only if that owner
        still holds the lease — a worker whose job was reclaimed
        meanwhile gets a :class:`JobStateError` instead of clobbering
        the successor attempt's state. *bump_attempt* increments the
        attempt counter (reclaim/recovery requeues); *history_event*
        appends one audit record to the job's history.
        """
        if status not in STATES:
            raise ValueError(f"unknown job status {status!r}")
        with self._lock:
            meta = self.meta(job_id)
            if (meta.status, status) not in LEGAL_TRANSITIONS:
                raise JobStateError(job_id, meta.status, status)
            if owner is not None and status != RUNNING:
                # An owner-carrying transition is a worker reporting
                # its job's outcome; it commits only against the
                # attempt that worker actually owns. This closes both
                # stale-claim holes: the job re-leased to a successor
                # (owner mismatch) and the job already reclaimed back
                # to ``queued`` (no longer running at all — without
                # this, a stale worker could ride the legal
                # ``queued → cancelled`` edge over the rerun).
                if meta.status != RUNNING:
                    raise JobStateError(
                        job_id, meta.status, status,
                        detail=f"{owner!r} no longer holds this job",
                    )
                if meta.lease_owner and owner != meta.lease_owner:
                    raise JobStateError(
                        job_id, meta.status, status,
                        detail=f"lease held by {meta.lease_owner!r}, "
                               f"not {owner!r}",
                    )
            now = time.time()
            updates: dict = {"status": status}
            if reason:
                updates["reason"] = reason
            if engine_stats is not None:
                updates["engine_stats"] = engine_stats
            if bump_attempt:
                updates["attempt"] = meta.attempt + 1
            if history_event is not None:
                updates["history"] = meta.history + (
                    {"at": now, **history_event},
                )
            if status == RUNNING:
                updates["started_at"] = now
                updates["lease_owner"] = owner or ""
                updates["lease_deadline"] = (
                    now + lease_s if lease_s else None
                )
                updates["heartbeat_at"] = now
            if status == QUEUED:
                # Requeue: the claim is void; the next worker starts a
                # fresh lease. started_at is cleared so queue-age
                # metrics and "when did this attempt start" never read
                # a dead attempt's clock.
                updates["started_at"] = None
                updates["lease_owner"] = ""
                updates["lease_deadline"] = None
                updates["heartbeat_at"] = None
            if status in TERMINAL_STATES:
                updates["finished_at"] = now
                # Keep lease_owner for the post-mortem ("which worker
                # landed this?"), but no live claim remains.
                updates["lease_deadline"] = None
            meta = dataclasses.replace(meta, **updates)
            self._write_meta(meta)
        self._notify(job_id)
        return meta

    def heartbeat(
        self, job_id: str, owner: str, lease_s: float
    ) -> bool:
        """Refresh *owner*'s lease on a running job.

        Returns ``True`` when the lease was extended (``heartbeat_at``
        stamped, deadline pushed ``lease_s`` out), ``False`` when the
        claim no longer exists — job not running, or leased to someone
        else (the reaper reclaimed it). A ``False`` answer is the
        worker's cue to abandon the attempt: its results would be
        discarded by the stale-owner check anyway.
        """
        with self._lock:
            try:
                meta = self.meta(job_id)
            except (UnknownJobError, TornMetaError):
                return False
            if meta.status != RUNNING or meta.lease_owner != owner:
                return False
            now = time.time()
            self._write_meta(dataclasses.replace(
                meta, heartbeat_at=now, lease_deadline=now + lease_s
            ))
        return True

    def _write_meta(self, meta: JobMeta) -> None:
        path = self.meta_path(meta.id)
        temp = path.with_suffix(".json.tmp")
        temp.write_text(
            json.dumps(meta.to_dict(), indent=1, sort_keys=True) + "\n"
        )
        os.replace(temp, path)

    # -- the event log -------------------------------------------------------

    def append_event(self, job_id: str, line: str) -> None:
        """Append one envelope-wrapped event line and wake waiters.

        One locked open-write-close per line: events are low-rate next
        to probe runs, and a crashed server can tear at most the final
        line (readers only surface newline-terminated lines).
        """
        if not line.endswith("\n"):
            line += "\n"
        with self._lock:
            with open(self.events_path(job_id), "a") as handle:
                handle.write(line)
                handle.flush()
        self._notify(job_id)

    def append_marker(self, job_id: str, kind: str, **fields: object) -> None:
        """Append one server-side lifecycle marker to the event stream.

        Markers share the envelope's wire shape (``schema_version``
        first, then ``event``) but are authored by the *server*, not
        the analyzer: ``job_failed``, ``job_requeued``,
        ``job_quarantined``, ``job_interrupted``. They exist so the
        stream always carries a terminal (or handoff) record even when
        the analyzer never got to emit one — a worker killed mid-wave,
        a crashed campaign, a reclaimed lease — and a tailing client
        is never left staring at a stream that just stops.
        """
        from repro.api.events import SCHEMA_VERSION

        document = {"schema_version": SCHEMA_VERSION, "event": kind}
        document.update(fields)
        self.append_event(job_id, json.dumps(document))

    def read_events(
        self, job_id: str, since: int = 0
    ) -> tuple[list[str], int]:
        """Complete event lines from index *since* on, and the next
        index to poll from. Unknown jobs raise; jobs that have not
        emitted yet return ``([], since)``."""
        if not self.exists(job_id):
            raise UnknownJobError(job_id)
        try:
            with open(self.events_path(job_id)) as handle:
                lines = [
                    line for line in handle.readlines()
                    if line.endswith("\n")  # skip a torn final line
                ]
        except FileNotFoundError:
            lines = []
        if since < 0:
            since = 0
        fresh = lines[since:]
        return fresh, since + len(fresh)

    def wait_for_events(
        self, job_id: str, since: int, timeout: float
    ) -> tuple[list[str], int, str]:
        """Long-poll: block up to *timeout* seconds for lines past
        *since*; return ``(lines, next_since, status)``.

        Returns immediately when lines are already available or the
        job is terminal (a terminal job will never emit again — there
        is nothing to wait for).
        """
        deadline = time.monotonic() + max(timeout, 0.0)
        condition = self._condition(job_id)
        while True:
            lines, next_since = self.read_events(job_id, since)
            status = self.meta(job_id).status
            remaining = deadline - time.monotonic()
            if lines or status in TERMINAL_STATES or remaining <= 0:
                return lines, next_since, status
            with condition:
                # Bounded wait: an append between the read above and
                # this wait would be missed by pure signalling; the cap
                # turns that race into at most half a second of delay.
                condition.wait(min(remaining, 0.5))

    def _condition(self, job_id: str) -> threading.Condition:
        with self._lock:
            condition = self._conditions.get(job_id)
            if condition is None:
                condition = self._conditions[job_id] = threading.Condition()
            return condition

    def _notify(self, job_id: str) -> None:
        condition = self._condition(job_id)
        with condition:
            condition.notify_all()

    # -- crash recovery ------------------------------------------------------

    def recover(
        self, *, max_attempts: "int | None" = None
    ) -> tuple[list[JobMeta], list[JobMeta], list[JobMeta]]:
        """Reconcile on-disk state with reality at server start.

        Jobs found ``running`` belonged to a server that is no longer
        running them. With attempts to spare they are **resumed**:
        requeued with ``attempt+1`` and a ``server-restart`` history
        record — their checkpoint store answers every probe the dead
        attempt completed, so the resumed run re-executes only what
        never finished. Jobs already at *max_attempts* are quarantined
        instead (a job that takes the server down with it every time
        must stop being offered a worker). Jobs found ``queued`` are
        still owed work and come back in submission order. Torn or
        missing metadata is rebuilt from ``spec.json`` as ``queued``
        (history records the rebuild); leftover atomic-write temp
        files are cleared. Returns ``(resumed, quarantined, requeue)``
        — everything in *resumed* + *requeue* wants a queue slot.
        """
        resumed: list[JobMeta] = []
        quarantined: list[JobMeta] = []
        requeue: list[JobMeta] = []
        for path in sorted(self.jobs_dir.iterdir()):
            if not path.is_dir():
                continue
            job_id = path.name
            temp = self.meta_path(job_id).with_suffix(".json.tmp")
            try:
                temp.unlink()
            except FileNotFoundError:
                pass
            try:
                meta = self.meta(job_id)
            except UnknownJobError:
                if not self.spec_path(job_id).is_file():
                    continue  # not a job directory at all
                meta = self._rebuild_meta(job_id, "missing-meta")
            except TornMetaError:
                meta = self._rebuild_meta(job_id, "torn-meta")
            if meta is None:
                continue
            if meta.status == RUNNING:
                entry = {
                    "attempt": meta.attempt,
                    "outcome": "server-restart",
                    "owner": meta.lease_owner,
                }
                if max_attempts is not None and meta.attempt >= max_attempts:
                    quarantined.append(self.transition(
                        job_id, QUARANTINED,
                        reason=(
                            f"server restarted during attempt "
                            f"{meta.attempt}/{max_attempts}; "
                            f"attempt budget exhausted"
                        ),
                        history_event=entry,
                    ))
                    self.append_marker(
                        job_id, "job_quarantined",
                        attempt=meta.attempt, reason="server-restart",
                    )
                else:
                    resumed.append(self.transition(
                        job_id, QUEUED,
                        bump_attempt=True, history_event=entry,
                    ))
                    self.append_marker(
                        job_id, "job_requeued",
                        attempt=meta.attempt + 1, reason="server-restart",
                    )
            elif meta.status == QUEUED:
                requeue.append(meta)
        return resumed, quarantined, requeue

    def _rebuild_meta(self, job_id: str, why: str) -> "JobMeta | None":
        """Reconstruct a consistent ``queued`` meta from the immutable
        spec — the last consistent state a torn write can roll back
        to. A job whose *spec* is also unreadable is beyond rebuilding
        and is skipped (its directory stays for manual triage)."""
        try:
            spec = self.spec(job_id)
        except (UnknownJobError, JobSpecError, json.JSONDecodeError):
            return None
        try:
            created_at = os.path.getmtime(self.spec_path(job_id))
        except OSError:
            created_at = time.time()
        meta = JobMeta(
            id=job_id,
            status=QUEUED,
            app=spec.app,
            workload=spec.workload,
            backend=spec.backend,
            created_at=created_at,
            history=({
                "at": time.time(),
                "attempt": 1,
                "outcome": f"rebuilt-after-{why}",
            },),
        )
        with self._lock:
            self._write_meta(meta)
        return meta
