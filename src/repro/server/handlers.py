"""HTTP request handling for the campaign server.

One :class:`http.server.BaseHTTPRequestHandler` subclass routes the
service's whole surface:

=========  ==============================  =====================================
Method     Path                            Meaning
=========  ==============================  =====================================
``POST``   ``/jobs``                       submit a campaign spec, get a job id
``GET``    ``/jobs``                       list job metas (``?state=`` filters)
``GET``    ``/jobs/<id>``                  one job's meta
``GET``    ``/jobs/<id>/events``           replay/long-poll the event stream
``GET``    ``/jobs/<id>/report``           the finished job's report.json
``POST``   ``/jobs/<id>/cancel``           cooperative cancellation
``POST``   ``/admin/drain``                close intake, finish in-flight work
``GET``    ``/healthz``                    liveness
``GET``    ``/stats``                      queue/worker/store observability
``GET``    ``/cache/stats``                the served run store's stats
``GET``    ``/cache/<keyid>``              one cached run (``?claim=1&wait=S``)
``PUT``    ``/cache/<keyid>``              publish one run record
``POST``   ``/cache/lookup``               batched cache read
``POST``   ``/fleet/heartbeat``            a worker's liveness announcement
=========  ==============================  =====================================

The ``/cache`` family is the fleet's shared run store (present only
when the server was started with ``--run-cache``; 503 otherwise): the
*keyid* is the store key's URL token
(:func:`repro.core.cachestore.remote.encode_key_id`), record bodies
are the same JSON objects the local backends write as lines, and
``?claim=1`` joins the cross-process single-flight protocol — a miss
reply says whether the claim is now this caller's (``{"miss": true,
"claimed": true}``, plus an ``X-Loupe-Claim: granted`` header), and
``wait=S`` lets the server hold the reply while another fleet member
executes. ``/fleet/heartbeat`` feeds the worker gauges in ``/stats``.

Everything speaks JSON except ``/events``, which replays the job's
``events.jsonl`` verbatim as ``application/x-ndjson`` — the body *is*
the on-disk stream, one envelope-wrapped event per line — with two
response headers carrying the tailing cursor:

* ``X-Loupe-Next-Since`` — the ``since`` value for the next poll;
* ``X-Loupe-Job-Status`` — the job's status at reply time, so a
  client knows to stop tailing once the stream drains *and* the
  status is terminal.

``?since=N`` skips the first N lines; ``?timeout=S`` long-polls: the
reply is held up to S seconds waiting for fresh lines (returning
early the moment one lands, or immediately if the job is terminal).
Both are validated like the spec validator validates specs — negative
or non-finite values are a 400 with details, not a silent pass into
the wait loop; timeouts beyond :data:`MAX_POLL_TIMEOUT_S` are clamped
(long tails are built from repeated polls, not one huge one).

Admission control speaks in status codes: a full queue is ``429``
with a ``Retry-After`` header (seconds, advisory), a draining server
is ``503`` — both tell a well-behaved submitter exactly what to do
next. Torn job metadata (crash footprint, repaired at the next
restart) reads as ``503`` rather than a stack trace.

The handler holds no state of its own — it reaches the
:class:`~repro.server.app.CampaignServer` through
``self.server.campaign`` and translates its exceptions to status
codes (unknown job → 404, bad spec → 400, illegal cancel → 409).
"""

from __future__ import annotations

import json
import math
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.core.cachestore.base import (
    CacheStoreError,
    decode_record_meta,
    encode_record,
)
from repro.core.cachestore.remote import decode_key_id, encode_key_id
from repro.server.jobstore import (
    STATES,
    JobSpecError,
    JobStateError,
    TornMetaError,
    UnknownJobError,
)
from repro.server.queue import QueueFullError, ServerDrainingError

#: Upper bound on one long-poll's hold time; clients wanting longer
#: tails simply poll again with the returned cursor.
MAX_POLL_TIMEOUT_S = 30.0

#: Upper bound on an acceptable request body (a campaign spec is a
#: small flat object; anything bigger is a confused client).
MAX_BODY_BYTES = 1 << 20


class CampaignHTTPServer(ThreadingHTTPServer):
    """The listening socket: one thread per in-flight request (which
    is what lets long-polls park without starving other clients), all
    of them daemons so a wedged client never blocks process exit."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple, campaign) -> None:
        super().__init__(address, CampaignRequestHandler)
        #: The :class:`~repro.server.app.CampaignServer` behind this
        #: socket — handlers reach all state through it.
        self.campaign = campaign


class CampaignRequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "loupe-campaign/1"

    def log_message(self, format: str, *args: object) -> None:
        # Per-request stderr chatter off by default; the server's
        # jsonl event logs are the observability story.
        if getattr(self.server.campaign, "verbose", False):
            super().log_message(format, *args)

    # -- routing -------------------------------------------------------------

    def do_GET(self) -> None:
        parsed = urllib.parse.urlsplit(self.path)
        query = urllib.parse.parse_qs(parsed.query)
        parts = [part for part in parsed.path.split("/") if part]
        try:
            if parts == ["healthz"]:
                self._send_json(200, self.server.campaign.health())
            elif parts == ["stats"]:
                self._send_json(200, self.server.campaign.stats())
            elif parts == ["jobs"]:
                self._send_jobs(query)
            elif len(parts) == 2 and parts[0] == "jobs":
                meta = self.server.campaign.store.meta(parts[1])
                self._send_json(200, meta.to_dict())
            elif len(parts) == 3 and parts[:1] == ["jobs"] \
                    and parts[2] == "events":
                self._send_events(parts[1], query)
            elif len(parts) == 3 and parts[:1] == ["jobs"] \
                    and parts[2] == "report":
                self._send_report(parts[1])
            elif parts == ["cache", "stats"]:
                self._send_cache_stats()
            elif len(parts) == 2 and parts[0] == "cache":
                self._send_cache_get(parts[1], query)
            else:
                self._send_json(404, {"error": f"no such path: {parsed.path}"})
        except UnknownJobError as error:
            self._send_json(404, {"error": str(error)})
        except TornMetaError as error:
            self._send_json(503, {"error": str(error)})
        except CacheStoreError as error:
            self._send_json(503, {"error": str(error)})
        except ValueError as error:
            self._send_json(400, {"error": str(error)})

    def do_POST(self) -> None:
        parsed = urllib.parse.urlsplit(self.path)
        parts = [part for part in parsed.path.split("/") if part]
        try:
            if parts == ["jobs"]:
                meta = self.server.campaign.submit(self._read_body())
                self._send_json(201, meta.to_dict())
            elif len(parts) == 3 and parts[:1] == ["jobs"] \
                    and parts[2] == "cancel":
                meta = self.server.campaign.cancel(parts[1])
                self._send_json(200, meta.to_dict())
            elif parts == ["admin", "drain"]:
                self._send_json(200, self.server.campaign.drain())
            elif parts == ["cache", "lookup"]:
                self._send_cache_lookup()
            elif parts == ["fleet", "heartbeat"]:
                self._send_json(
                    200,
                    self.server.campaign.fleet.heartbeat(self._read_body()),
                )
            else:
                self._send_json(404, {"error": f"no such path: {parsed.path}"})
        except UnknownJobError as error:
            self._send_json(404, {"error": str(error)})
        except QueueFullError as error:
            self._send_json(
                429, {"error": str(error), "retry_after_s": error.retry_after_s},
                headers={"Retry-After": str(int(error.retry_after_s) or 1)},
            )
        except ServerDrainingError as error:
            self._send_json(503, {"error": str(error)})
        except JobSpecError as error:
            self._send_json(400, {"error": str(error)})
        except JobStateError as error:
            self._send_json(409, {"error": str(error)})
        except TornMetaError as error:
            self._send_json(503, {"error": str(error)})
        except CacheStoreError as error:
            self._send_json(503, {"error": str(error)})
        except ValueError as error:
            self._send_json(400, {"error": str(error)})

    def do_PUT(self) -> None:
        parsed = urllib.parse.urlsplit(self.path)
        parts = [part for part in parsed.path.split("/") if part]
        try:
            if len(parts) == 2 and parts[0] == "cache" \
                    and parts[1] != "stats":
                self._receive_cache_put(parts[1])
            else:
                self._send_json(404, {"error": f"no such path: {parsed.path}"})
        except JobSpecError as error:
            self._send_json(400, {"error": str(error)})
        except CacheStoreError as error:
            self._send_json(503, {"error": str(error)})
        except ValueError as error:
            self._send_json(400, {"error": str(error)})

    # -- endpoint bodies -----------------------------------------------------

    def _send_jobs(self, query: dict) -> None:
        metas = self.server.campaign.store.list_jobs()
        states = query.get("state")
        if states:
            wanted = states[-1]
            if wanted not in STATES:
                raise ValueError(
                    f"unknown state {wanted!r}; choose from: "
                    f"{', '.join(STATES)}"
                )
            metas = [meta for meta in metas if meta.status == wanted]
        self._send_json(200, {"jobs": [meta.to_dict() for meta in metas]})

    def _send_events(self, job_id: str, query: dict) -> None:
        since = _int_param(query, "since", 0)
        if since < 0:
            raise ValueError(
                f"query parameter 'since' must be >= 0, got {since}"
            )
        timeout = _float_param(query, "timeout", 0.0)
        if not math.isfinite(timeout) or timeout < 0:
            # min() would happily return nan, and a negative wait is a
            # confused client — both are 400s with the same tone as
            # the spec validator, not silent passes into the poll.
            raise ValueError(
                f"query parameter 'timeout' must be a finite number "
                f">= 0, got {timeout!r}"
            )
        timeout = min(timeout, MAX_POLL_TIMEOUT_S)
        lines, next_since, status = (
            self.server.campaign.store.wait_for_events(job_id, since, timeout)
        )
        body = "".join(lines).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Loupe-Next-Since", str(next_since))
        self.send_header("X-Loupe-Job-Status", status)
        self.end_headers()
        self.wfile.write(body)

    def _send_report(self, job_id: str) -> None:
        store = self.server.campaign.store
        if not store.exists(job_id):
            raise UnknownJobError(job_id)
        try:
            body = store.report_path(job_id).read_bytes()
        except FileNotFoundError:
            status = store.meta(job_id).status
            self._send_json(404, {
                "error": f"job {job_id} has no report (status: {status})",
            })
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- the cache surface ---------------------------------------------------

    def _cache_service(self):
        service = self.server.campaign.cache
        if service is None:
            raise CacheStoreError(
                "this server serves no run cache; restart it with "
                "`loupe serve --run-cache PATH` to enable the /cache "
                "surface"
            )
        return service

    def _send_cache_stats(self) -> None:
        service = self._cache_service()
        self._send_json(200, {
            "store": service.store_stats(),
            "counters": service.counters(),
            "fleet": self.server.campaign.fleet.gauges(),
        })

    def _send_cache_get(self, key_id: str, query: dict) -> None:
        service = self._cache_service()
        key = decode_key_id(key_id)
        claim = _int_param(query, "claim", 0) != 0
        wait = _float_param(query, "wait", 0.0)
        if not math.isfinite(wait) or wait < 0:
            raise ValueError(
                f"query parameter 'wait' must be a finite number >= 0, "
                f"got {wait!r}"
            )
        result, claimed = service.fetch(key, claim=claim, wait_s=wait)
        if result is None:
            self._send_json(
                404,
                {"miss": True, "claimed": claimed},
                headers={"X-Loupe-Claim": "granted" if claimed else "none"},
            )
            return
        self._send_json(200, json.loads(encode_record(key, result)))

    def _receive_cache_put(self, key_id: str) -> None:
        service = self._cache_service()
        key = decode_key_id(key_id)
        document = self._read_body()
        try:
            record_key, result, policy, _created = decode_record_meta(
                json.dumps(document)
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ValueError(f"malformed cache record: {error}")
        if record_key != key:
            raise ValueError(
                "the record's key does not match the key id in the URL"
            )
        service.publish(key, result, policy=policy)
        body = b""
        self.send_response(204)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()

    def _send_cache_lookup(self) -> None:
        service = self._cache_service()
        document = self._read_body()
        keys = document.get("keys") if isinstance(document, dict) else None
        if not isinstance(keys, list) or not all(
            isinstance(key_id, str) for key_id in keys
        ):
            raise ValueError(
                'lookup body must be {"keys": ["<keyid>", ...]}'
            )
        found = service.lookup([decode_key_id(key_id) for key_id in keys])
        self._send_json(200, {
            "hits": {
                encode_key_id(key): json.loads(encode_record(key, result))
                for key, result in found.items()
            },
        })

    # -- plumbing ------------------------------------------------------------

    def _read_body(self) -> object:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise JobSpecError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise JobSpecError("request body is empty; expected a JSON spec")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as error:
            raise JobSpecError(f"request body is not valid JSON: {error}")

    def _send_json(
        self,
        code: int,
        document: dict,
        *,
        headers: "dict | None" = None,
    ) -> None:
        body = (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)


def _int_param(query: dict, name: str, default: int) -> int:
    values = query.get(name)
    if not values:
        return default
    try:
        return int(values[-1])
    except ValueError:
        raise ValueError(f"query parameter {name!r} must be an integer")


def _float_param(query: dict, name: str, default: float) -> float:
    values = query.get(name)
    if not values:
        return default
    try:
        return float(values[-1])
    except ValueError:
        raise ValueError(f"query parameter {name!r} must be a number")
