"""The campaign server: store + worker pool + HTTP front door.

:class:`CampaignServer` composes the three server pieces — the
filesystem :class:`~repro.server.jobstore.JobStore`, the bounded
:class:`~repro.server.queue.JobRunner`, and the
:class:`~repro.server.handlers.CampaignHTTPServer` socket — and owns
their shared lifecycle: construction binds the port (``port=0`` asks
the OS for an ephemeral one), :meth:`start` recovers crashed state
and begins serving, :meth:`close` winds everything down.

On start the server writes a **discovery file**,
``<data_dir>/server.json`` (``{"url", "pid", "started_at"}``), so
scripts that launched ``loupe serve --port 0`` in the background — the
CI smoke job, the test suite — can find the actual address without
parsing stdout. The file is removed on clean shutdown; a stale one
simply points at a dead port, which clients report as a connection
error, not silent hangs.

Validation happens at the front door: :meth:`submit` parses the spec
(:class:`~repro.server.jobstore.JobSpecError` → HTTP 400) and
resolves every named backend against the live registry before
accepting, so an unknown backend is rejected at submit time with the
registry's own "available backends" message rather than discovered by
a worker minutes later.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from repro.api.registry import UnknownBackendError, parse_backend_names, resolve_backend
from repro.server.cache import CacheService, FleetTracker
from repro.server.handlers import CampaignHTTPServer
from repro.server.jobstore import (
    QUEUED,
    RUNNING,
    JobMeta,
    JobSpec,
    JobSpecError,
    JobStore,
)
from repro.server.queue import DEFAULT_LEASE_S, DEFAULT_MAX_ATTEMPTS, JobRunner


class CampaignServer:
    """One campaign service instance.

    Usable embedded (tests construct one, ``start()`` it, and talk to
    ``server.url``) or from the CLI (``loupe serve``). ``run_cache``
    sets a service-default persistent run-result store: jobs whose
    spec names no store of their own inherit it, which is how a
    long-lived service amortizes probe work across campaigns.
    """

    def __init__(
        self,
        data_dir: "str | Path",
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        run_cache: "str | None" = None,
        max_queue: "int | None" = None,
        lease_s: float = DEFAULT_LEASE_S,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        checkpoint_jobs: bool = True,
        reaper_interval_s: "float | None" = None,
        verbose: bool = False,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.run_cache = run_cache
        self.verbose = verbose
        self.started_at: "float | None" = None
        self.store = JobStore(self.data_dir)
        self.runner = JobRunner(
            self.store,
            workers=workers,
            max_queue=max_queue,
            lease_s=lease_s,
            max_attempts=max_attempts,
            checkpoint_jobs=checkpoint_jobs,
            reaper_interval_s=reaper_interval_s,
        )
        self.fleet = FleetTracker()
        self.cache: "CacheService | None" = None
        if run_cache is not None:
            # The served cache surface (GET/PUT /cache/<key>): one
            # long-lived store the whole fleet shares, with
            # cross-process single-flight claims layered on top.
            from repro.core.cachestore import open_store

            self.cache = CacheService(open_store(run_cache))
        self._httpd = CampaignHTTPServer((host, port), self)
        self._thread: "threading.Thread | None" = None
        self._closed = False

    # -- addresses -----------------------------------------------------------

    @property
    def address(self) -> tuple:
        return self._httpd.server_address

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def discovery_path(self) -> Path:
        return self.data_dir / "server.json"

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "CampaignServer":
        """Recover, start the workers, and serve in a background
        thread. Returns ``self`` so tests can one-line it."""
        if self._closed:
            raise RuntimeError("server already closed")
        if self._thread is not None:
            return self
        self.started_at = time.time()
        self.runner.start()  # recover() + requeue happen here
        self.discovery_path.write_text(json.dumps({
            "url": self.url,
            "pid": os.getpid(),
            "started_at": self.started_at,
        }, sort_keys=True) + "\n")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="loupe-campaign-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking variant for ``loupe serve``: start, then park the
        calling thread until :meth:`close` (or KeyboardInterrupt,
        which the CLI translates into a graceful close)."""
        self.start()
        assert self._thread is not None
        while self._thread.is_alive():
            self._thread.join(timeout=1.0)

    def close(self, *, cancel_running: bool = False) -> None:
        """Stop serving and wind down the pool. Idempotent.

        ``cancel_running=True`` signals in-flight campaigns to stop at
        their next wave boundary instead of draining to completion.
        """
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.runner.stop(cancel_running=cancel_running)
        if self.cache is not None:
            self.cache.close()
        try:
            self.discovery_path.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "CampaignServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close(cancel_running=True)

    # -- the service operations (handlers call these) ------------------------

    def submit(self, document: object) -> JobMeta:
        """Validate one spec document and enqueue it as a job."""
        spec = JobSpec.from_dict(document)
        if spec.run_cache is None and self.run_cache is not None:
            # Inherit the service-default store; recorded in the job's
            # spec.json so the provenance is explicit, not ambient.
            spec = JobSpec.from_dict(
                {**spec.to_dict(), "run_cache": self.run_cache}
            )
        try:
            for name in parse_backend_names(spec.backend):
                resolve_backend(name)
        except UnknownBackendError as error:
            raise JobSpecError(str(error))
        return self.runner.submit(spec)

    def cancel(self, job_id: str) -> JobMeta:
        return self.runner.cancel(job_id)

    def drain(self) -> dict:
        """Flip the runner's one-way drain switch and report the
        resulting shed plan: what finishes, what waits on disk."""
        self.runner.drain()
        counts = self.store.counts()
        return {
            "draining": True,
            "running": counts.get(RUNNING, 0),
            "queued": counts.get(QUEUED, 0),
        }

    def health(self) -> dict:
        return {
            "ok": True,
            "url": self.url,
            "data_dir": str(self.data_dir),
            "workers": self.runner.workers,
            "draining": self.runner.draining,
            "started_at": self.started_at,
        }

    def stats(self) -> dict:
        """Service observability: queue depth, worker utilization, job
        totals by status (per-state gauges, zeros included), durability
        posture (``queue``: admission limits, drain flag, queue-age
        watermarks; ``attempts``: retry pressure — totals beyond first
        attempts and the worst offender), and — when a service-default
        run cache is configured — the store's stats in exactly the
        ``loupe cache stats --json`` shape, plus the cache surface's
        counters (hits/misses/single-flight coalescing) and fleet
        gauges (connected workers, chunks in flight, from worker
        heartbeats)."""
        store_stats = None
        cache_counters = None
        if self.cache is not None:
            cache_counters = self.cache.counters()
        if self.run_cache is not None and Path(self.run_cache).exists():
            # A fresh open per stats call, not the served surface's
            # long-lived handle: JSONL records appended by concurrent
            # campaign processes are only visible to new handles.
            from repro.core.cachestore import open_store

            with open_store(self.run_cache) as cache:
                store_stats = cache.stats().to_dict()
        elif self.cache is not None:
            store_stats = self.cache.store_stats()
        now = time.time()
        queue_ages = []
        attempts = []
        for meta in self.store.list_jobs():
            attempts.append(meta.attempt)
            if meta.status == QUEUED:
                queue_ages.append(max(now - meta.created_at, 0.0))
        return {
            "queue_depth": self.runner.queue_depth,
            "workers": self.runner.workers,
            "busy_workers": self.runner.busy_workers,
            "jobs": self.store.counts(),
            "queue": {
                "max_queue": self.runner.max_queue,
                "draining": self.runner.draining,
                "oldest_age_s": max(queue_ages, default=0.0),
                "mean_age_s": (
                    sum(queue_ages) / len(queue_ages) if queue_ages else 0.0
                ),
            },
            "attempts": {
                "max_attempts": self.runner.max_attempts,
                "lease_s": self.runner.lease_s,
                "retries": sum(a - 1 for a in attempts),
                "max_observed": max(attempts, default=0),
            },
            "run_cache": store_stats,
            "cache": cache_counters,
            "fleet": self.fleet.gauges(),
        }
