"""The campaign server's work queue and bounded worker pool.

Submitted jobs drain through a plain FIFO: :class:`JobRunner` owns a
:class:`queue.Queue` of job ids and a fixed pool of worker threads,
each of which pops an id, moves the job ``queued → running``, and
drives the campaign through :class:`~repro.api.session.LoupeSession`
exactly as the CLI would — same analyzer, same engine, same event
stream. The server adds nothing to *how* campaigns run; it only
decides *when* and records *what happened*.

Every analyzer event is wrapped in the versioned server envelope
(:func:`repro.api.events.envelope`) and appended to the job's
``events.jsonl``, which is what ``GET /jobs/<id>/events`` replays.
Because the envelope merely prefixes ``schema_version`` to the exact
``to_dict()`` document the CLI's ``--events jsonl`` writes, stripping
that one field restores the CLI stream byte for byte.

Cancellation is cooperative end to end: each submitted job owns a
:class:`threading.Event`; ``POST /jobs/<id>/cancel`` sets it, and the
worker hands ``event.is_set`` to :meth:`LoupeSession.analyze` as its
``cancel_check``. A queued job is cancelled on the spot (the
store's state machine arbitrates the race with a worker picking it
up); a running job stops at the analyzer's next wave boundary and
lands ``cancelled`` with its engine accounting intact.
"""

from __future__ import annotations

import dataclasses
import json
import os
import queue
import threading

from repro.api.events import envelope
from repro.api.session import LoupeSession
from repro.errors import AnalysisCancelledError
from repro.server.jobstore import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobMeta,
    JobSpec,
    JobStateError,
    JobStore,
    encode_report,
)

#: Queue sentinel telling one worker thread to exit.
_STOP = object()


class JobRunner:
    """A bounded worker pool draining the job queue through sessions.

    One runner per server. ``workers`` threads run campaigns
    concurrently; everything else waits its turn in FIFO order. Each
    job gets a **fresh** :class:`LoupeSession` — jobs must not share
    loupedb memoization, or two submissions of the same spec would
    return one record and the second job's event log would be empty.
    """

    def __init__(self, store: JobStore, *, workers: int = 2) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.store = store
        self.workers = workers
        self._queue: "queue.Queue[object]" = queue.Queue()
        self._cancels: dict[str, threading.Event] = {}
        self._lock = threading.Lock()
        self._busy = 0
        self._threads: list[threading.Thread] = []
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Recover the store, re-enqueue surviving queued jobs, and
        spin up the worker threads. Idempotent."""
        with self._lock:
            if self._started:
                return
            self._started = True
        _orphaned, requeue = self.store.recover()
        for meta in requeue:
            self.submit_existing(meta.id)
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"loupe-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(
        self,
        *,
        cancel_running: bool = False,
        timeout: "float | None" = 10.0,
    ) -> None:
        """Stop accepting work and wind the pool down.

        ``cancel_running=True`` additionally sets every outstanding
        cancel event, so in-flight campaigns stop at their next wave
        boundary instead of running to completion (they land
        ``cancelled``, which is the honest record of a shutdown that
        did not wait). Worker threads are daemons — a join timing out
        never wedges process exit.
        """
        if cancel_running:
            with self._lock:
                events = list(self._cancels.values())
            for event in events:
                event.set()
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads.clear()
        with self._lock:
            self._started = False

    # -- submission and cancellation -----------------------------------------

    def submit(self, spec: JobSpec) -> JobMeta:
        """Persist *spec* as a new queued job and enqueue it."""
        meta = self.store.new_job(spec)
        self._enqueue(meta.id)
        return meta

    def submit_existing(self, job_id: str) -> None:
        """Re-enqueue a job already persisted as ``queued`` (crash
        recovery path)."""
        self._enqueue(job_id)

    def _enqueue(self, job_id: str) -> None:
        with self._lock:
            self._cancels[job_id] = threading.Event()
        self._queue.put(job_id)

    def cancel(self, job_id: str) -> JobMeta:
        """Request cancellation; returns the job's resulting meta.

        Queued jobs land ``cancelled`` immediately (unless a worker
        wins the pickup race, in which case the set cancel event stops
        them within one wave). Running jobs get the cooperative
        signal and keep status ``running`` until the analyzer reaches
        its next checkpoint. Cancelling an already-cancelled job is
        idempotent; cancelling ``done``/``failed`` raises
        :class:`JobStateError` (there is nothing left to stop).
        """
        meta = self.store.meta(job_id)
        if meta.status == CANCELLED:
            return meta
        if meta.status in (DONE, FAILED):
            raise JobStateError(job_id, meta.status, CANCELLED)
        with self._lock:
            event = self._cancels.get(job_id)
        if event is not None:
            event.set()
        if meta.status == QUEUED:
            try:
                return self.store.transition(
                    job_id, CANCELLED, reason="cancelled while queued"
                )
            except JobStateError:
                # Lost the race: a worker moved it to running between
                # our read and the transition. The cancel event is
                # already set, so the campaign stops at its next wave.
                pass
        return self.store.meta(job_id)

    # -- introspection -------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Jobs waiting for a worker (approximate, by design)."""
        return self._queue.qsize()

    @property
    def busy_workers(self) -> int:
        with self._lock:
            return self._busy

    # -- the work loop -------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is _STOP:
                    return
                job_id = str(item)
                with self._lock:
                    self._busy += 1
                    event = self._cancels.get(job_id)
                try:
                    self._run_job(job_id, event or threading.Event())
                finally:
                    with self._lock:
                        self._busy -= 1
                        self._cancels.pop(job_id, None)
            finally:
                self._queue.task_done()

    def _run_job(self, job_id: str, cancel_event: threading.Event) -> None:
        try:
            self.store.transition(job_id, RUNNING)
        except JobStateError:
            # Cancelled (or otherwise resolved) while queued — the
            # state machine already recorded the outcome; nothing to
            # run.
            return

        def record(event: object) -> None:
            self.store.append_event(job_id, json.dumps(envelope(event)))

        try:
            spec = self.store.spec(job_id)
            config = spec.analyzer_config()
            with LoupeSession(config=config) as session:
                outcome = session.analyze(
                    spec.request(),
                    on_event=record,
                    cancel_check=cancel_event.is_set,
                )
                stats = session.last_engine_stats
            self._write_report(job_id, outcome)
            self.store.transition(
                job_id, DONE, engine_stats=_stats_doc(stats)
            )
        except AnalysisCancelledError as error:
            self.store.transition(
                job_id,
                CANCELLED,
                reason="cancelled while running",
                engine_stats=_stats_doc(error.stats),
            )
        except Exception as error:  # noqa: BLE001 — jobs must never
            # take a worker thread down with them; whatever the
            # campaign raised becomes the job's terminal record.
            self.store.transition(
                job_id,
                FAILED,
                reason=f"{type(error).__name__}: {error}",
            )

    def _write_report(self, job_id: str, outcome: object) -> None:
        path = self.store.report_path(job_id)
        temp = path.with_suffix(".json.tmp")
        temp.write_text(encode_report(outcome))
        os.replace(temp, path)


def _stats_doc(stats: object) -> "dict | None":
    """Engine stats as a plain document for ``meta.json`` (``None``
    stays ``None`` — e.g. a job cancelled before its first probe)."""
    if stats is None:
        return None
    return dataclasses.asdict(stats)
