"""The campaign server's work queue, worker pool, and reaper.

Submitted jobs drain through a plain FIFO: :class:`JobRunner` owns a
:class:`queue.Queue` of job ids and a fixed pool of worker threads,
each of which pops an id, moves the job ``queued → running``, and
drives the campaign through :class:`~repro.api.session.LoupeSession`
exactly as the CLI would — same analyzer, same engine, same event
stream. The server adds nothing to *how* campaigns run; it only
decides *when* and records *what happened*.

Every analyzer event is wrapped in the versioned server envelope
(:func:`repro.api.events.envelope`) and appended to the job's
``events.jsonl``, which is what ``GET /jobs/<id>/events`` replays.
Because the envelope merely prefixes ``schema_version`` to the exact
``to_dict()`` document the CLI's ``--events jsonl`` writes, stripping
that one field restores the CLI stream byte for byte.

Cancellation is cooperative end to end: each submitted job owns a
:class:`threading.Event`; ``POST /jobs/<id>/cancel`` sets it, and the
worker hands ``event.is_set`` to :meth:`LoupeSession.analyze` as its
``cancel_check``. A queued job is cancelled on the spot (the
store's state machine arbitrates the race with a worker picking it
up); a running job stops at the analyzer's next wave boundary and
lands ``cancelled`` with its engine accounting intact.

The durability layer (this module's half of it — the persistent half
lives in :mod:`repro.server.jobstore`):

* **Leases + heartbeats.** A worker takes each job under a lease
  (``lease_s`` seconds) and proves liveness through the analyzer's
  ``progress_hook``, which fires at every wave boundary — the same
  cadence as cooperative cancellation, so a campaign that can be
  cancelled can also be seen to be alive. :class:`_Heartbeat`
  throttles the disk writes and flips its ``lost`` flag the moment the
  store refuses a beat (the reaper took the job), which the worker's
  ``cancel_check`` observes: a reclaimed worker stops at its next
  wave instead of burning probes on a job it no longer owns.

* **The reaper.** A daemon thread sweeps for running jobs whose lease
  deadline has passed — a worker wedged in a backend, a heartbeat
  that stopped — and reclaims them: re-enqueued with ``attempt+1``
  (their checkpoint store makes the retry cheap) or, once
  ``max_attempts`` is spent, quarantined with the full attempt
  history. Either way a marker event lands in the stream, so a
  tailing client sees the handoff.

* **Checkpoints.** Jobs whose spec names no run cache of their own
  get a private one at ``jobs/<id>/runcache.sqlite``; every completed
  probe is durable the moment it finishes, which is what makes
  resume-after-crash re-execute only the work that never completed.

* **Admission + drain.** ``max_queue`` bounds accepted-but-unstarted
  work (:class:`QueueFullError` → HTTP 429); :meth:`JobRunner.drain`
  stops intake (:class:`ServerDrainingError` → 503) and lets workers
  finish in-flight campaigns while leaving still-queued jobs on disk
  as ``queued`` — the next server start re-enqueues them untouched.
"""

from __future__ import annotations

import dataclasses
import json
import os
import queue
import threading
import time

from repro.api.events import envelope
from repro.api.session import LoupeSession
from repro.errors import AnalysisCancelledError
from repro.server.jobstore import (
    CANCELLED,
    DONE,
    FAILED,
    QUARANTINED,
    QUEUED,
    RUNNING,
    JobError,
    JobMeta,
    JobSpec,
    JobStateError,
    JobStore,
    encode_report,
)

#: Queue sentinel telling one worker thread to exit.
_STOP = object()

#: Default lease duration. Generous next to the sub-second waves of
#: the simulated backends, and refreshed every wave — an expiry means
#: a worker made *no* progress for this long, not a slow campaign.
DEFAULT_LEASE_S = 30.0

#: Default attempt budget before a job is quarantined as poisonous.
DEFAULT_MAX_ATTEMPTS = 3


class QueueFullError(JobError):
    """Admission control refused a submission: the queue is at its
    configured depth. Carries the advisory ``retry_after_s`` the HTTP
    layer surfaces as a ``Retry-After`` header."""

    def __init__(self, depth: int, max_queue: int, retry_after_s: float) -> None:
        super().__init__(
            f"queue full ({depth}/{max_queue} jobs waiting); "
            f"retry in {retry_after_s:.0f}s"
        )
        self.depth = depth
        self.max_queue = max_queue
        self.retry_after_s = retry_after_s


class ServerDrainingError(JobError):
    """The server is draining: in-flight work finishes, intake is
    closed. Submissions should go elsewhere (or wait for a restart)."""

    def __init__(self) -> None:
        super().__init__("server is draining; not accepting new jobs")


class _Heartbeat:
    """One running job's liveness prover — the ``progress_hook``.

    Called at every analyzer wave boundary; throttles actual store
    writes to ``interval`` so a fast campaign doesn't turn its
    heartbeat into an fsync storm. The moment the store refuses a
    beat — the job is no longer running, or no longer ours — ``lost``
    latches true and stays true: the worker's ``cancel_check`` reads
    it and winds the orphaned attempt down at the next wave.
    """

    def __init__(
        self, store: JobStore, job_id: str, owner: str, lease_s: float
    ) -> None:
        self.store = store
        self.job_id = job_id
        self.owner = owner
        self.lease_s = lease_s
        self.interval = max(min(1.0, lease_s / 8.0), 0.01)
        self.lost = False
        self._last_beat = 0.0

    def __call__(self) -> None:
        if self.lost:
            return
        now = time.monotonic()
        if now - self._last_beat < self.interval:
            return
        self._last_beat = now
        if not self.store.heartbeat(self.job_id, self.owner, self.lease_s):
            self.lost = True


class JobRunner:
    """A bounded worker pool draining the job queue through sessions.

    One runner per server. ``workers`` threads run campaigns
    concurrently; everything else waits its turn in FIFO order. Each
    job gets a **fresh** :class:`LoupeSession` — jobs must not share
    loupedb memoization, or two submissions of the same spec would
    return one record and the second job's event log would be empty.

    Durability knobs: ``max_queue`` bounds accepted-but-unstarted jobs
    (``None`` = unbounded, the embedded-test default); ``lease_s`` and
    ``max_attempts`` parameterize the lease protocol described in the
    module docstring; ``checkpoint_jobs=False`` turns off the per-job
    run-cache store (jobs then re-execute from scratch on resume —
    still correct, just not cheap). ``reaper_interval_s`` mainly
    exists for tests; the default sweeps a few times per lease.
    """

    def __init__(
        self,
        store: JobStore,
        *,
        workers: int = 2,
        max_queue: "int | None" = None,
        lease_s: float = DEFAULT_LEASE_S,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        checkpoint_jobs: bool = True,
        reaper_interval_s: "float | None" = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_queue is not None and max_queue < 1:
            raise ValueError("max_queue must be >= 1 (or None for unbounded)")
        if lease_s <= 0:
            raise ValueError("lease_s must be > 0")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.store = store
        self.workers = workers
        self.max_queue = max_queue
        self.lease_s = lease_s
        self.max_attempts = max_attempts
        self.checkpoint_jobs = checkpoint_jobs
        self.reaper_interval_s = (
            reaper_interval_s
            if reaper_interval_s is not None
            else max(min(lease_s / 4.0, 5.0), 0.05)
        )
        self._queue: "queue.Queue[object]" = queue.Queue()
        self._cancels: dict[str, threading.Event] = {}
        self._lock = threading.Lock()
        self._busy = 0
        self._threads: list[threading.Thread] = []
        self._reaper: "threading.Thread | None" = None
        self._stop_reaper = threading.Event()
        self._started = False
        self._draining = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Recover the store, re-enqueue surviving work, and spin up
        the workers and the reaper. Idempotent.

        Recovery is the resume path: orphaned ``running`` jobs come
        back ``queued`` with ``attempt+1`` (or quarantined, budget
        permitting) and go straight back on the queue alongside the
        jobs that never started.
        """
        with self._lock:
            if self._started:
                return
            self._started = True
        self._stop_reaper.clear()
        resumed, _quarantined, requeue = self.store.recover(
            max_attempts=self.max_attempts
        )
        for meta in resumed + requeue:
            self._enqueue(meta.id)
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"loupe-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        self._reaper = threading.Thread(
            target=self._reaper_loop, name="loupe-reaper", daemon=True
        )
        self._reaper.start()

    def stop(
        self,
        *,
        cancel_running: bool = False,
        timeout: "float | None" = 10.0,
    ) -> None:
        """Stop accepting work and wind the pool down.

        ``cancel_running=True`` additionally sets every outstanding
        cancel event, so in-flight campaigns stop at their next wave
        boundary instead of running to completion (they land
        ``cancelled``, which is the honest record of a shutdown that
        did not wait). Worker threads are daemons — a join timing out
        never wedges process exit. Any job still ``running`` after the
        join window gets a ``job_interrupted`` marker flushed to its
        event stream, so a tailing client sees a terminal record
        instead of a stream that just stops.
        """
        if cancel_running:
            with self._lock:
                events = list(self._cancels.values())
            for event in events:
                event.set()
        self._stop_reaper.set()
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=timeout)
        if self._reaper is not None:
            self._reaper.join(timeout=timeout)
            self._reaper = None
        self._threads.clear()
        for meta in self.store.list_jobs():
            if meta.status == RUNNING:
                self.store.append_marker(
                    meta.id, "job_interrupted",
                    attempt=meta.attempt, reason="server-shutdown",
                )
        with self._lock:
            self._started = False

    def drain(self) -> None:
        """Flip the one-way drain switch: intake closes (submissions
        raise :class:`ServerDrainingError`), in-flight campaigns run
        to completion, and still-queued jobs are left ``queued`` on
        disk for the next server start to pick up — their checkpoint
        stores, if any, intact."""
        with self._lock:
            self._draining = True

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    # -- submission and cancellation -----------------------------------------

    def submit(self, spec: JobSpec) -> JobMeta:
        """Admit *spec* as a new queued job and enqueue it.

        Admission happens **before** anything touches disk: a refused
        submission leaves no trace. Raises
        :class:`ServerDrainingError` while draining and
        :class:`QueueFullError` past ``max_queue`` waiting jobs.
        """
        with self._lock:
            if self._draining:
                raise ServerDrainingError()
            depth = self._queue.qsize()
            if self.max_queue is not None and depth >= self.max_queue:
                # Advisory backoff: scale with how much work is ahead
                # of the caller, bounded so clients never sleep absurd
                # amounts on one header.
                retry_after = min(max(2.0 * depth / self.workers, 1.0), 60.0)
                raise QueueFullError(depth, self.max_queue, retry_after)
        meta = self.store.new_job(spec)
        self._enqueue(meta.id)
        return meta

    def submit_existing(self, job_id: str) -> None:
        """Re-enqueue a job already persisted as ``queued`` (recovery
        and reclaim paths — exempt from admission control: this work
        was already accepted once)."""
        self._enqueue(job_id)

    def _enqueue(self, job_id: str) -> None:
        with self._lock:
            self._cancels[job_id] = threading.Event()
        self._queue.put(job_id)

    def cancel(self, job_id: str) -> JobMeta:
        """Request cancellation; returns the job's resulting meta.

        Queued jobs land ``cancelled`` immediately (unless a worker
        wins the pickup race, in which case the set cancel event stops
        them within one wave). Running jobs get the cooperative
        signal and keep status ``running`` until the analyzer reaches
        its next checkpoint. Cancelling an already-cancelled job is
        idempotent; cancelling ``done``/``failed``/``quarantined``
        raises :class:`JobStateError` (there is nothing left to stop).
        """
        meta = self.store.meta(job_id)
        if meta.status == CANCELLED:
            return meta
        if meta.status in (DONE, FAILED, QUARANTINED):
            raise JobStateError(job_id, meta.status, CANCELLED)
        with self._lock:
            event = self._cancels.get(job_id)
        if event is not None:
            event.set()
        if meta.status == QUEUED:
            try:
                return self.store.transition(
                    job_id, CANCELLED, reason="cancelled while queued"
                )
            except JobStateError:
                # Lost the race: a worker moved it to running between
                # our read and the transition. The cancel event is
                # already set, so the campaign stops at its next wave.
                pass
        return self.store.meta(job_id)

    # -- introspection -------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Jobs waiting for a worker (approximate, by design)."""
        return self._queue.qsize()

    @property
    def busy_workers(self) -> int:
        with self._lock:
            return self._busy

    # -- the reaper ----------------------------------------------------------

    def _reaper_loop(self) -> None:
        while not self._stop_reaper.wait(self.reaper_interval_s):
            try:
                self.reap()
            except Exception:  # noqa: BLE001 — the reaper outlives
                # any single bad job directory; a scan that trips on
                # one must still run the next sweep.
                pass

    def reap(self) -> list[JobMeta]:
        """One reaper sweep: reclaim every running job whose lease
        deadline has passed. Public so tests (and operators in a
        REPL) can force a deterministic sweep instead of waiting out
        the interval. Returns the metas it transitioned."""
        now = time.time()
        reclaimed = []
        for meta in self.store.list_jobs():
            if meta.status != RUNNING:
                continue
            if meta.lease_deadline is None or meta.lease_deadline > now:
                continue
            result = self._reclaim(meta)
            if result is not None:
                reclaimed.append(result)
        return reclaimed

    def _reclaim(self, meta: JobMeta) -> "JobMeta | None":
        """Take one expired-lease job away from its (presumed-dead)
        worker: requeue with ``attempt+1``, or quarantine once the
        attempt budget is spent. Either way the old attempt's cancel
        event fires, so a worker that was merely *slow* rather than
        dead stops at its next wave — and its stale terminal
        transition is rejected by the store's owner check regardless.
        """
        with self._lock:
            event = self._cancels.get(meta.id)
        if event is not None:
            event.set()
        entry = {
            "attempt": meta.attempt,
            "outcome": "lease-expired",
            "owner": meta.lease_owner,
        }
        try:
            if meta.attempt >= self.max_attempts:
                result = self.store.transition(
                    meta.id, QUARANTINED,
                    reason=(
                        f"lease expired on attempt "
                        f"{meta.attempt}/{self.max_attempts}; "
                        f"attempt budget exhausted"
                    ),
                    history_event=entry,
                )
                self.store.append_marker(
                    meta.id, "job_quarantined",
                    attempt=meta.attempt, reason="lease-expired",
                )
            else:
                result = self.store.transition(
                    meta.id, QUEUED,
                    bump_attempt=True, history_event=entry,
                )
                self.store.append_marker(
                    meta.id, "job_requeued",
                    attempt=meta.attempt + 1, reason="lease-expired",
                )
                self._enqueue(meta.id)
        except JobStateError:
            # The worker finished (or a cancel landed) between our
            # scan and the reclaim — the job resolved itself; the
            # expired deadline is moot.
            return None
        return result

    # -- the work loop -------------------------------------------------------

    def _worker_loop(self) -> None:
        owner = f"{os.getpid()}-{threading.current_thread().name}"
        while True:
            item = self._queue.get()
            try:
                if item is _STOP:
                    return
                job_id = str(item)
                with self._lock:
                    if self._draining:
                        # Drain: leave the job ``queued`` on disk for
                        # the next server start; just drop the
                        # in-memory claim.
                        if job_id in self._cancels:
                            del self._cancels[job_id]
                        continue
                    self._busy += 1
                    event = self._cancels.get(job_id)
                event = event or threading.Event()
                try:
                    self._run_job(job_id, event, owner)
                finally:
                    with self._lock:
                        self._busy -= 1
                        # Identity check: a reclaim re-enqueues the
                        # same id with a *new* cancel event; a stale
                        # worker finishing late must not pop the
                        # successor attempt's event.
                        if self._cancels.get(job_id) is event:
                            del self._cancels[job_id]
            finally:
                self._queue.task_done()

    def _run_job(
        self, job_id: str, cancel_event: threading.Event, owner: str
    ) -> None:
        try:
            self.store.transition(
                job_id, RUNNING, owner=owner, lease_s=self.lease_s
            )
        except JobStateError:
            # Cancelled (or otherwise resolved) while queued — the
            # state machine already recorded the outcome; nothing to
            # run.
            return

        heartbeat = _Heartbeat(self.store, job_id, owner, self.lease_s)

        def cancelled() -> bool:
            return cancel_event.is_set() or heartbeat.lost

        def record(event: object) -> None:
            self.store.append_event(job_id, json.dumps(envelope(event)))

        try:
            spec = self.store.spec(job_id)
            config = spec.analyzer_config()
            if self.checkpoint_jobs and config.run_cache is None:
                # The job's private checkpoint store: every completed
                # probe is durable the moment it lands, so a resumed
                # attempt warms from here and re-executes only what
                # never finished. Injected by the runner, not written
                # into spec.json — the spec stays exactly what the
                # client asked for.
                config = dataclasses.replace(
                    config,
                    run_cache=str(self.store.checkpoint_path(job_id)),
                )
            with LoupeSession(config=config) as session:
                outcome = session.analyze(
                    spec.request(),
                    on_event=record,
                    cancel_check=cancelled,
                    progress_hook=heartbeat,
                )
                stats = session.last_engine_stats
            self._write_report(job_id, outcome)
            self._transition_safely(
                job_id, DONE, owner,
                engine_stats=_stats_doc(stats),
            )
        except AnalysisCancelledError as error:
            if heartbeat.lost:
                # Not a user cancel: the reaper took this job away
                # (it is already queued again or quarantined, under a
                # different claim). The orphaned attempt ends here,
                # recording nothing.
                return
            self._transition_safely(
                job_id, CANCELLED, owner,
                reason="cancelled while running",
                engine_stats=_stats_doc(error.stats),
            )
        except Exception as error:  # noqa: BLE001 — jobs must never
            # take a worker thread down with them; whatever the
            # campaign raised becomes the job's terminal record.
            landed = self._transition_safely(
                job_id, FAILED, owner,
                reason=f"{type(error).__name__}: {error}",
            )
            if landed is not None:
                # Terminal marker for tailing clients: the analyzer
                # died mid-stream and never emitted one itself.
                self.store.append_marker(
                    job_id, "job_failed",
                    reason=f"{type(error).__name__}: {error}",
                )

    def _transition_safely(
        self, job_id: str, status: str, owner: str, **kwargs: object
    ) -> "JobMeta | None":
        """Commit a worker's outcome — unless the worker's claim died
        meanwhile (lease reclaimed, job requeued), in which case the
        store refuses and the stale outcome is dropped on the floor,
        which is exactly where it belongs."""
        try:
            return self.store.transition(
                job_id, status, owner=owner, **kwargs
            )
        except JobStateError:
            return None

    def _write_report(self, job_id: str, outcome: object) -> None:
        path = self.store.report_path(job_id)
        temp = path.with_suffix(".json.tmp")
        temp.write_text(encode_report(outcome))
        os.replace(temp, path)


def _stats_doc(stats: object) -> "dict | None":
    """Engine stats as a plain document for ``meta.json`` (``None``
    stays ``None`` — e.g. a job cancelled before its first probe)."""
    if stats is None:
        return None
    return dataclasses.asdict(stats)
