"""The campaign server's shared run-cache surface.

A worker fleet wants one persistent run cache, not N private ones —
that is what makes a *warm* distributed campaign cheap. The server
owns the store (the same ``--run-cache`` file its own jobs inherit)
and exposes it over HTTP (``GET/PUT /cache/<key>``, ``POST
/cache/lookup``); :class:`CacheService` is the in-process half of
that surface: serialized store access plus **cross-process
single-flight** — the fleet-wide form of the per-process claim
protocol :class:`repro.core.cachestore.singleflight.SingleFlightStore`
implements for threads.

The claim protocol over HTTP: a client that misses may ask for the
key's *claim* (``?claim=1``). The first claimant is told "miss, the
claim is yours — go execute"; later claimants block (bounded by
``wait_s`` and the claim's lease) until the holder publishes via
``PUT``, then read the fresh hit. A holder that dies simply lets its
lease run out, after which the next claimant inherits. Each missed
key therefore executes once per claim window across the whole fleet,
not once per worker.

:class:`FleetTracker` is the observability side: workers announce
themselves with periodic ``POST /fleet/heartbeat`` documents, each
carrying its own TTL; the tracker ages them out so ``GET /stats``
reports live gauges (connected workers, chunks in flight) without a
deregistration protocol — a SIGKILL'd worker just stops heartbeating.
"""

from __future__ import annotations

import threading
import time

from repro.core.cachestore.base import StoreKey
from repro.core.runner import RunResult

#: Default claim lease: how long the fleet waits on a claim-holder
#: before presuming it dead and handing the claim to the next waiter.
DEFAULT_LEASE_S = 30.0

#: Cap on any single fetch wait; clients re-poll past this. Keeps a
#: handler thread from being parked indefinitely by one slow holder.
MAX_WAIT_S = 30.0


class CacheService:
    """Serialized, claim-coordinated access to the server's run store.

    Handlers call :meth:`fetch` / :meth:`publish` / :meth:`lookup`;
    everything is internally locked because the HTTP server is
    threading. Counters (``hits``, ``misses``, ``coalesced``,
    ``claims_granted``) feed the ``cache`` block of ``GET /stats``.
    """

    def __init__(self, store, *, lease_s: float = DEFAULT_LEASE_S) -> None:
        if lease_s <= 0:
            raise ValueError("lease_s must be positive")
        self.store = store
        self.lease_s = lease_s
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        #: key -> monotonic deadline of the outstanding claim.
        self._claims: "dict[StoreKey, float]" = {}
        self.hits = 0
        self.misses = 0
        self.coalesced = 0
        self.claims_granted = 0

    # -- the claim-coordinated read ------------------------------------------

    def fetch(
        self,
        key: StoreKey,
        *,
        claim: bool = False,
        wait_s: float = 0.0,
    ) -> "tuple[RunResult | None, bool]":
        """Read one key, optionally taking part in the claim protocol.

        Returns ``(result, claimed)``. ``result`` is the hit or
        ``None``; ``claimed`` is True when this caller was granted the
        key's claim and is expected to execute the run and ``publish``.
        With ``claim=False`` this is a plain read (claims ignored).
        """
        wait_s = min(max(wait_s, 0.0), MAX_WAIT_S)
        waited = False
        with self._cond:
            while True:
                result = self.store.get(key)
                if result is not None:
                    self.hits += 1
                    if waited:
                        self.coalesced += 1
                    return result, False
                if not claim:
                    self.misses += 1
                    return None, False
                now = time.monotonic()
                deadline = self._claims.get(key)
                if deadline is None or now >= deadline:
                    # Ours — an expired claim transfers to us; its
                    # holder is presumed dead.
                    self._claims[key] = now + self.lease_s
                    self.misses += 1
                    self.claims_granted += 1
                    return None, True
                remaining = min(deadline, now + wait_s) - now
                if remaining <= 0:
                    # The caller's wait budget is spent; report a plain
                    # miss *without* the claim so it can re-poll (or
                    # just execute redundantly — correctness is safe,
                    # only the de-dup is lost).
                    self.misses += 1
                    return None, False
                self._cond.wait(min(remaining, 0.5))
                waited = True

    def publish(
        self,
        key: StoreKey,
        result: RunResult,
        *,
        policy: "dict | None" = None,
    ) -> None:
        """Store one run and release its claim, waking the waiters."""
        with self._cond:
            self.store.put(key, result, policy=policy)
            self._claims.pop(key, None)
            self._cond.notify_all()

    def lookup(self, keys: "list[StoreKey]") -> "dict[StoreKey, RunResult]":
        """Batched plain read (no claims): the warm-path prefetch."""
        found: "dict[StoreKey, RunResult]" = {}
        with self._cond:
            for key in keys:
                result = self.store.get(key)
                if result is not None:
                    self.hits += 1
                    found[key] = result
                else:
                    self.misses += 1
        return found

    # -- observability -------------------------------------------------------

    def counters(self) -> dict:
        with self._lock:
            now = time.monotonic()
            return {
                "hits": self.hits,
                "misses": self.misses,
                "coalesced": self.coalesced,
                "claims_granted": self.claims_granted,
                "claims_open": sum(
                    1 for deadline in self._claims.values() if deadline > now
                ),
            }

    def store_stats(self) -> dict:
        with self._lock:
            return self.store.stats().to_dict()

    def close(self) -> None:
        with self._cond:
            self._claims.clear()
            self._cond.notify_all()
            self.store.close()


class FleetTracker:
    """Live worker gauges, fed by ``POST /fleet/heartbeat``.

    Each heartbeat document carries ``worker_id``, the worker's
    current ``chunks_in_flight``, and a ``ttl_s`` after which this
    entry goes stale (workers send ``heartbeat_s * 5``). Stale entries
    are pruned lazily on read — a killed worker disappears from the
    gauges within one TTL without any deregistration traffic.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: worker_id -> (monotonic deadline, chunks_in_flight, doc)
        self._workers: "dict[str, tuple[float, int, dict]]" = {}

    def heartbeat(self, document: object) -> dict:
        if not isinstance(document, dict):
            raise ValueError("heartbeat must be a JSON object")
        worker_id = document.get("worker_id")
        if not isinstance(worker_id, str) or not worker_id:
            raise ValueError("heartbeat needs a non-empty worker_id")
        try:
            ttl_s = float(document.get("ttl_s", 10.0))
            chunks = int(document.get("chunks_in_flight", 0))
        except (TypeError, ValueError):
            raise ValueError("heartbeat ttl_s/chunks_in_flight must be numbers")
        if ttl_s <= 0:
            raise ValueError("heartbeat ttl_s must be positive")
        with self._lock:
            self._workers[worker_id] = (
                time.monotonic() + ttl_s,
                max(chunks, 0),
                dict(document),
            )
        return {"ok": True, "worker_id": worker_id}

    def _prune_locked(self, now: float) -> None:
        stale = [
            worker_id
            for worker_id, (deadline, _chunks, _doc) in self._workers.items()
            if now >= deadline
        ]
        for worker_id in stale:
            del self._workers[worker_id]

    def gauges(self) -> dict:
        with self._lock:
            self._prune_locked(time.monotonic())
            return {
                "workers": len(self._workers),
                "chunks_in_flight": sum(
                    chunks for _deadline, chunks, _doc in self._workers.values()
                ),
            }
