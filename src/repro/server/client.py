"""A stdlib HTTP client for the campaign server.

:class:`ServiceClient` is the one place the wire protocol is spoken
from the client side — the CLI's ``submit``/``jobs``/``tail``/
``cancel`` subcommands, the test suite, and the CI smoke job all go
through it, so a protocol change breaks loudly in exactly one module.

Everything rides :mod:`urllib.request` (the no-new-deps rule applies
to clients too). Server-reported errors surface as
:class:`ServiceError` carrying the HTTP status and the server's
``{"error": ...}`` message; transport failures (connection refused,
timeouts) propagate as the usual :class:`urllib.error.URLError`.

Tailing is a small protocol on top of ``GET /jobs/<id>/events``:
:meth:`tail` repeatedly long-polls with the returned
``X-Loupe-Next-Since`` cursor, yielding raw event lines as they land,
and stops once the stream is drained *and* the job's status
(``X-Loupe-Job-Status``) is terminal. The yielded lines are the
job's ``events.jsonl`` bytes, envelope and all — callers that want
the CLI's ``--events jsonl`` stream back verbatim pop the
``schema_version`` key and re-dump.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.parse
import urllib.request
from collections.abc import Iterator
from pathlib import Path

from repro.errors import LoupeError
from repro.server.jobstore import TERMINAL_STATES

#: Default long-poll hold per tail round trip, chosen under the
#: server's MAX_POLL_TIMEOUT_S cap.
DEFAULT_POLL_S = 20.0


class ServiceError(LoupeError):
    """The server answered with an error status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"server said {status}: {message}")
        self.status = status
        self.message = message


def discover_url(data_dir: "str | Path") -> str:
    """Read the server's address from its discovery file.

    ``loupe serve`` writes ``<data_dir>/server.json`` on start; every
    client subcommand falls back to this when no ``--url`` is given,
    so "same --data-dir" is all a shell script needs to share.
    """
    path = Path(data_dir) / "server.json"
    try:
        document = json.loads(path.read_text())
    except FileNotFoundError:
        raise LoupeError(
            f"no running server found: {path} does not exist "
            f"(start one with: loupe serve --data-dir {data_dir})"
        )
    url = document.get("url")
    if not isinstance(url, str) or not url:
        raise LoupeError(f"discovery file {path} has no server url")
    return url


class ServiceClient:
    """Talks to one campaign server."""

    def __init__(self, url: str, *, timeout: float = 10.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- the protocol, one method per endpoint -------------------------------

    def health(self) -> dict:
        return self._json("GET", "/healthz")

    def stats(self) -> dict:
        return self._json("GET", "/stats")

    def submit(self, spec: dict) -> dict:
        """Submit one campaign spec; returns the new job's meta."""
        return self._json("POST", "/jobs", body=spec)

    def jobs(self) -> list:
        return self._json("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._json("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self._json("POST", f"/jobs/{job_id}/cancel")

    def report(self, job_id: str) -> dict:
        return self._json("GET", f"/jobs/{job_id}/report")

    def report_bytes(self, job_id: str) -> bytes:
        """The raw ``report.json`` body — for byte-identity checks."""
        status, _headers, body = self._request(
            "GET", f"/jobs/{job_id}/report"
        )
        return body

    def events(
        self, job_id: str, *, since: int = 0, timeout: float = 0.0
    ) -> tuple[list[str], int, str]:
        """One events poll: ``(lines, next_since, job_status)``.

        ``timeout > 0`` long-polls: the server holds the reply up to
        that many seconds waiting for fresh lines.
        """
        query = urllib.parse.urlencode(
            {"since": since, "timeout": timeout}
        )
        status, headers, body = self._request(
            "GET",
            f"/jobs/{job_id}/events?{query}",
            read_timeout=self.timeout + timeout,
        )
        lines = body.decode("utf-8").splitlines(keepends=True)
        next_since = int(headers.get("X-Loupe-Next-Since", since))
        job_status = headers.get("X-Loupe-Job-Status", "")
        return lines, next_since, job_status

    # -- conveniences built on the protocol ----------------------------------

    def tail(
        self, job_id: str, *, since: int = 0, poll: float = DEFAULT_POLL_S
    ) -> "Iterator[str]":
        """Yield event lines as they land until the job is terminal.

        The final status is available afterwards via :attr:`last_status`
        (or just :meth:`job`). Terminal means the stream is complete:
        the job will never append again, so a drained read with a
        terminal status header ends the tail.
        """
        self.last_status = ""
        while True:
            lines, since, status = self.events(
                job_id, since=since, timeout=poll
            )
            yield from lines
            self.last_status = status
            if status in TERMINAL_STATES and not lines:
                return

    def wait(self, job_id: str, *, poll: float = DEFAULT_POLL_S) -> dict:
        """Block until the job is terminal; returns its final meta."""
        since = 0
        while True:
            _lines, since, status = self.events(
                job_id, since=since, timeout=poll
            )
            if status in TERMINAL_STATES:
                return self.job(job_id)

    # -- transport -----------------------------------------------------------

    def _json(self, method: str, path: str, *, body: "dict | None" = None):
        _status, _headers, raw = self._request(method, path, body=body)
        return json.loads(raw)

    def _request(
        self,
        method: str,
        path: str,
        *,
        body: "dict | None" = None,
        read_timeout: "float | None" = None,
    ) -> tuple[int, dict, bytes]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=read_timeout or self.timeout
            ) as response:
                return (
                    response.status,
                    dict(response.headers),
                    response.read(),
                )
        except urllib.error.HTTPError as error:
            raw = error.read()
            try:
                message = json.loads(raw).get("error", "")
            except (ValueError, AttributeError):
                message = raw.decode("utf-8", "replace").strip()
            raise ServiceError(error.code, message or error.reason)
