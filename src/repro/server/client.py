"""A stdlib HTTP client for the campaign server.

:class:`ServiceClient` is the one place the wire protocol is spoken
from the client side — the CLI's ``submit``/``jobs``/``tail``/
``cancel`` subcommands, the test suite, and the CI smoke job all go
through it, so a protocol change breaks loudly in exactly one module.

Everything rides :mod:`urllib.request` (the no-new-deps rule applies
to clients too). Server-reported errors surface as
:class:`ServiceError` carrying the HTTP status and the server's
``{"error": ...}`` message (plus ``retry_after_s`` when the server
sent a ``Retry-After`` header — admission control's 429s do).

Transport failures get one level of forgiveness, but only where it is
safe: **idempotent GETs** retry with bounded exponential backoff on
transient connection errors (refused, reset, timed out), so a
``loupe tail`` rides out a server restart mid-stream instead of dying
— the events cursor makes re-polling the same window harmless. POSTs
never retry (a resubmitted ``POST /jobs`` would be a duplicate job);
their transport errors propagate as the usual
:class:`urllib.error.URLError`. A GET that exhausts its retry budget
raises :class:`~repro.errors.ServiceUnavailableError` with the
attempt count and final error.

Tailing is a small protocol on top of ``GET /jobs/<id>/events``:
:meth:`tail` repeatedly long-polls with the returned
``X-Loupe-Next-Since`` cursor, yielding raw event lines as they land,
and stops once the stream is drained *and* the job's status
(``X-Loupe-Job-Status``) is terminal. The yielded lines are the
job's ``events.jsonl`` bytes, envelope and all — callers that want
the CLI's ``--events jsonl`` stream back verbatim pop the
``schema_version`` key and re-dump.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from collections.abc import Iterator
from pathlib import Path

from repro.errors import LoupeError, ServiceUnavailableError
from repro.server.jobstore import TERMINAL_STATES

#: Default long-poll hold per tail round trip, chosen under the
#: server's MAX_POLL_TIMEOUT_S cap.
DEFAULT_POLL_S = 20.0

#: Default transient-error retry budget for idempotent GETs (total
#: attempts = 1 + retries) and the base backoff, doubled per retry.
DEFAULT_RETRIES = 3
DEFAULT_RETRY_BACKOFF_S = 0.25

#: Backoff sleeps never exceed this, whatever the retry count.
_MAX_BACKOFF_S = 2.0


class ServiceError(LoupeError):
    """The server answered with an error status.

    ``retry_after_s`` carries the server's ``Retry-After`` header when
    one was sent (admission control's 429 replies do), ``None``
    otherwise — callers implementing polite resubmission read it
    instead of guessing.
    """

    def __init__(
        self,
        status: int,
        message: str,
        *,
        retry_after_s: "float | None" = None,
    ) -> None:
        super().__init__(f"server said {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after_s = retry_after_s


def discover_url(data_dir: "str | Path") -> str:
    """Read the server's address from its discovery file.

    ``loupe serve`` writes ``<data_dir>/server.json`` on start; every
    client subcommand falls back to this when no ``--url`` is given,
    so "same --data-dir" is all a shell script needs to share.
    """
    path = Path(data_dir) / "server.json"
    try:
        document = json.loads(path.read_text())
    except FileNotFoundError:
        raise LoupeError(
            f"no running server found: {path} does not exist "
            f"(start one with: loupe serve --data-dir {data_dir})"
        )
    url = document.get("url")
    if not isinstance(url, str) or not url:
        raise LoupeError(f"discovery file {path} has no server url")
    return url


class ServiceClient:
    """Talks to one campaign server.

    ``retries``/``retry_backoff_s`` bound the transient-error
    forgiveness on idempotent GETs (see the module docstring);
    ``retries=0`` restores fail-fast transport behavior everywhere.
    """

    def __init__(
        self,
        url: str,
        *,
        timeout: float = 10.0,
        retries: int = DEFAULT_RETRIES,
        retry_backoff_s: float = DEFAULT_RETRY_BACKOFF_S,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s

    # -- the protocol, one method per endpoint -------------------------------

    def health(self) -> dict:
        return self._json("GET", "/healthz")

    def stats(self) -> dict:
        return self._json("GET", "/stats")

    def submit(self, spec: dict) -> dict:
        """Submit one campaign spec; returns the new job's meta."""
        return self._json("POST", "/jobs", body=spec)

    def jobs(self, *, state: "str | None" = None) -> list:
        path = "/jobs"
        if state:
            path += "?" + urllib.parse.urlencode({"state": state})
        return self._json("GET", path)["jobs"]

    def drain(self) -> dict:
        """Close the server's intake; returns the shed plan."""
        return self._json("POST", "/admin/drain")

    def job(self, job_id: str) -> dict:
        return self._json("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self._json("POST", f"/jobs/{job_id}/cancel")

    def report(self, job_id: str) -> dict:
        return self._json("GET", f"/jobs/{job_id}/report")

    def report_bytes(self, job_id: str) -> bytes:
        """The raw ``report.json`` body — for byte-identity checks."""
        status, _headers, body = self._request(
            "GET", f"/jobs/{job_id}/report"
        )
        return body

    def events(
        self, job_id: str, *, since: int = 0, timeout: float = 0.0
    ) -> tuple[list[str], int, str]:
        """One events poll: ``(lines, next_since, job_status)``.

        ``timeout > 0`` long-polls: the server holds the reply up to
        that many seconds waiting for fresh lines.
        """
        query = urllib.parse.urlencode(
            {"since": since, "timeout": timeout}
        )
        status, headers, body = self._request(
            "GET",
            f"/jobs/{job_id}/events?{query}",
            read_timeout=self.timeout + timeout,
        )
        lines = body.decode("utf-8").splitlines(keepends=True)
        next_since = int(headers.get("X-Loupe-Next-Since", since))
        job_status = headers.get("X-Loupe-Job-Status", "")
        return lines, next_since, job_status

    # -- conveniences built on the protocol ----------------------------------

    def tail(
        self, job_id: str, *, since: int = 0, poll: float = DEFAULT_POLL_S
    ) -> "Iterator[str]":
        """Yield event lines as they land until the job is terminal.

        The final status is available afterwards via :attr:`last_status`
        (or just :meth:`job`). Terminal means the stream is complete:
        the job will never append again, so a drained read with a
        terminal status header ends the tail.
        """
        self.last_status = ""
        while True:
            lines, since, status = self.events(
                job_id, since=since, timeout=poll
            )
            yield from lines
            self.last_status = status
            if status in TERMINAL_STATES and not lines:
                return

    def wait(self, job_id: str, *, poll: float = DEFAULT_POLL_S) -> dict:
        """Block until the job is terminal; returns its final meta."""
        since = 0
        while True:
            _lines, since, status = self.events(
                job_id, since=since, timeout=poll
            )
            if status in TERMINAL_STATES:
                return self.job(job_id)

    # -- transport -----------------------------------------------------------

    def _json(self, method: str, path: str, *, body: "dict | None" = None):
        _status, _headers, raw = self._request(method, path, body=body)
        return json.loads(raw)

    def _request(
        self,
        method: str,
        path: str,
        *,
        body: "dict | None" = None,
        read_timeout: "float | None" = None,
    ) -> tuple[int, dict, bytes]:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        # Only idempotent reads get the transient-retry budget: a
        # retried GET re-reads; a retried POST would re-*do*.
        attempts = 1 + (self.retries if method == "GET" else 0)
        delay = self.retry_backoff_s
        last_error: "Exception | None" = None
        for attempt in range(attempts):
            request = urllib.request.Request(
                self.url + path, data=data, headers=headers, method=method
            )
            try:
                with urllib.request.urlopen(
                    request, timeout=read_timeout or self.timeout
                ) as response:
                    return (
                        response.status,
                        dict(response.headers),
                        response.read(),
                    )
            except urllib.error.HTTPError as error:
                # The server *answered* — not a transport failure, no
                # retry. Translate to ServiceError.
                raw = error.read()
                try:
                    message = json.loads(raw).get("error", "")
                except (ValueError, AttributeError):
                    message = raw.decode("utf-8", "replace").strip()
                raise ServiceError(
                    error.code,
                    message or error.reason,
                    retry_after_s=_retry_after(error.headers),
                )
            except (urllib.error.URLError, ConnectionError, TimeoutError) as error:
                last_error = error
                if attempt + 1 < attempts:
                    time.sleep(min(delay, _MAX_BACKOFF_S))
                    delay *= 2
        assert last_error is not None
        if method != "GET" or self.retries == 0:
            # POSTs and retries=0 clients keep raw fail-fast transport
            # errors; only a GET that actually burned a retry budget
            # is summarized as ServiceUnavailableError.
            raise last_error
        raise ServiceUnavailableError(self.url, attempts, last_error)


def _retry_after(headers: object) -> "float | None":
    """The ``Retry-After`` header as seconds, if present and sane
    (only the delta-seconds form; this server never sends dates)."""
    try:
        value = headers.get("Retry-After")  # type: ignore[union-attr]
    except AttributeError:
        return None
    if value is None:
        return None
    try:
        return max(float(value), 0.0)
    except ValueError:
        return None
