"""Pseudo-file (special file) detection and classification.

Part of the Linux API is exposed through files under ``/proc``, ``/dev``
and ``/sys`` rather than syscalls. Loupe detects their usage "by pattern
matching the arguments of certain system calls (e.g. open, openat)
against paths" (Section 3.3). This module owns that pattern matching for
both backends and classifies paths so reports can group them.
"""

from __future__ import annotations

import dataclasses

#: Filesystem prefixes that expose kernel APIs rather than regular data.
PSEUDO_PREFIXES: tuple[str, ...] = ("/proc", "/dev", "/sys")

#: Syscalls whose path arguments are inspected (the "open family" plus
#: the stat/access family, which also reveals pseudo-file reliance).
OPEN_FAMILY: frozenset[str] = frozenset(
    "open openat openat2 creat stat lstat access faccessat faccessat2 "
    "statx readlink readlinkat".split()
)

#: Well-known pseudo-files the corpus applications use, with the API
#: they stand in for (used in reports and the corpus models).
KNOWN_PSEUDO_FILES: dict[str, str] = {
    "/dev/null": "bit bucket",
    "/dev/zero": "zero pages",
    "/dev/random": "blocking entropy",
    "/dev/urandom": "entropy",
    "/dev/tty": "controlling terminal",
    "/dev/shm": "POSIX shared memory",
    "/proc/self/exe": "own binary path",
    "/proc/self/status": "process status",
    "/proc/self/maps": "address-space map",
    "/proc/self/fd": "descriptor table",
    "/proc/cpuinfo": "CPU enumeration",
    "/proc/meminfo": "memory statistics",
    "/proc/stat": "kernel statistics",
    "/proc/sys/vm/overcommit_memory": "overcommit policy",
    "/proc/sys/net/core/somaxconn": "listen backlog limit",
    "/proc/sys/kernel/pid_max": "pid ceiling",
    "/proc/mounts": "mount table",
    "/sys/devices/system/cpu/online": "online CPUs",
    "/sys/kernel/mm/transparent_hugepage/enabled": "THP switch",
}


def is_pseudo_path(path: str) -> bool:
    """True when *path* lives in a kernel-API filesystem."""
    return any(
        path == prefix or path.startswith(prefix + "/")
        for prefix in PSEUDO_PREFIXES
    )


def classify(path: str) -> str:
    """The pseudo-filesystem a path belongs to ('' for regular paths)."""
    for prefix in PSEUDO_PREFIXES:
        if path == prefix or path.startswith(prefix + "/"):
            return prefix
    return ""


@dataclasses.dataclass(frozen=True)
class PseudoFileAccess:
    """One observed access to a special file."""

    path: str
    syscall: str
    count: int = 1

    def __post_init__(self) -> None:
        if not is_pseudo_path(self.path):
            raise ValueError(f"{self.path!r} is not a pseudo-file path")


def extract_accesses(
    path_arguments: "list[tuple[str, str]]",
) -> list[PseudoFileAccess]:
    """Filter raw (syscall, path) observations down to pseudo-file accesses.

    *path_arguments* comes from a backend: every decoded path argument
    of an open-family syscall, in invocation order.
    """
    counts: dict[tuple[str, str], int] = {}
    for syscall, path in path_arguments:
        if syscall in OPEN_FAMILY and is_pseudo_path(path):
            key = (path, syscall)
            counts[key] = counts.get(key, 0) + 1
    return [
        PseudoFileAccess(path=path, syscall=syscall, count=count)
        for (path, syscall), count in sorted(counts.items())
    ]
