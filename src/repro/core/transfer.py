"""Cross-application knowledge transfer (paper Section 6, future work).

The paper closes with: "Future research avenues include exploring
speeding up the analysis by transferring knowledge across
applications". This module implements that idea on top of the shared
results database: prior analyses vote on each syscall's likely
decision, and the analyzer can use confident priors to shortcut
probing — run a single confirmation replica instead of the full
replicated stub and fake probes, falling back to the complete probe
whenever the confirmation disagrees with the prediction.

The shortcut is *sound*: a prior is only ever used to reduce
replication of runs that still execute, never to skip observation
entirely, and any disagreement triggers the full conservative probe.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from collections.abc import Iterable

from repro.core.result import AnalysisResult


@dataclasses.dataclass(frozen=True)
class FeaturePrior:
    """Accumulated stub/fake experience for one feature."""

    feature: str
    observations: int
    stub_successes: int
    fake_successes: int

    @property
    def stub_rate(self) -> float:
        if self.observations == 0:
            return 0.0
        return self.stub_successes / self.observations

    @property
    def fake_rate(self) -> float:
        if self.observations == 0:
            return 0.0
        return self.fake_successes / self.observations


@dataclasses.dataclass(frozen=True)
class Prediction:
    """A confident guess about one feature's decision."""

    can_stub: bool
    can_fake: bool


class PriorKnowledge:
    """Per-feature decision statistics distilled from past analyses."""

    def __init__(
        self,
        priors: dict[str, FeaturePrior],
        *,
        min_observations: int = 5,
        confidence: float = 0.97,
    ) -> None:
        if not 0.5 < confidence <= 1.0:
            raise ValueError("confidence must be in (0.5, 1.0]")
        if min_observations < 1:
            raise ValueError("min_observations must be >= 1")
        self._priors = priors
        self.min_observations = min_observations
        self.confidence = confidence

    # -- construction -------------------------------------------------------

    @staticmethod
    def from_results(
        results: Iterable[AnalysisResult],
        *,
        min_observations: int = 5,
        confidence: float = 0.97,
    ) -> "PriorKnowledge":
        stub_counts: dict[str, int] = defaultdict(int)
        fake_counts: dict[str, int] = defaultdict(int)
        totals: dict[str, int] = defaultdict(int)
        for result in results:
            for feature, report in result.features.items():
                totals[feature] += 1
                if report.decision.can_stub:
                    stub_counts[feature] += 1
                if report.decision.can_fake:
                    fake_counts[feature] += 1
        priors = {
            feature: FeaturePrior(
                feature=feature,
                observations=count,
                stub_successes=stub_counts[feature],
                fake_successes=fake_counts[feature],
            )
            for feature, count in totals.items()
        }
        return PriorKnowledge(
            priors, min_observations=min_observations, confidence=confidence
        )

    # -- queries --------------------------------------------------------------

    def prior(self, feature: str) -> FeaturePrior | None:
        return self._priors.get(feature)

    def __len__(self) -> int:
        return len(self._priors)

    def predict(self, feature: str) -> Prediction | None:
        """A confident prediction, or None when experience is thin.

        A capability is predicted only when it held (or failed) in at
        least ``confidence`` of ``min_observations``+ prior analyses.
        Mixed-history features yield None — they must be fully probed.
        """
        prior = self._priors.get(feature)
        if prior is None or prior.observations < self.min_observations:
            return None
        stub: bool | None = None
        if prior.stub_rate >= self.confidence:
            stub = True
        elif prior.stub_rate <= 1.0 - self.confidence:
            stub = False
        fake: bool | None = None
        if prior.fake_rate >= self.confidence:
            fake = True
        elif prior.fake_rate <= 1.0 - self.confidence:
            fake = False
        if stub is None or fake is None:
            return None
        return Prediction(can_stub=stub, can_fake=fake)

    def confident_features(self) -> frozenset[str]:
        return frozenset(
            feature for feature in self._priors if self.predict(feature)
        )


@dataclasses.dataclass
class TransferStats:
    """Bookkeeping of how much work priors saved in one analysis."""

    features_total: int = 0
    features_fast_pathed: int = 0
    fallbacks: int = 0            # confirmations that contradicted the prior
    runs_saved: int = 0

    @property
    def fast_path_rate(self) -> float:
        if self.features_total == 0:
            return 0.0
        return self.features_fast_pathed / self.features_total
