"""Persistent run-cache storage: the engine's LRU as a service.

The in-memory LRU of :class:`~repro.core.engine.ProbeEngine` amortizes
run cost *within* one analysis; this package extends that amortization
*across* campaigns, processes, and — with the SQLite backend —
concurrent writers. It grew out of the single-file
:mod:`repro.core.runcache` JSONL store (which remains as a
compatibility shim) into a small subsystem:

* :mod:`~repro.core.cachestore.base` — the :class:`RunCacheBackend`
  protocol, the shared record codec, :class:`StoreStats` and
  :class:`CompactionResult`;
* :mod:`~repro.core.cachestore.jsonl` — the original append-only
  JSONL store, byte-compatible, now with ``compact()``;
* :mod:`~repro.core.cachestore.sqlite` — a WAL-mode SQLite store:
  multi-process safe, live read-through, upsert puts, LRU eviction
  via ``last_used``/``use_count`` under ``max_entries``;
* :mod:`~repro.core.cachestore.remote` — :class:`RemoteRunCache`, an
  HTTP client for the campaign server's ``/cache`` surface: one
  store shared by a whole worker fleet, with cross-process
  single-flight claims de-duplicating concurrent misses;
* :mod:`~repro.core.cachestore.singleflight` — the in-process form of
  that claim protocol, :class:`SingleFlightStore`, wrapping any local
  backend for ``analyze_many(jobs=N)`` thread fleets;
* :mod:`~repro.core.cachestore.factory` — :func:`open_store` (scheme
  and extension aware) and :func:`migrate_store` (jsonl → sqlite
  upgrade path);
* :mod:`~repro.core.cachestore.verify` — :func:`verify_store`
  re-executes (a seeded sample of) the records and diffs stored vs
  fresh results, auditing the determinism contract the whole cache
  rests on (``loupe cache verify``).

Correctness inherits the engine's caching contract: only runs of
backends declaring ``deterministic = True`` are ever stored or served,
so a persisted answer is byte-identical to re-executing the run. The
key's ``backend`` component is :func:`~repro.core.runner.backend_name`,
which for the simulation backends embeds the application name *and
version* (``sim:redis-7.0.11``) — two campaigns only share entries
when they analyze the very same build.
"""

from repro.core.cachestore.base import (
    CacheStoreError,
    CompactionResult,
    RunCacheBackend,
    StoreKey,
    StoreStats,
    decode_record,
    decode_record_full,
    decode_record_meta,
    encode_record,
)
from repro.core.cachestore.verify import (
    VerifyMismatch,
    VerifyReport,
    default_resolver,
    verify_store,
)
from repro.core.cachestore.factory import (
    SQLITE_SUFFIXES,
    migrate_store,
    open_store,
    parse_store_path,
    store_identity,
)
from repro.core.cachestore.jsonl import JsonlRunCache
from repro.core.cachestore.remote import RemoteRunCache
from repro.core.cachestore.singleflight import SingleFlightStore
from repro.core.cachestore.sqlite import SqliteRunCache

__all__ = [
    "CacheStoreError",
    "CompactionResult",
    "JsonlRunCache",
    "RemoteRunCache",
    "RunCacheBackend",
    "SQLITE_SUFFIXES",
    "SingleFlightStore",
    "SqliteRunCache",
    "StoreKey",
    "StoreStats",
    "decode_record",
    "decode_record_full",
    "decode_record_meta",
    "default_resolver",
    "encode_record",
    "migrate_store",
    "open_store",
    "parse_store_path",
    "store_identity",
    "verify_store",
    "VerifyMismatch",
    "VerifyReport",
]
