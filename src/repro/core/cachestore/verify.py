"""Run-cache verification: re-execute stored records and diff.

A persistent run cache is only as trustworthy as the determinism
contract behind it: the engine stores runs of backends declaring
``deterministic = True``, so re-executing any record must reproduce
the stored result bit for bit. ``loupe cache verify`` samples records
and *checks* that claim — catching corrupted stores, backends whose
determinism declaration lies, and records poisoned by a writer bug —
instead of letting a bad cache silently steer every future campaign.

Re-execution needs two things the cache key alone cannot provide:

* the **policy** — the key's fingerprint is a lossy digest, so the
  store records the full policy document next to each result
  (:func:`repro.core.cachestore.base.encode_record`); records written
  before that (or by writers that chose not to) are *unverifiable*
  and reported as such, never as mismatches;
* the **backend and workload** — resolved from the key's names by a
  pluggable *resolver*; the default one rebuilds the hand-built
  simulation corpus (``sim:<app>-<version>``), which is exactly the
  set of deterministic backends this repository ships.

Determinism of the check itself: records are visited in sorted-key
order, and sampling is seeded (``--sample N --seed S`` picks the same
N records every time).
"""

from __future__ import annotations

import dataclasses
import random
from collections.abc import Callable

from repro.core.cachestore.base import RunCacheBackend, StoreKey
from repro.core.policy import InterpositionPolicy
from repro.core.runner import ExecutionBackend, RunResult
from repro.core.workload import Workload

#: Resolves a record's ``(backend name, workload name)`` to a live
#: execution pair, or ``None`` when this resolver cannot rebuild it.
Resolver = Callable[
    [str, str], "tuple[ExecutionBackend, Workload] | None"
]

#: Result fields excluded from the comparison: wall-clock duration is
#: measurement, not outcome — it legitimately differs across runs of
#: even a perfectly deterministic backend.
_VOLATILE_FIELDS = ("duration_s",)


@dataclasses.dataclass(frozen=True)
class VerifyMismatch:
    """One record whose re-execution disagreed with the store."""

    key: StoreKey
    fields: tuple[str, ...]
    detail: str = ""

    def describe(self) -> str:
        backend, workload, fingerprint, replica = self.key
        where = (
            f"{backend} / {workload} / "
            f"{fingerprint or 'passthrough'} / replica {replica}"
        )
        what = ", ".join(self.fields) if self.fields else "record"
        line = f"{where}: {what} differ(s)"
        if self.detail:
            line += f" ({self.detail})"
        return line

    def to_dict(self) -> dict:
        backend, workload, fingerprint, replica = self.key
        return {
            "backend": backend,
            "workload": workload,
            "fingerprint": fingerprint,
            "replica": replica,
            "fields": list(self.fields),
            "detail": self.detail,
        }


@dataclasses.dataclass(frozen=True)
class VerifyReport:
    """Outcome of one verification pass over a store."""

    total: int          #: live records in the store
    checked: int        #: records actually re-executed
    matched: int        #: re-executions identical to the stored result
    mismatches: tuple[VerifyMismatch, ...]
    #: Records that could not be re-executed: no stored policy
    #: document, or a backend/workload the resolver cannot rebuild.
    unverifiable: int = 0

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def describe(self) -> str:
        line = (
            f"verified {self.checked}/{self.total} record(s): "
            f"{self.matched} matched, {len(self.mismatches)} mismatched"
        )
        if self.unverifiable:
            line += f", {self.unverifiable} unverifiable"
        return line

    def to_dict(self) -> dict:
        """Machine-readable form (``loupe cache verify --json``)."""
        return {
            "ok": self.ok,
            "total": self.total,
            "checked": self.checked,
            "matched": self.matched,
            "unverifiable": self.unverifiable,
            "mismatches": [m.to_dict() for m in self.mismatches],
        }


def _comparable(result: RunResult) -> dict:
    data = result.to_dict()
    for field in _VOLATILE_FIELDS:
        data.pop(field, None)
    return data


def _diff_fields(stored: dict, fresh: dict) -> tuple[str, ...]:
    return tuple(sorted(
        field
        for field in set(stored) | set(fresh)
        if stored.get(field) != fresh.get(field)
    ))


def default_resolver() -> Resolver:
    """A resolver over the hand-built simulation corpus.

    Builds every corpus application once (lazily, on first miss) and
    matches records by the backend identity its :class:`SimBackend`
    reports (``sim:<app>-<version>``) and the workload's name. Built
    apps are memoized for the resolver's lifetime, so verifying many
    records of one app pays the build once.
    """
    # Imported lazily: cachestore is core infrastructure and must not
    # pull the simulation corpus (a higher layer) at import time.
    from repro.appsim.corpus import HANDBUILT, build
    from repro.core.runner import backend_name

    backends: "dict[str, tuple[ExecutionBackend, dict[str, Workload]]]" = {}
    exhausted = set()

    def resolve(
        backend: str, workload: str
    ) -> "tuple[ExecutionBackend, Workload] | None":
        if backend not in backends and backend not in exhausted:
            for name in sorted(HANDBUILT):
                app = build(name)
                candidate = app.backend()
                identity = backend_name(candidate)
                if identity not in backends:
                    backends[identity] = (
                        candidate,
                        {w.name: w for w in app.workloads.values()},
                    )
                if identity == backend:
                    break
            else:
                exhausted.add(backend)
        entry = backends.get(backend)
        if entry is None:
            return None
        execution, workloads = entry
        found = workloads.get(workload)
        if found is None:
            return None
        return execution, found

    return resolve


def verify_store(
    store: RunCacheBackend,
    *,
    sample: "int | None" = None,
    seed: int = 0,
    resolver: "Resolver | None" = None,
) -> VerifyReport:
    """Re-execute (a sample of) *store*'s records and diff the results.

    ``sample=None`` checks every record; ``sample=N`` re-executes a
    seeded pseudo-random subset of N (deterministic for a given
    ``seed`` and store content). Records without a stored policy
    document, or whose backend/workload the *resolver* cannot
    rebuild, count as *unverifiable* — they are skipped, not failed:
    absence of evidence is not a mismatch.
    """
    if sample is not None and sample < 1:
        raise ValueError("sample must be >= 1")
    records = sorted(store.records(), key=lambda record: record[0])
    total = len(records)
    if sample is not None and sample < total:
        picks = random.Random(seed).sample(range(total), sample)
        records = [records[index] for index in sorted(picks)]

    resolve = resolver if resolver is not None else default_resolver()
    checked = 0
    matched = 0
    unverifiable = 0
    mismatches: list[VerifyMismatch] = []
    for key, stored, policy_doc in records:
        backend_id, workload_name, fingerprint, replica = key
        if policy_doc is None:
            unverifiable += 1
            continue
        resolved = resolve(backend_id, workload_name)
        if resolved is None:
            unverifiable += 1
            continue
        backend, workload = resolved
        try:
            policy = InterpositionPolicy.from_dict(policy_doc)
        except Exception as error:
            mismatches.append(VerifyMismatch(
                key=key, fields=("policy",),
                detail=f"stored policy document is invalid: {error}",
            ))
            checked += 1
            continue
        if policy.fingerprint() != fingerprint:
            # The stored document does not even describe the key it is
            # filed under — the record was torn or tampered with.
            mismatches.append(VerifyMismatch(
                key=key, fields=("policy",),
                detail=f"stored policy fingerprints as "
                       f"{policy.fingerprint()!r}, key says "
                       f"{fingerprint!r}",
            ))
            checked += 1
            continue
        fresh = backend.run(workload, policy, replica=replica)
        checked += 1
        stored_doc = _comparable(stored)
        fresh_doc = _comparable(fresh)
        if stored_doc == fresh_doc:
            matched += 1
        else:
            mismatches.append(VerifyMismatch(
                key=key, fields=_diff_fields(stored_doc, fresh_doc),
                detail="stored result does not reproduce",
            ))
    return VerifyReport(
        total=total,
        checked=checked,
        matched=matched,
        mismatches=tuple(mismatches),
        unverifiable=unverifiable,
    )
