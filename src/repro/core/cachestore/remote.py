"""The HTTP run-cache backend: a store served by the campaign server.

``open_store("http://host:port")`` yields a :class:`RemoteRunCache`
speaking the server's cache surface (:mod:`repro.server.cache` is the
other side of this wire):

=========  =======================  ===================================
Method     Path                     Meaning
=========  =======================  ===================================
``GET``    ``/cache/<keyid>``       one record; ``?claim=1&wait=S``
                                    joins the single-flight protocol
``PUT``    ``/cache/<keyid>``       publish one record (releases claim)
``POST``   ``/cache/lookup``        batched read: ``{"keys": [...]}``
``GET``    ``/cache/stats``         the store's stats + counters
=========  =======================  ===================================

The *keyid* is the store key — the engine's ``(backend, workload,
fingerprint, replica)`` quad — as a URL-safe base64 encoding of its
JSON list form, so arbitrary backend/workload names survive the URL
path. Record bodies are the very same JSON objects the local
backends write as lines (:func:`~repro.core.cachestore.base.
encode_record`): the wire format *is* the file format.

What a remote ``get`` miss means is richer than a local one: with
``claim=True`` the server may answer "the claim is yours" — this
caller should execute the run and ``put`` the result — or hold the
reply while another fleet member executes, then answer with the
published hit. That is the fleet-wide single-flight that keeps a
warm campaign from stampeding one cold key across N workers.

Ops verbs that need the records on disk (``records``, ``items``,
``compact``, ``gc``) are refused with a pointer at the server's own
store file — run ``loupe cache ...`` against the path the server was
started with, not through the wire.
"""

from __future__ import annotations

import base64
import json
import urllib.error
import urllib.parse
import urllib.request
from pathlib import Path

from repro.core.cachestore.base import (
    CacheStoreError,
    StoreKey,
    StoreStats,
    decode_record_meta,
    encode_record,
)
from repro.core.runner import RunResult

#: Per-request transport timeout. Claim waits ride on top (the server
#: holds the reply while a claim-holder executes), so the effective
#: GET timeout is ``timeout + wait``.
DEFAULT_TIMEOUT_S = 10.0

#: How long a claiming ``get`` lets the server hold the reply waiting
#: for another fleet member's publish before settling for the miss.
DEFAULT_CLAIM_WAIT_S = 20.0


def encode_key_id(key: StoreKey) -> str:
    """A store key as its URL-path-safe token."""
    raw = json.dumps(list(key), sort_keys=True).encode("utf-8")
    return base64.urlsafe_b64encode(raw).decode("ascii").rstrip("=")


def decode_key_id(key_id: str) -> StoreKey:
    """Invert :func:`encode_key_id`; raises ``ValueError`` on garbage."""
    try:
        padded = key_id + "=" * (-len(key_id) % 4)
        doc = json.loads(base64.urlsafe_b64decode(padded.encode("ascii")))
        backend, workload, fingerprint, replica = doc
        if not all(
            isinstance(part, str) for part in (backend, workload, fingerprint)
        ):
            raise TypeError("key parts must be strings")
        return (backend, workload, fingerprint, int(replica))
    except (ValueError, TypeError, KeyError) as error:
        raise ValueError(f"malformed cache key id {key_id!r}: {error}")


class RemoteRunCache:
    """A run cache living behind a campaign server's cache surface.

    Parameters
    ----------
    url:
        The server's base URL (``http://host:port``). The constructor
        pings ``GET /cache/stats`` so a dead or cache-less server is
        reported at open time with an actionable message, not on the
        first mid-campaign miss.
    claim:
        Join the fleet-wide single-flight protocol on misses (the
        default). A granted claim obliges this store's user to ``put``
        the executed result — exactly what the probe engine's
        miss-then-record path does anyway. ``claim=False`` makes every
        get a plain read.

    The store is thread-safe by construction: every operation is one
    HTTP request and the instance keeps no mutable state. ``claimed``
    misses that never publish simply let their server-side lease run
    out — liveness never depends on this process's good behavior.
    """

    kind = "http"

    def __init__(
        self,
        url: str,
        *,
        timeout: float = DEFAULT_TIMEOUT_S,
        claim: bool = True,
        claim_wait_s: float = DEFAULT_CLAIM_WAIT_S,
    ) -> None:
        if claim_wait_s < 0:
            raise ValueError("claim_wait_s must be >= 0")
        self.url = url.rstrip("/")
        self.path = Path(urllib.parse.urlsplit(self.url).netloc or self.url)
        self.timeout = timeout
        self.claim = claim
        self.claim_wait_s = claim_wait_s
        self._closed = False
        self._ping()

    # -- transport -----------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        *,
        body: "dict | None" = None,
        read_timeout: "float | None" = None,
    ) -> "tuple[int, dict | None]":
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body, sort_keys=True).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=read_timeout or self.timeout
            ) as response:
                raw = response.read()
                return response.status, (json.loads(raw) if raw else None)
        except urllib.error.HTTPError as error:
            raw = error.read()
            try:
                document = json.loads(raw)
            except ValueError:
                document = {"error": raw.decode("utf-8", "replace").strip()}
            if error.code == 404 and isinstance(document, dict) \
                    and document.get("miss"):
                # A cache miss, not a routing error — callers branch on
                # the body.
                return error.code, document
            message = document.get("error") if isinstance(document, dict) \
                else None
            raise CacheStoreError(
                f"cache server at {self.url} said {error.code}: "
                f"{message or error.reason}"
            )
        except (urllib.error.URLError, ConnectionError, TimeoutError) as error:
            reason = getattr(error, "reason", error)
            raise CacheStoreError(
                f"cannot reach the cache server at {self.url} ({reason}); "
                f"is it running? start one with: "
                f"loupe serve --run-cache PATH"
            )

    def _ping(self) -> None:
        self._request("GET", "/cache/stats")

    # -- the store API -------------------------------------------------------

    def get(self, key: StoreKey) -> "RunResult | None":
        query = ""
        read_timeout = None
        if self.claim:
            query = "?" + urllib.parse.urlencode(
                {"claim": 1, "wait": self.claim_wait_s}
            )
            read_timeout = self.timeout + self.claim_wait_s
        status, document = self._request(
            "GET",
            f"/cache/{encode_key_id(key)}{query}",
            read_timeout=read_timeout,
        )
        if status == 404:
            return None
        _key, result, _policy, _created = decode_record_meta(
            json.dumps(document)
        )
        return result

    def put(
        self,
        key: StoreKey,
        result: RunResult,
        *,
        policy: "dict | None" = None,
    ) -> None:
        record = json.loads(encode_record(key, result, policy))
        self._request("PUT", f"/cache/{encode_key_id(key)}", body=record)

    def get_many(
        self, keys: "list[StoreKey]"
    ) -> "dict[StoreKey, RunResult]":
        """Batched plain read (``POST /cache/lookup``) — no claims, so
        warm-path prefetchers must not use it to stand in for the
        claiming ``get`` on keys they intend to execute."""
        if not keys:
            return {}
        _status, document = self._request(
            "POST",
            "/cache/lookup",
            body={"keys": [encode_key_id(key) for key in keys]},
        )
        hits = (document or {}).get("hits", {})
        found: "dict[StoreKey, RunResult]" = {}
        for key_id, record in hits.items():
            key, result, _policy, _created = decode_record_meta(
                json.dumps(record)
            )
            found[key] = result
        return found

    def __len__(self) -> int:
        return int(self.stats().entries)

    def stats(self) -> StoreStats:
        _status, document = self._request("GET", "/cache/stats")
        store = (document or {}).get("store") or {}
        known = {
            field: store[field]
            for field in StoreStats.__dataclass_fields__
            if field in store
        }
        return StoreStats(**known)

    # -- ops verbs need the file, not the wire -------------------------------

    def _refuse_ops(self, verb: str) -> CacheStoreError:
        return CacheStoreError(
            f"cannot {verb} a remote cache over HTTP; run `loupe cache "
            f"{verb}` against the server's own store file (the path its "
            f"`loupe serve --run-cache` was started with)"
        )

    def items(self):
        raise self._refuse_ops("migrate")

    def records(self):
        raise self._refuse_ops("verify")

    def compact(self):
        raise self._refuse_ops("compact")

    def gc(self, max_entries=None, *, ttl_s=None):
        raise self._refuse_ops("gc")

    def expired(self, ttl_s=None):
        raise self._refuse_ops("stats --ttl")

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "RemoteRunCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
