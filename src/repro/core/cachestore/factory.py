"""Choosing and migrating run-cache backends by path.

:func:`open_store` is the single way the rest of the system — the
analyzer (``AnalyzerConfig.run_cache``), the session
(``LoupeSession(cache_path=...)``), and the CLI (``--run-cache``,
``loupe cache``) — turns a user-supplied path into a concrete store.
The choice is scheme- and extension-aware:

=====================================  =========
path                                   backend
=====================================  =========
``http://`` / ``https://`` URL         remote (a campaign server's
                                       ``/cache`` surface)
``sqlite:anything``                    sqlite
``jsonl:anything``                     jsonl
``*.sqlite`` / ``*.sqlite3`` / ``*.db``  sqlite
existing file with the SQLite magic    sqlite
anything else                          jsonl
=====================================  =========

:func:`migrate_store` copies every live record between backends —
the upgrade path from an organically-grown JSONL file to a bounded
concurrent SQLite cache, preserving every key so a warmed campaign
stays warm across the migration.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.core.cachestore.base import CacheStoreError, RunCacheBackend
from repro.core.cachestore.jsonl import JsonlRunCache
from repro.core.cachestore.sqlite import SqliteRunCache

#: File extensions that select the SQLite backend without a scheme.
SQLITE_SUFFIXES = frozenset({".sqlite", ".sqlite3", ".db"})

#: The first 16 bytes of every SQLite database file.
_SQLITE_MAGIC = b"SQLite format 3\x00"


def parse_store_path(
    path: "str | os.PathLike[str]",
) -> tuple[str, Path]:
    """Resolve *path* to ``(backend kind, concrete file path)``.

    An explicit ``sqlite:``/``jsonl:`` scheme always wins; otherwise
    the extension decides, with a magic-bytes sniff rescuing existing
    SQLite files behind unconventional names (say, a migrated cache
    kept under its old name).
    """
    text = os.fspath(path)
    if text.startswith(("http://", "https://")):
        return "http", Path(text)
    if text.startswith("sqlite:"):
        return "sqlite", Path(text[len("sqlite:"):])
    if text.startswith("jsonl:"):
        return "jsonl", Path(text[len("jsonl:"):])
    concrete = Path(text)
    if concrete.suffix.lower() in SQLITE_SUFFIXES:
        return "sqlite", concrete
    try:
        with concrete.open("rb") as handle:
            if handle.read(len(_SQLITE_MAGIC)) == _SQLITE_MAGIC:
                return "sqlite", concrete
    except OSError:
        pass
    return "jsonl", concrete


def store_identity(path: "str | os.PathLike[str]") -> tuple[str, str]:
    """A canonical ``(kind, absolute path)`` identity for *path*.

    Two spellings of one file — relative vs absolute, with or without
    a scheme prefix — share an identity, so store-sharing caches
    (the session's) never open two handles on one file.
    """
    kind, concrete = parse_store_path(path)
    if kind == "http":
        # URLs are their own identity; resolving them as filesystem
        # paths would mangle the double slash.
        return kind, os.fspath(path).rstrip("/")
    return kind, str(concrete.expanduser().resolve())


def open_store(
    path: "str | os.PathLike[str]",
    *,
    max_entries: "int | None" = None,
    ttl_s: "float | None" = None,
) -> RunCacheBackend:
    """Open the run-cache store *path* names (see the module table).

    *max_entries* bounds the SQLite backend with LRU eviction; the
    JSONL backend tracks no usage, so combining the two is refused
    rather than silently unbounded. *ttl_s* makes records of either
    local backend read as misses once older than that many seconds.
    An ``http(s)://`` URL opens the remote backend — a campaign
    server's ``/cache`` surface — whose eviction posture lives with
    the server's own store, so both knobs are refused there.
    """
    kind, concrete = parse_store_path(path)
    if kind == "http":
        url = os.fspath(path)
        if max_entries is not None or ttl_s is not None:
            raise CacheStoreError(
                "run_cache_max_entries/run_cache_ttl_s apply to the "
                "server's own store, not the remote client; configure "
                "them where `loupe serve --run-cache` runs"
            )
        from repro.core.cachestore.remote import RemoteRunCache

        return RemoteRunCache(url)
    if kind == "sqlite":
        return SqliteRunCache(concrete, max_entries=max_entries, ttl_s=ttl_s)
    if max_entries is not None:
        raise CacheStoreError(
            f"run_cache_max_entries requires the sqlite backend; "
            f"{os.fspath(path)!r} opens as jsonl (name it *.sqlite or "
            f"prefix it with sqlite:)"
        )
    return JsonlRunCache(concrete, ttl_s=ttl_s)


def migrate_store(
    source: "str | os.PathLike[str]",
    destination: "str | os.PathLike[str]",
    *,
    max_entries: "int | None" = None,
) -> int:
    """Copy every live record from *source* into *destination*.

    Returns the number of records migrated. Superseded JSONL
    duplicates never survive (only the live, last-written value of
    each key is copied), so migrating doubles as a compaction.
    Existing destination records are overwritten key-by-key; the
    source is left untouched.
    """
    # Compare the resolved *files*, not (kind, path) identities: a
    # scheme prefix forcing the other backend onto the same physical
    # file would otherwise slip past and corrupt it mid-copy.
    if store_identity(source)[1] == store_identity(destination)[1]:
        raise CacheStoreError(
            "source and destination name the same file; nothing to "
            "migrate"
        )
    with open_store(source) as src:
        with open_store(destination, max_entries=max_entries) as dst:
            records = src.items()
            for key, result in records:
                dst.put(key, result)
    return len(records)
