"""Single-flight stampede protection for run-cache stores.

When several workers miss the same key at once — the cold start of a
warm fleet campaign, N replicas of one probe landing together — a
plain store lets every one of them execute the run, then overwrite
each other with identical results. :class:`SingleFlightStore` wraps
any :class:`~repro.core.cachestore.base.RunCacheBackend` with a
per-key *claim*: the first ``get`` to miss is granted the claim (and
sees the miss, so its caller executes the run); every other ``get``
on that key blocks on the claim-holder's ``put`` and then reads the
freshly-published hit. Each missed key executes exactly once per
claim window.

Claims carry a **lease**: a claim-holder that dies (or early-exits
and never publishes) blocks its waiters only until the lease runs
out, after which the next waiter inherits the claim and executes the
run itself. Liveness never depends on a peer's good behavior.

This wrapper coordinates threads *within one process*. The same
protocol — claim on miss, publish on put, bounded lease — is what the
campaign server's cache surface implements across processes for the
fleet (:mod:`repro.server.cache`); this class is the local, in-memory
form of it, useful for ``analyze_many(jobs=N)`` sharing one store.
"""

from __future__ import annotations

import threading
import time

from repro.core.cachestore.base import StoreKey, StoreStats
from repro.core.runner import RunResult

#: How long a claim-holder may sit on a key before waiters give up on
#: it. Generous for probe runs (which usually finish in well under a
#: second) while keeping a crashed holder's waiters bounded.
DEFAULT_LEASE_S = 30.0


class _Claim:
    __slots__ = ("event", "deadline")

    def __init__(self, deadline: float) -> None:
        self.event = threading.Event()
        self.deadline = deadline


class SingleFlightStore:
    """A run-cache wrapper that de-duplicates concurrent misses.

    Implements the full :class:`RunCacheBackend` contract by
    delegation; only ``get``/``put`` add behavior. Counters:
    ``claims_granted`` (misses that turned a caller into the
    executor), ``coalesced`` (waits that ended in a published hit —
    runs the claim saved from executing).
    """

    def __init__(self, inner, *, lease_s: float = DEFAULT_LEASE_S) -> None:
        if lease_s <= 0:
            raise ValueError("lease_s must be positive")
        self.inner = inner
        self.lease_s = lease_s
        self.kind = f"singleflight+{inner.kind}"
        self.path = inner.path
        self._lock = threading.Lock()
        self._claims: "dict[StoreKey, _Claim]" = {}
        self.claims_granted = 0
        self.coalesced = 0

    # -- the coordinated operations ----------------------------------------

    def get(self, key: StoreKey) -> "RunResult | None":
        waited = False
        while True:
            hit = self.inner.get(key)
            if hit is not None:
                if waited:
                    with self._lock:
                        self.coalesced += 1
                return hit
            with self._lock:
                claim = self._claims.get(key)
                now = time.monotonic()
                if claim is None or now >= claim.deadline:
                    # Ours: the caller becomes the executor. An
                    # expired claim transfers — its holder is presumed
                    # dead, and its waiters re-race on the next lap.
                    self._claims[key] = _Claim(now + self.lease_s)
                    self.claims_granted += 1
                    return None
            claim.event.wait(max(0.0, claim.deadline - time.monotonic()))
            waited = True
            # Loop: a publish means the next inner.get hits; a lease
            # expiry means the claim check above hands us the key.

    def put(
        self,
        key: StoreKey,
        result: RunResult,
        *,
        policy: "dict | None" = None,
    ) -> None:
        self.inner.put(key, result, policy=policy)
        with self._lock:
            claim = self._claims.pop(key, None)
        if claim is not None:
            claim.event.set()

    # -- plain delegation --------------------------------------------------

    def __len__(self) -> int:
        return len(self.inner)

    def items(self):
        return self.inner.items()

    def records(self):
        return self.inner.records()

    def stats(self) -> StoreStats:
        return self.inner.stats()

    def compact(self):
        return self.inner.compact()

    def gc(self, max_entries=None, *, ttl_s=None):
        return self.inner.gc(max_entries, ttl_s=ttl_s)

    def expired(self, ttl_s=None):
        return self.inner.expired(ttl_s)

    def close(self) -> None:
        # Wake every waiter first: a blocked campaign thread must not
        # outlive the store it is waiting on.
        with self._lock:
            claims = list(self._claims.values())
            self._claims.clear()
        for claim in claims:
            claim.event.set()
        self.inner.close()

    def __enter__(self) -> "SingleFlightStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
