"""The SQLite run-cache backend: shared-state, bounded, concurrent.

Where the JSONL backend is a per-process index over an append-only
file, this backend delegates the shared state to SQLite itself:

* **WAL mode** — writers append to a write-ahead log while readers
  keep reading; safe for several concurrent campaign *processes*
  sharing one cache file, with crash recovery (a process killed
  mid-transaction rolls back cleanly on the next open).
* **Live read-through** — every ``get`` is a fresh read transaction,
  so one campaign's committed writes are visible to another *without
  reopening* the store. (The probe engine still promotes hits into
  its own LRU, so hot keys don't re-pay the query.)
* **Upsert puts** — ``INSERT ... ON CONFLICT DO UPDATE`` makes the
  already-durable check shared state rather than per-process memory:
  two writers racing on one key leave exactly one row, fixing the
  JSONL backend's duplicate re-appends.
* **LRU eviction** — every row carries ``last_used``/``use_count``;
  with ``max_entries`` set, a put that pushes the table over the cap
  evicts the least-recently-used rows, keeping a long-lived service
  cache bounded. ``gc()`` applies the same policy on demand.

``compact()`` here means checkpointing the WAL back into the main
database and ``VACUUM``-ing free pages — nothing is ever superseded
in place, so there are no stale records to drop.
"""

from __future__ import annotations

import os
import sqlite3
import threading
import time
from pathlib import Path

from repro.core.cachestore.base import (
    CacheStoreError,
    CompactionResult,
    StoreKey,
    StoreStats,
    decode_record,
    decode_record_full,
    encode_record,
)
from repro.core.runner import RunResult

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    backend     TEXT    NOT NULL,
    workload    TEXT    NOT NULL,
    fingerprint TEXT    NOT NULL,
    replica     INTEGER NOT NULL,
    result      TEXT    NOT NULL,
    created     REAL    NOT NULL,
    last_used   REAL    NOT NULL,
    use_count   INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (backend, workload, fingerprint, replica)
);
CREATE INDEX IF NOT EXISTS runs_last_used ON runs (last_used);
"""

#: How long a connection waits on a competing writer's lock before
#: giving up (seconds). Campaign writes are single small statements,
#: so contention windows are microseconds; the margin is for CI boxes.
_BUSY_TIMEOUT_S = 30.0

#: Application-level retries when SQLite reports the database locked
#: *despite* the busy timeout (which it can, e.g. when a competing
#: writer holds the lock across its own busy wait, or on filesystems
#: with advisory-lock quirks). Small and bounded: the point is riding
#: out a momentary stall, not masking a wedged peer.
_LOCK_ATTEMPTS = 3
_LOCK_RETRY_DELAY_S = 0.05


def _retry_locked(action):
    """Run *action*, retrying briefly on lock/busy contention.

    Only ``sqlite3.OperationalError``s that look like lock contention
    are retried (with linear backoff); everything else — corruption,
    schema errors, disk-full — propagates immediately, as does the
    contention error itself once the attempts are spent.
    """
    for attempt in range(_LOCK_ATTEMPTS):
        try:
            return action()
        except sqlite3.OperationalError as error:
            message = str(error).lower()
            if "locked" not in message and "busy" not in message:
                raise
            if attempt == _LOCK_ATTEMPTS - 1:
                raise
            time.sleep(_LOCK_RETRY_DELAY_S * (attempt + 1))


class SqliteRunCache:
    """A run-result cache backed by one SQLite database file.

    Parameters
    ----------
    path:
        The database file. Created (with parent directories) at open.
    max_entries:
        Optional LRU cap: a ``put`` that grows the table past this
        many rows evicts the least-recently-used surplus. ``None``
        (the default) leaves the store unbounded, like JSONL.
    ttl_s:
        Optional record age cap: a ``get`` of a row written (or last
        refreshed) more than this many seconds ago reads as a miss;
        ``gc`` deletes such rows. Complements the LRU cap — the cap
        bounds size, the TTL bounds staleness.

    Thread-safe (one guarded connection per store instance) and
    multi-process-safe (WAL journaling; every read is a fresh
    snapshot, so other processes' commits are picked up live).
    """

    kind = "sqlite"

    def __init__(
        self,
        path: "str | os.PathLike[str]",
        *,
        max_entries: "int | None" = None,
        ttl_s: "float | None" = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError("ttl_s must be positive")
        self.path = Path(path)
        self.max_entries = max_entries
        self.ttl_s = ttl_s
        self._lock = threading.Lock()
        self._conn: "sqlite3.Connection | None" = None
        self._evictions = 0
        with self._lock:
            self._connect_locked()
            self._loaded_records = self._count_locked()

    # -- connection lifecycle ----------------------------------------------

    def _connect_locked(self) -> sqlite3.Connection:
        if self._conn is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(
                str(self.path),
                timeout=_BUSY_TIMEOUT_S,
                isolation_level=None,  # autocommit: every get is a
                check_same_thread=False,  # fresh snapshot (read-through)
            )
            try:
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute("PRAGMA synchronous=NORMAL")
                conn.executescript(_SCHEMA)
            except sqlite3.DatabaseError as error:
                # A mis-extensioned file (say, JSONL content behind a
                # *.db name): surface the family error callers already
                # handle, not a raw sqlite3 traceback.
                conn.close()
                raise CacheStoreError(
                    f"{self.path} is not a SQLite database: {error} "
                    f"(jsonl files need a jsonl: prefix or a non-sqlite "
                    f"extension)"
                ) from error
            self._conn = conn
        return self._conn

    def _count_locked(self) -> int:
        conn = self._connect_locked()
        return conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]

    # -- the store API -----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return self._count_locked()

    @property
    def loaded_records(self) -> int:
        """Complete records in the database when the store was opened."""
        return self._loaded_records

    @property
    def stale_records(self) -> int:
        """Always 0: the upsert replaces superseded records in place."""
        return 0

    def get(self, key: StoreKey) -> "RunResult | None":
        """One live read — plus one bookkeeping write (``last_used``/
        ``use_count``) on a hit, which is what LRU eviction and ``gc``
        order by. The write cost stays off the hot path in practice:
        the probe engine promotes every persistent hit into its own
        LRU, so a key pays it once per process, not once per run."""
        backend, workload, fingerprint, replica = key
        where = (
            "backend = ? AND workload = ? AND fingerprint = ? "
            "AND replica = ?"
        )
        with self._lock:
            conn = self._connect_locked()
            row = _retry_locked(lambda: conn.execute(
                f"SELECT result, created FROM runs WHERE {where}",
                (backend, workload, fingerprint, replica),
            ).fetchone())
            if row is None:
                return None
            if self.ttl_s is not None and time.time() - row[1] > self.ttl_s:
                # Expired: a miss (the row stays for gc to sweep; no
                # use-count bump — an unservable row earned no recency).
                return None
            _retry_locked(lambda: conn.execute(
                f"UPDATE runs SET last_used = ?, use_count = use_count + 1 "
                f"WHERE {where}",
                (time.time(), backend, workload, fingerprint, replica),
            ))
        _key, result = decode_record(row[0])
        return result

    def put(
        self,
        key: StoreKey,
        result: RunResult,
        *,
        policy: "dict | None" = None,
    ) -> None:
        """Upsert one run: a duplicate key updates the existing row in
        place — shared state, so concurrent campaigns never grow the
        store with records another writer already persisted. The
        optional *policy* document rides inside the record JSON of the
        ``result`` column (same wire format as the JSONL backend)."""
        backend, workload, fingerprint, replica = key
        now = time.time()
        with self._lock:
            conn = self._connect_locked()
            _retry_locked(lambda: conn.execute(
                "INSERT INTO runs (backend, workload, fingerprint, replica,"
                " result, created, last_used, use_count)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, 0)"
                " ON CONFLICT (backend, workload, fingerprint, replica)"
                " DO UPDATE SET result = excluded.result,"
                "               created = excluded.created,"
                "               last_used = excluded.last_used",
                (backend, workload, fingerprint, replica,
                 encode_record(key, result, policy), now, now),
            ))
            if self.max_entries is not None:
                self._evict_locked(self.max_entries)

    def _evict_locked(self, max_entries: int) -> int:
        conn = self._connect_locked()
        surplus = self._count_locked() - max_entries
        if surplus <= 0:
            return 0
        conn.execute(
            "DELETE FROM runs WHERE rowid IN ("
            " SELECT rowid FROM runs"
            " ORDER BY last_used ASC, use_count ASC, rowid ASC"
            " LIMIT ?)",
            (surplus,),
        )
        self._evictions += surplus
        return surplus

    def items(self) -> list[tuple[StoreKey, RunResult]]:
        with self._lock:
            conn = self._connect_locked()
            rows = conn.execute("SELECT result FROM runs").fetchall()
        return [decode_record(row[0]) for row in rows]

    def records(self) -> "list[tuple[StoreKey, RunResult, dict | None]]":
        with self._lock:
            conn = self._connect_locked()
            rows = conn.execute("SELECT result FROM runs").fetchall()
        return [decode_record_full(row[0]) for row in rows]

    # -- ops ---------------------------------------------------------------

    def _file_bytes(self) -> int:
        total = 0
        for suffix in ("", "-wal", "-shm"):
            try:
                total += os.stat(str(self.path) + suffix).st_size
            except OSError:
                pass
        return total

    def stats(self) -> StoreStats:
        with self._lock:
            entries = self._count_locked()
            evictions = self._evictions
            expired = (
                self._expired_locked(self.ttl_s)
                if self.ttl_s is not None else 0
            )
        return StoreStats(
            kind=self.kind,
            path=str(self.path),
            entries=entries,
            loaded_records=self._loaded_records,
            stale_records=0,
            file_bytes=self._file_bytes(),
            max_entries=self.max_entries,
            evictions=evictions,
            ttl_s=self.ttl_s,
            expired=expired,
        )

    def _expired_locked(self, ttl_s: float) -> int:
        conn = self._connect_locked()
        return conn.execute(
            "SELECT COUNT(*) FROM runs WHERE created < ?",
            (time.time() - ttl_s,),
        ).fetchone()[0]

    def expired(self, ttl_s: "float | None" = None) -> int:
        """Live rows older than *ttl_s* (or the configured TTL)."""
        ttl = ttl_s if ttl_s is not None else self.ttl_s
        if ttl is None:
            raise CacheStoreError(
                "expired() needs a TTL: pass ttl_s or open the store "
                "with one"
            )
        if ttl <= 0:
            raise ValueError("ttl_s must be positive")
        with self._lock:
            return self._expired_locked(ttl)

    def compact(self) -> CompactionResult:
        """Checkpoint the WAL into the main database and reclaim free
        pages (``VACUUM``). Drops no records — SQLite never leaves
        superseded duplicates behind."""
        bytes_before = self._file_bytes()
        with self._lock:
            conn = self._connect_locked()
            kept = self._count_locked()
            # Consume the pragma cursors: an unread cursor leaves its
            # statement live, and a live reader stops the truncating
            # checkpoint from emptying the WAL.
            conn.execute("PRAGMA wal_checkpoint(TRUNCATE)").fetchall()
            conn.execute("VACUUM")
            # VACUUM's rewritten pages land in the WAL; fold them back
            # so the measured footprint reflects the reclaim.
            conn.execute("PRAGMA wal_checkpoint(TRUNCATE)").fetchall()
        return CompactionResult(
            bytes_before=bytes_before,
            bytes_after=self._file_bytes(),
            records_dropped=0,
            records_kept=kept,
        )

    def gc(
        self,
        max_entries: "int | None" = None,
        *,
        ttl_s: "float | None" = None,
    ) -> int:
        """Evict by age, then by recency: rows older than *ttl_s* (or
        the configured TTL) are deleted first, then least-recently-used
        rows down to *max_entries* (or the configured cap). Returns
        the total dropped. At least one dimension must apply."""
        cap = max_entries if max_entries is not None else self.max_entries
        ttl = ttl_s if ttl_s is not None else self.ttl_s
        if cap is None and ttl is None:
            raise ValueError(
                "gc needs a cap or a TTL: pass max_entries/ttl_s or "
                "open the store with one"
            )
        if cap is not None and cap < 1:
            raise ValueError("max_entries must be >= 1")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl_s must be positive")
        dropped = 0
        with self._lock:
            if ttl is not None:
                conn = self._connect_locked()
                cursor = _retry_locked(lambda: conn.execute(
                    "DELETE FROM runs WHERE created < ?",
                    (time.time() - ttl,),
                ))
                dropped += cursor.rowcount
                self._evictions += cursor.rowcount
            if cap is not None:
                dropped += self._evict_locked(cap)
        return dropped

    def close(self) -> None:
        """Close the connection (idempotent; the store stays usable
        and reconnects on the next operation)."""
        with self._lock:
            conn, self._conn = self._conn, None
        if conn is not None:
            conn.close()

    def __enter__(self) -> "SqliteRunCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
