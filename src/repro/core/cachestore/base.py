"""The run-cache storage contract shared by every backend.

The probe engine sees a run cache as four operations — ``get``,
``put``, ``__len__``, ``close`` — and the ops tooling (``loupe
cache``) adds four more: ``stats``, ``items``, ``compact``, ``gc``.
:class:`RunCacheBackend` is that contract as a protocol; the concrete
stores live next door (:mod:`repro.core.cachestore.jsonl`,
:mod:`repro.core.cachestore.sqlite`) and
:func:`~repro.core.cachestore.factory.open_store` picks between them
by path.

The on-disk *record* is shared too: one JSON object carrying the
engine's cache key — ``(backend, workload, fingerprint, replica)``,
the same quad as :data:`repro.core.engine.CacheKey` — and the
serialized :class:`~repro.core.runner.RunResult`. The JSONL backend
stores the object verbatim as one line; the SQLite backend stores the
key as columns and the result as the same JSON payload, so migrating
between backends is a lossless copy of ``items()``.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.core.runner import RunResult
from repro.errors import LoupeError

#: Cache key: (backend name, workload name, policy fingerprint, replica)
#: — the same shape as :data:`repro.core.engine.CacheKey`.
StoreKey = tuple[str, str, str, int]


class CacheStoreError(LoupeError):
    """A run-cache store operation is invalid or unsupported."""


def encode_record(
    key: StoreKey,
    result: RunResult,
    policy: "dict | None" = None,
    *,
    created: "float | None" = None,
) -> str:
    """One run as its canonical JSON record (no trailing newline).

    *policy* is the optional JSON form of the run's
    :class:`~repro.core.policy.InterpositionPolicy`
    (``InterpositionPolicy.to_dict()``). The key's fingerprint is a
    lossy digest — good enough to discriminate, not to *reconstruct*
    the policy — so recording the full document is what makes a
    record independently re-executable (``loupe cache verify``).
    *created* is the record's write timestamp (``time.time()``), the
    anchor of TTL eviction. Either being ``None`` omits its field
    entirely, keeping records of writers that never knew about
    policies or timestamps byte-identical.
    """
    backend, workload, fingerprint, replica = key
    record: dict = {
        "backend": backend,
        "workload": workload,
        "fingerprint": fingerprint,
        "replica": replica,
        "result": result.to_dict(),
    }
    if policy is not None:
        record["policy"] = policy
    if created is not None:
        record["created"] = created
    return json.dumps(record, sort_keys=True)


def decode_record(line: str) -> tuple[StoreKey, RunResult]:
    """Parse one JSON record back to ``(key, result)``.

    Raises ``ValueError``/``KeyError``/``TypeError`` on torn or
    foreign input — loaders treat any of those as "skip this line".
    A ``policy`` field, when present, is simply ignored here; use
    :func:`decode_record_full` to read it.
    """
    key, result, _policy = decode_record_full(line)
    return key, result


def decode_record_full(
    line: str,
) -> "tuple[StoreKey, RunResult, dict | None]":
    """Parse one JSON record to ``(key, result, policy_doc)``.

    ``policy_doc`` is ``None`` for records written before policies
    were stored (or by writers that chose not to store one).
    """
    key, result, policy, _created = decode_record_meta(line)
    return key, result, policy


def decode_record_meta(
    line: str,
) -> "tuple[StoreKey, RunResult, dict | None, float | None]":
    """Parse one JSON record to ``(key, result, policy_doc, created)``.

    ``created`` is ``None`` for records written before timestamps were
    stored; TTL eviction treats such records as ageless (never
    expired) — conservative, since their age is unknowable.
    """
    record = json.loads(line)
    key = (
        record["backend"],
        record["workload"],
        record["fingerprint"],
        int(record["replica"]),
    )
    policy = record.get("policy")
    if policy is not None and not isinstance(policy, dict):
        raise TypeError(f"malformed policy document: {policy!r}")
    created = record.get("created")
    if created is not None:
        created = float(created)
    return key, RunResult.from_dict(record["result"]), policy, created


@dataclasses.dataclass(frozen=True)
class StoreStats:
    """One store's observable state, for ``loupe cache stats`` and the
    session's ``store_stats`` event.

    ``entries`` is the live record count (what ``len(store)`` says);
    ``loaded_records`` the *unique* complete records found on disk when
    the store was opened; ``stale_records`` the superseded duplicates
    currently wasting space (always 0 on SQLite, whose upsert replaces
    in place). ``file_bytes`` is the on-disk footprint (for SQLite:
    database + WAL).
    """

    kind: str
    path: str
    entries: int
    loaded_records: int = 0
    stale_records: int = 0
    file_bytes: int = 0
    max_entries: "int | None" = None
    evictions: int = 0
    ttl_s: "float | None" = None
    #: Live entries older than the TTL (still counted in ``entries``
    #: until a gc sweep; reads already treat them as misses). Always 0
    #: when no TTL applies.
    expired: int = 0

    def describe(self) -> str:
        base = (
            f"{self.kind} store at {self.path}: {self.entries} entr"
            f"{'y' if self.entries == 1 else 'ies'} in "
            f"{self.file_bytes} byte(s)"
        )
        if self.stale_records:
            base += f", {self.stale_records} stale record(s)"
        if self.max_entries is not None:
            base += f", capped at {self.max_entries}"
        if self.ttl_s is not None:
            base += (
                f", ttl {self.ttl_s:g}s ({self.expired} expired)"
            )
        return base

    def to_dict(self) -> dict:
        """Machine-readable form — the single serialization shared by
        ``loupe cache stats --json`` and the campaign server's
        ``GET /stats`` endpoint (clients parse one shape, not two)."""
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class CompactionResult:
    """What one ``compact()`` pass reclaimed."""

    bytes_before: int
    bytes_after: int
    records_dropped: int
    records_kept: int

    @property
    def ratio(self) -> float:
        """Shrink factor (``>= 1.0``; 1.0 means nothing reclaimed)."""
        if self.bytes_after == 0:
            return 1.0 if self.bytes_before == 0 else float(self.bytes_before)
        return self.bytes_before / self.bytes_after

    def describe(self) -> str:
        return (
            f"compacted {self.bytes_before} -> {self.bytes_after} byte(s) "
            f"({self.ratio:.2f}x), dropped {self.records_dropped} stale "
            f"record(s), kept {self.records_kept}"
        )


@runtime_checkable
class RunCacheBackend(Protocol):
    """A persistent run-result store the probe engine can warm from.

    Implementations must be thread-safe (one campaign's app-level
    workers share a single instance), tolerate a process killed
    mid-write (every *complete* record must load), and keep
    ``close()`` idempotent with the store still usable afterwards —
    the next operation transparently reopens the backing file.
    """

    #: Stable backend discriminator (``"jsonl"``/``"sqlite"``).
    kind: str
    path: Path

    def get(self, key: StoreKey) -> "RunResult | None": ...

    def put(
        self,
        key: StoreKey,
        result: RunResult,
        *,
        policy: "dict | None" = None,
    ) -> None: ...

    def __len__(self) -> int: ...

    def items(self) -> list[tuple[StoreKey, RunResult]]:
        """A snapshot of every live record (migration's read side)."""
        ...

    def records(self) -> "list[tuple[StoreKey, RunResult, dict | None]]":
        """Like :meth:`items`, plus each record's stored policy
        document (``None`` when the writer didn't store one) — the
        read side of ``loupe cache verify``."""
        ...

    def stats(self) -> StoreStats: ...

    def compact(self) -> CompactionResult:
        """Rewrite the backing file without its dead weight.

        An *offline* ops operation: run it from ``loupe cache
        compact``, not while other processes hold open write handles
        on the same file.
        """
        ...

    def gc(
        self,
        max_entries: "int | None" = None,
        *,
        ttl_s: "float | None" = None,
    ) -> int:
        """Evict records: entries older than *ttl_s* (or the
        configured TTL) are swept first, then least-recently-used
        records down to *max_entries* (or the configured cap).
        Returns how many were dropped. Backends that cannot honor a
        given dimension raise :class:`CacheStoreError`."""
        ...

    def expired(self, ttl_s: "float | None" = None) -> int:
        """How many live records are older than *ttl_s* (or the
        configured TTL) — what a ``gc`` sweep with that TTL would
        drop. Records without a stored timestamp never count."""
        ...

    def close(self) -> None: ...

    def __enter__(self) -> "RunCacheBackend": ...

    def __exit__(self, *exc_info: object) -> None: ...
