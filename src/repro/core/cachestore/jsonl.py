"""The append-only JSONL run-cache backend.

This is the original :class:`repro.core.runcache.RunCacheStore`,
byte-compatible with every file it ever wrote: one JSON object per
line, appended and flushed per record, duplicate keys resolving
last-writer-wins at load. What the format buys — human-greppable
files, torn-line crash tolerance for free, O_APPEND interleaving —
it pays for in growth: superseded records are never reclaimed until
:meth:`JsonlRunCache.compact` rewrites the file.

Concurrency limitation (by design of the format): :meth:`put`'s
already-durable check consults only *this process's* in-memory index.
Two campaigns appending to one JSONL file therefore re-append records
the other writer already persisted — harmless for correctness (loads
still resolve last-writer-wins; the values are identical for a
deterministic backend) but the file grows with every writer. Use the
SQLite backend (:mod:`repro.core.cachestore.sqlite`), whose upsert is
shared-state, when campaigns share one cache concurrently; use
``compact()`` to reclaim an already-bloated JSONL file.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path

from repro.core.cachestore.base import (
    CacheStoreError,
    CompactionResult,
    StoreKey,
    StoreStats,
    decode_record_meta,
    encode_record,
)
from repro.core.runner import RunResult


class JsonlRunCache:
    """An on-disk run-result cache shared by campaigns over time.

    Parameters
    ----------
    path:
        The JSONL file backing the store. Created (along with parent
        directories) on first write; an existing file is loaded
        eagerly so ``get`` never touches the disk afterwards.
    ttl_s:
        Optional record age cap: a ``get`` of a record written more
        than this many seconds ago reads as a miss (the line stays on
        disk until ``gc(ttl_s=...)`` sweeps it). Records of writers
        that stored no timestamp never expire — their age is
        unknowable, and serving a stale hit beats discarding a
        possibly-fresh one for a *deterministic* backend's runs.

    The store is thread-safe: one campaign's app-level workers
    (``analyze_many(jobs=N)``) share a single instance freely. All
    reads are served from the in-memory index; ``put`` appends one
    line and flushes, so a crash loses at most the record being
    written. Records another *process* appends after this store
    loaded are invisible until reopen — see the module docstring for
    the multi-writer story.
    """

    kind = "jsonl"

    def __init__(
        self,
        path: "str | os.PathLike[str]",
        *,
        ttl_s: "float | None" = None,
    ) -> None:
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError("ttl_s must be positive")
        self.path = Path(path)
        self.ttl_s = ttl_s
        self._lock = threading.Lock()
        self._index: dict[StoreKey, RunResult] = {}
        self._policies: "dict[StoreKey, dict | None]" = {}
        self._created: "dict[StoreKey, float | None]" = {}
        self._handle = None
        self._loaded_records = 0
        self._stale_records = 0
        self._load()

    # -- loading -----------------------------------------------------------

    def _load(self) -> None:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    key, result, policy, created = decode_record_meta(line)
                except (ValueError, KeyError, TypeError):
                    # A torn or foreign line (campaign killed mid-append);
                    # every complete record is still usable.
                    continue
                if key in self._index:
                    self._stale_records += 1
                else:
                    self._loaded_records += 1
                self._index[key] = result
                self._policies[key] = policy
                self._created[key] = created

    # -- the store API -----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    @property
    def loaded_records(self) -> int:
        """Unique complete records found on disk when the store was
        opened (agrees with ``len(store)`` until the first new put)."""
        return self._loaded_records

    @property
    def stale_records(self) -> int:
        """Superseded records currently wasting file space: duplicate
        keys found at load plus overwrites appended since. Reclaimed
        by :meth:`compact`."""
        with self._lock:
            return self._stale_records

    def _expired_locked(
        self, key: StoreKey, ttl_s: "float | None", now: float
    ) -> bool:
        if ttl_s is None:
            return False
        created = self._created.get(key)
        return created is not None and now - created > ttl_s

    def get(self, key: StoreKey) -> "RunResult | None":
        with self._lock:
            if self._expired_locked(key, self.ttl_s, time.time()):
                return None
            return self._index.get(key)

    def put(
        self,
        key: StoreKey,
        result: RunResult,
        *,
        policy: "dict | None" = None,
    ) -> None:
        """Record one run; a duplicate key overwrites (last-writer-wins).

        The already-durable short-circuit consults only this process's
        index — concurrent writers sharing the file may still append
        duplicates (see the module docstring). A put that brings a
        policy document to a record that lacked one is *not*
        short-circuited: upgrading old records to re-executable ones
        is worth one appended line.
        """
        now = time.time()
        with self._lock:
            if (
                self._index.get(key) == result
                and (policy is None or self._policies.get(key) == policy)
                and not self._expired_locked(key, self.ttl_s, now)
            ):
                # Already durable and still fresh; don't grow the file.
                # (An *expired* identical record is re-appended: the
                # rewrite is what renews its timestamp, else a TTL'd
                # key could never revive.)
                return
            if policy is None:
                # A policy-less overwrite keeps any document an earlier
                # writer stored — last-writer-wins must not *lose* it.
                policy = self._policies.get(key)
            line = encode_record(key, result, policy, created=now)
            if key in self._index:
                # The old line stays on disk, superseded, until compact().
                self._stale_records += 1
            self._index[key] = result
            self._policies[key] = policy
            self._created[key] = now
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self.path.open("a", encoding="utf-8")
            self._handle.write(line + "\n")
            self._handle.flush()

    def items(self) -> list[tuple[StoreKey, RunResult]]:
        with self._lock:
            return list(self._index.items())

    def records(self) -> "list[tuple[StoreKey, RunResult, dict | None]]":
        with self._lock:
            return [
                (key, result, self._policies.get(key))
                for key, result in self._index.items()
            ]

    # -- ops ---------------------------------------------------------------

    def stats(self) -> StoreStats:
        with self._lock:
            entries = len(self._index)
            stale = self._stale_records
        try:
            file_bytes = self.path.stat().st_size
        except OSError:
            file_bytes = 0
        return StoreStats(
            kind=self.kind,
            path=str(self.path),
            entries=entries,
            loaded_records=self._loaded_records,
            stale_records=stale,
            file_bytes=file_bytes,
            ttl_s=self.ttl_s,
            expired=self.expired() if self.ttl_s is not None else 0,
        )

    def expired(self, ttl_s: "float | None" = None) -> int:
        """Live records older than *ttl_s* (or the configured TTL)."""
        ttl = ttl_s if ttl_s is not None else self.ttl_s
        if ttl is None:
            raise CacheStoreError(
                "expired() needs a TTL: pass ttl_s or open the store "
                "with one"
            )
        if ttl <= 0:
            raise ValueError("ttl_s must be positive")
        now = time.time()
        with self._lock:
            return sum(
                1 for key in self._index
                if self._expired_locked(key, ttl, now)
            )

    def compact(self) -> CompactionResult:
        """Rewrite the file with only the live records.

        Superseded duplicates — overwrites from this or any earlier
        campaign — are dropped; every live key keeps its
        last-written value. The rewrite goes through a temporary
        file and an atomic rename, so a crash mid-compaction leaves
        the original intact. Offline operation: a concurrent writer
        holding an append handle to the old file would strand its
        appends on the replaced inode.
        """
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            try:
                bytes_before = self.path.stat().st_size
            except OSError:
                bytes_before = 0
            dropped = self._stale_records
            if bytes_before == 0 and not self._index:
                return CompactionResult(0, 0, 0, 0)
            temp = self.path.with_name(self.path.name + ".compact.tmp")
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with temp.open("w", encoding="utf-8") as handle:
                for key, result in self._index.items():
                    handle.write(
                        encode_record(
                            key, result, self._policies.get(key),
                            created=self._created.get(key),
                        )
                        + "\n"
                    )
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp, self.path)
            self._stale_records = 0
            bytes_after = self.path.stat().st_size
            return CompactionResult(
                bytes_before=bytes_before,
                bytes_after=bytes_after,
                records_dropped=dropped,
                records_kept=len(self._index),
            )

    def gc(
        self,
        max_entries: "int | None" = None,
        *,
        ttl_s: "float | None" = None,
    ) -> int:
        """Sweep records older than *ttl_s* (or the configured TTL).

        A TTL sweep is the one eviction dimension this backend can
        honor: expiry needs only the stored timestamps, not usage
        tracking. Swept keys are dropped from the index and the file
        is rewritten atomically (compact-style), reclaiming their
        stale lines in the same pass. *max_entries* is still refused —
        LRU eviction needs the usage data only SQLite keeps.
        """
        if max_entries is not None:
            raise CacheStoreError(
                "the jsonl backend tracks no usage and cannot evict "
                "by entry count; migrate to sqlite for LRU eviction "
                "(loupe cache migrate <src.jsonl> <dst.sqlite>)"
            )
        ttl = ttl_s if ttl_s is not None else self.ttl_s
        if ttl is None:
            raise CacheStoreError(
                "gc needs a TTL on the jsonl backend: pass ttl_s or "
                "open the store with one"
            )
        if ttl <= 0:
            raise ValueError("ttl_s must be positive")
        now = time.time()
        with self._lock:
            doomed = [
                key for key in self._index
                if self._expired_locked(key, ttl, now)
            ]
            for key in doomed:
                del self._index[key]
                self._policies.pop(key, None)
                self._created.pop(key, None)
        if doomed:
            # Rewrite the file so the swept lines are gone on disk
            # too, not just invisible in this process's index.
            self.compact()
        return len(doomed)

    def close(self) -> None:
        """Flush and release the file handle (idempotent; the store
        stays readable and reopens the file on the next ``put``)."""
        with self._lock:
            handle, self._handle = self._handle, None
        if handle is not None:
            handle.close()

    def __enter__(self) -> "JsonlRunCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
