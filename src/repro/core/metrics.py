"""Statistics for performance and resource-usage guarding (Section 5.3).

Loupe's test scripts return a scalar metric (requests/s, throughput...)
and Loupe samples resource usage via ``/proc``. When probing a stub or
fake, the analyzer must decide whether the observed change is real or
noise. The paper reports impacts "outside of the error margin (>3%)";
we implement that rule backed by a Welch t-test so a 4% swing in a
noisy metric is not mistaken for a regression.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Sequence

#: Relative change below which an impact is never reported (paper: 3%).
DEFAULT_MARGIN = 0.03

#: Two-sided critical value of the normal approximation at alpha=0.05.
_Z_CRITICAL = 1.96


@dataclasses.dataclass(frozen=True)
class SampleStats:
    """Summary statistics of replicated measurements."""

    n: int
    mean: float
    std: float

    @staticmethod
    def of(samples: Sequence[float]) -> "SampleStats":
        if not samples:
            return SampleStats(n=0, mean=0.0, std=0.0)
        n = len(samples)
        mean = sum(samples) / n
        if n == 1:
            return SampleStats(n=1, mean=mean, std=0.0)
        variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
        return SampleStats(n=n, mean=mean, std=math.sqrt(variance))

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        if self.n <= 1:
            return 0.0
        return self.std / math.sqrt(self.n)


def welch_statistic(a: SampleStats, b: SampleStats) -> float:
    """Welch's t statistic between two sample summaries.

    Returns ``inf`` when both variances are zero but the means differ
    (a deterministic change is infinitely significant) and 0.0 when the
    means coincide.
    """
    if a.n == 0 or b.n == 0:
        return 0.0
    denom = math.sqrt(a.sem**2 + b.sem**2)
    diff = b.mean - a.mean
    if denom == 0.0:
        return math.inf if diff != 0.0 else 0.0
    return diff / denom


def relative_delta(baseline: float, variant: float) -> float:
    """Relative change of *variant* vs *baseline* (0.0 for zero baseline)."""
    if baseline == 0.0:
        return 0.0
    return (variant - baseline) / baseline


@dataclasses.dataclass(frozen=True)
class MetricComparison:
    """Decision on whether a variant's metric differs from baseline."""

    baseline: SampleStats
    variant: SampleStats
    delta: float            # relative change of the mean
    significant: bool       # beyond margin AND statistically distinguishable

    @property
    def direction(self) -> str:
        if not self.significant:
            return "none"
        return "increase" if self.delta > 0 else "decrease"


def compare(
    baseline_samples: Sequence[float],
    variant_samples: Sequence[float],
    *,
    margin: float = DEFAULT_MARGIN,
) -> MetricComparison:
    """Compare replicated measurements against the passthrough baseline.

    A change is *significant* when the relative mean shift exceeds
    *margin* and Welch's statistic rejects equality (normal
    approximation; exact for the deterministic simulator, conservative
    for small real-world replica counts).
    """
    base = SampleStats.of(baseline_samples)
    var = SampleStats.of(variant_samples)
    delta = relative_delta(base.mean, var.mean)
    beyond_margin = abs(delta) > margin
    statistically = abs(welch_statistic(base, var)) > _Z_CRITICAL
    return MetricComparison(
        baseline=base,
        variant=var,
        delta=delta,
        significant=beyond_margin and statistically,
    )


@dataclasses.dataclass(frozen=True)
class ImpactSummary:
    """Aggregate impact of stubbing or faking one feature (Table 2 row).

    ``perf``/``fd``/``mem`` are ``None`` when the dimension was not
    measured (e.g. a health check has no performance metric).
    """

    perf: MetricComparison | None = None
    fd: MetricComparison | None = None
    mem: MetricComparison | None = None

    @property
    def flags(self) -> frozenset[str]:
        """Which dimensions changed significantly."""
        flagged = set()
        if self.perf is not None and self.perf.significant:
            flagged.add("perf")
        if self.fd is not None and self.fd.significant:
            flagged.add("fd")
        if self.mem is not None and self.mem.significant:
            flagged.add("mem")
        return frozenset(flagged)

    @property
    def clean(self) -> bool:
        """True when no metric moved outside the error margin."""
        return not self.flags

    def describe(self) -> str:
        """Table 2-style cell text, e.g. ``perf -38%, mem +17%``."""
        parts = []
        for label, comparison in (("perf", self.perf), ("fd", self.fd), ("mem", self.mem)):
            if comparison is not None and comparison.significant:
                parts.append(f"{label} {comparison.delta:+.0%}")
        return ", ".join(parts) if parts else "-"
