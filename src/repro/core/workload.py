"""Workload descriptions and the test-script success contract.

The paper's central premise (Section 3.2): *users describe the workload
they want to support*; Loupe then reports the precise feature set needed
to run that workload reliably. Three workload classes appear throughout
the evaluation, each a different point on the guarantee spectrum:

* **health check** — "can the server answer one request?" (weakest)
* **benchmark** — standard load (wrk, redis-benchmark); also yields the
  performance metric guarded in Section 5.3
* **test suite** — the application's own suite (strongest)

A workload's *success* is decided exclusively by its test script's exit
status — crashes, hangs and failed checks all count as failure. The
script optionally emits a scalar performance number on stdout.
"""

from __future__ import annotations

import dataclasses
import enum
from collections.abc import Mapping, Sequence

from repro.errors import WorkloadError


class WorkloadKind(enum.Enum):
    """Guarantee level of a workload (Section 3.2)."""

    HEALTH_CHECK = "health-check"
    BENCHMARK = "benchmark"
    TEST_SUITE = "test-suite"


@dataclasses.dataclass(frozen=True)
class Workload:
    """Base workload description shared by both execution backends."""

    name: str
    kind: WorkloadKind
    metric_name: str | None = None     # e.g. "requests/s", "SET requests/s"
    timeout_s: float = 120.0

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("workload needs a non-empty name")
        if self.timeout_s <= 0:
            raise WorkloadError("workload timeout must be positive")

    @property
    def measures_performance(self) -> bool:
        return self.metric_name is not None


@dataclasses.dataclass(frozen=True)
class SimWorkload(Workload):
    """Workload for the simulation backend.

    ``features_exercised`` names the application features this workload
    actually drives (e.g. a redis-benchmark run exercises the key-value
    core but not persistence). A run succeeds when every exercised
    feature remains functional — mirroring how real test scripts only
    observe the behavior they exercise, which is precisely why faking a
    feature *outside* this set goes unnoticed (Section 5.3's pipe2
    example).
    """

    features_exercised: frozenset[str] = frozenset({"core"})

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.features_exercised:
            raise WorkloadError("a SimWorkload must exercise at least one feature")


@dataclasses.dataclass(frozen=True)
class CommandWorkload(Workload):
    """Workload for the real ptrace backend.

    ``argv`` launches the application under trace. ``test_argv``, when
    given, is executed after the application run to decide success (a
    server health check, for instance); otherwise the application's own
    exit status decides, which is the "test script practically included
    in the application" case the paper describes for test suites.

    ``binaries`` is the whitelist (Section 3.3): when the workload is a
    wrapper (make test, a shell script), only syscalls issued by listed
    binary paths are attributed to the application.
    """

    argv: Sequence[str] = ()
    test_argv: Sequence[str] | None = None
    env: Mapping[str, str] | None = None
    binaries: frozenset[str] = frozenset()
    expect_exit_code: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.argv:
            raise WorkloadError("a CommandWorkload needs an argv to execute")


def health_check(name: str, **kwargs: object) -> SimWorkload:
    """A minimal liveness workload exercising only the core feature."""
    return SimWorkload(name=name, kind=WorkloadKind.HEALTH_CHECK, **kwargs)  # type: ignore[arg-type]


def benchmark(
    name: str,
    metric_name: str,
    features: Sequence[str] = ("core",),
    **kwargs: object,
) -> SimWorkload:
    """A standard benchmark workload with a guarded performance metric."""
    return SimWorkload(
        name=name,
        kind=WorkloadKind.BENCHMARK,
        metric_name=metric_name,
        features_exercised=frozenset(features),
        **kwargs,  # type: ignore[arg-type]
    )


def test_suite(
    name: str, features: Sequence[str] = ("core",), **kwargs: object
) -> SimWorkload:
    """A full test-suite workload exercising a broad feature set."""
    return SimWorkload(
        name=name,
        kind=WorkloadKind.TEST_SUITE,
        features_exercised=frozenset(features),
        **kwargs,  # type: ignore[arg-type]
    )


# Keep pytest from collecting the constructor as a test when imported
# into test modules.
test_suite.__test__ = False  # type: ignore[attr-defined]
