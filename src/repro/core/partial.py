"""Partial-implementation analysis of vectored syscalls (Section 5.4).

When the analyzer runs at sub-feature granularity, its result contains
``syscall:OPERATION`` reports. This module rolls those up into the view
the paper presents: per vectored syscall, which operations the
application actually uses, which of them are required, and what
fraction of the syscall's full operation space that represents —
the evidence that "several complex system calls do not require a full
implementation".
"""

from __future__ import annotations

import dataclasses

from repro.core.result import AnalysisResult, FeatureReport
from repro.syscalls.subfeatures import VECTORED_SYSCALLS


@dataclasses.dataclass(frozen=True)
class PartialImplementationSummary:
    """Usage of one vectored syscall by one application."""

    syscall: str
    total_operations: int                 # size of the full operation space
    used: tuple[str, ...]                 # operations observed at runtime
    required: tuple[str, ...]             # operations that must be implemented
    stubbable: tuple[str, ...]
    fakeable: tuple[str, ...]

    @property
    def used_fraction(self) -> float:
        if self.total_operations == 0:
            return 0.0
        return len(self.used) / self.total_operations

    @property
    def required_fraction(self) -> float:
        if self.total_operations == 0:
            return 0.0
        return len(self.required) / self.total_operations

    @property
    def fully_avoidable(self) -> bool:
        """True when no operation needs a real implementation."""
        return not self.required


def _operation_reports(
    result: AnalysisResult, syscall: str
) -> list[FeatureReport]:
    prefix = syscall + ":"
    return [
        report
        for feature, report in result.features.items()
        if feature.startswith(prefix)
    ]


def summarize(result: AnalysisResult) -> dict[str, PartialImplementationSummary]:
    """Roll up all vectored syscalls present in *result*.

    Only meaningful for results produced with
    ``AnalyzerConfig(subfeature_level=True)``; a whole-syscall result
    yields an empty mapping.
    """
    summaries: dict[str, PartialImplementationSummary] = {}
    for syscall, vectored in VECTORED_SYSCALLS.items():
        reports = _operation_reports(result, syscall)
        if not reports:
            continue
        used = tuple(sorted(r.feature.partition(":")[2] for r in reports))
        required = tuple(
            sorted(
                r.feature.partition(":")[2]
                for r in reports
                if r.decision.required
            )
        )
        stubbable = tuple(
            sorted(
                r.feature.partition(":")[2]
                for r in reports
                if r.decision.can_stub
            )
        )
        fakeable = tuple(
            sorted(
                r.feature.partition(":")[2]
                for r in reports
                if r.decision.can_fake
            )
        )
        summaries[syscall] = PartialImplementationSummary(
            syscall=syscall,
            total_operations=len(vectored.operations),
            used=used,
            required=required,
            stubbable=stubbable,
            fakeable=fakeable,
        )
    return summaries
