"""Persistent cross-campaign run cache: the engine's LRU, on disk.

The in-memory LRU of :class:`~repro.core.engine.ProbeEngine` amortizes
run cost *within* one analysis — the combined-run confirmation and the
ddmin bisection reuse probe-phase runs for free. This module extends
that amortization *across* campaigns and across processes: a
:class:`RunCacheStore` is an append-only JSONL file of
``(backend, workload, fingerprint, replica) -> RunResult`` records,
keyed identically to the LRU, that a later campaign (a new session, a
new process, a CI re-run) opens to start warm.

Correctness inherits the engine's caching contract: only runs of
backends declaring ``deterministic = True`` are ever stored or served,
so a persisted answer is byte-identical to re-executing the run. The
key's ``backend`` component is :func:`~repro.core.runner.backend_name`,
which for the simulation backends embeds the application name *and
version* (``sim:redis-7.0.11``) — two campaigns only share entries
when they analyze the very same build. Callers putting differently
built programs behind one backend name must use separate cache files,
exactly as they must use separate engines.

Durability model: one JSON object per line, appended and flushed per
record. Loading tolerates a torn final line (a campaign killed
mid-append) by skipping anything that does not parse; duplicate keys
resolve last-writer-wins, matching the LRU's overwrite semantics.
Concurrent writers on POSIX each append whole small lines in ``O_APPEND``
mode, so parallel campaigns sharing one file interleave records without
corrupting each other.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

from repro.core.runner import RunResult

#: Cache key: (backend name, workload name, policy fingerprint, replica)
#: — the same shape as :data:`repro.core.engine.CacheKey`.
StoreKey = tuple[str, str, str, int]


class RunCacheStore:
    """An on-disk run-result cache shared by campaigns over time.

    Parameters
    ----------
    path:
        The JSONL file backing the store. Created (along with parent
        directories) on first write; an existing file is loaded
        eagerly so ``get`` never touches the disk afterwards.

    The store is thread-safe: one campaign's app-level workers
    (``analyze_many(jobs=N)``) share a single instance freely. All
    reads are served from the in-memory index; ``put`` appends one
    line and flushes, so a crash loses at most the record being
    written.
    """

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._index: dict[StoreKey, RunResult] = {}
        self._handle = None
        self._loaded_records = 0
        self._load()

    # -- loading -----------------------------------------------------------

    def _load(self) -> None:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    key = (
                        record["backend"],
                        record["workload"],
                        record["fingerprint"],
                        int(record["replica"]),
                    )
                    result = RunResult.from_dict(record["result"])
                except (ValueError, KeyError, TypeError):
                    # A torn or foreign line (campaign killed mid-append);
                    # every complete record is still usable.
                    continue
                self._index[key] = result
                self._loaded_records += 1

    # -- the store API -----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    @property
    def loaded_records(self) -> int:
        """Complete records found on disk when the store was opened."""
        return self._loaded_records

    def get(self, key: StoreKey) -> "RunResult | None":
        with self._lock:
            return self._index.get(key)

    def put(self, key: StoreKey, result: RunResult) -> None:
        """Record one run; a duplicate key overwrites (last-writer-wins)."""
        backend, workload, fingerprint, replica = key
        line = json.dumps({
            "backend": backend,
            "workload": workload,
            "fingerprint": fingerprint,
            "replica": replica,
            "result": result.to_dict(),
        }, sort_keys=True)
        with self._lock:
            if self._index.get(key) == result:
                return  # already durable; don't grow the file
            self._index[key] = result
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self.path.open("a", encoding="utf-8")
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        """Flush and release the file handle (idempotent; the store
        stays readable and reopens the file on the next ``put``)."""
        with self._lock:
            handle, self._handle = self._handle, None
        if handle is not None:
            handle.close()

    def __enter__(self) -> "RunCacheStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
