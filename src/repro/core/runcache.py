"""Compatibility shim: the run cache moved to :mod:`repro.core.cachestore`.

The original single-file JSONL store grew into a storage subsystem
with a backend protocol, an SQLite sibling, and an ``open_store``
factory — see :mod:`repro.core.cachestore`. Importing
:class:`RunCacheStore` from here keeps working and still means the
append-only JSONL backend (byte-compatible with every file the old
class wrote); new code should use
:func:`repro.core.cachestore.open_store` so users can choose the
backend by path.
"""

import warnings

from repro.core.cachestore.base import StoreKey
from repro.core.cachestore.jsonl import JsonlRunCache

warnings.warn(
    "repro.core.runcache is deprecated; import from "
    "repro.core.cachestore instead (RunCacheStore is the JSONL "
    "backend — open_store(path) picks a backend by path)",
    DeprecationWarning,
    stacklevel=2,
)

#: The historical name of the JSONL backend.
RunCacheStore = JsonlRunCache

__all__ = ["RunCacheStore", "StoreKey"]
