"""The probe execution engine: sharded run scheduling + result caching.

The paper's run-time model (Section 3.3, ``(2 + 2·t·s) · ceil(r/p)``)
assumes Loupe amortizes its run cost over a parallelism factor ``p``.
This module supplies that ``p``: a :class:`ProbeEngine` turns the
analyzer's implicit run loop into an explicit scheduler that

* fans run requests out over a pluggable executor —
  ``executor="serial"`` preserves exact serial semantics,
  ``"thread"`` overlaps run *latency* on a ``ThreadPoolExecutor``
  (enough for I/O-bound real workloads), and ``"process"`` shards
  CPU-bound runs over a ``ProcessPoolExecutor``, lifting the GIL cap
  for backends that declare themselves process-safe (``"auto"`` picks
  serial at ``parallel=1`` and threads otherwise),
* accepts whole probe *batches* (:meth:`ProbeEngine.run_probe_batch`):
  every ``(policy, replica)`` pair of an analysis stage is submitted
  up front, so the pool stays full across features instead of
  draining at each feature boundary,
* short-circuits the remaining replicas of a probe as soon as one
  replica fails — the conservative merge in
  :class:`~repro.core.replicas.ProbeOutcome` only needs a single
  failure, and metric samples are only consumed on success,
* memoizes :class:`~repro.core.runner.RunResult`s in an LRU cache
  keyed by ``(backend.name, workload.name, policy.fingerprint(),
  replica)``, so the combined-run confirmation and the ddmin conflict
  bisection never re-pay for a run the probe phase already executed,
* optionally spills every executed run to a persistent run-cache
  store (:mod:`repro.core.cachestore`, same key), so repeated
  campaigns — new processes, new sessions, CI re-runs — start warm.

Correctness contract: a run may only be answered from either cache when
the backend is deterministic for a fixed ``(workload, policy,
replica)`` triple. Backends declare this through their capability
contract (:func:`~repro.core.runner.capabilities_of`; the simulation
backend declares ``deterministic`` — it is reproducible by
construction); backends that do not — notably the real ptrace
backend, whose runs are replicated precisely *because* they are not
reproducible — are never served from the caches, even when caching is
enabled. Under that contract the caches never change
*what* an analysis concludes, only how many runs it takes to conclude
it. Cache keys assume ``backend.name`` uniquely identifies the
application build — callers analyzing two different programs behind
identically-named backends must use separate engines (the
:class:`~repro.core.analyzer.Analyzer` clears its engine at the start
of every analysis for exactly this reason) and, when persisting,
separate cache files (the simulation backends embed name *and*
version in their backend name for exactly this reason).

Executor fallback is per-backend and always conservative: a backend
whose capabilities do not include ``parallel_safe`` runs serially no
matter what was requested; a ``process`` request degrades to threads
when the backend fails :func:`~repro.core.runner.process_shardable`
(capabilities without ``process_safe``, or not picklable). Capability
descriptors resolve once per backend object through
:meth:`ProbeEngine.capabilities_for`.

Run submission (:meth:`ProbeEngine.run` / :meth:`ProbeEngine.run_replicas`
/ :meth:`ProbeEngine.run_probe_batch`) is thread-safe; the engine is
shared freely between worker threads.

Fault tolerance (:mod:`repro.core.faults`): an engine built with a
:class:`~repro.core.faults.FaultPolicy` gives every run a wall-clock
timeout and bounded retries, classifies exhausted runs by the fault
taxonomy, and — under ``on_fault="degrade"`` — quarantines them as
:class:`~repro.core.faults.ProbeFault` entries on the outcome instead
of aborting the campaign. A broken worker pool no longer poisons the
batch either: the engine rebuilds the shared pool and re-enqueues only
the lost chunks (bounded by the retry budget).

Accounting invariant: ``runs_requested`` counts every run a caller
asked for — including replicas that early exit later skips — so
``runs_requested == runs_executed + cache_hits + replicas_skipped +
faulted`` holds after every scheduling call, on every executor.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import dataclasses
import multiprocessing
import threading
from collections import OrderedDict
from collections.abc import Callable, Sequence
from concurrent.futures.process import BrokenProcessPool

from repro.core.faults import (
    FAULT_WORKER_CRASH,
    FaultNotice,
    FaultPolicy,
    PoolRecoveredNotice,
    ProbeFault,
    ProbeFaultError,
    ProbeRunError,
    RetryNotice,
    describe_probe_error,
    guarded_run,
)
from repro.core.policy import InterpositionPolicy
from repro.core.replicas import ProbeOutcome, aggregate
from repro.core.cachestore import RunCacheBackend
from repro.core.runner import (
    BackendCapabilities,
    ExecutionBackend,
    RunResult,
    backend_name,
    capabilities_of,
    process_shardable,
)
from repro.core.workload import Workload

#: Default LRU capacity: comfortably holds every run of one analysis
#: (hundreds of features x 2 actions x a handful of replicas).
DEFAULT_CACHE_SIZE = 4096

#: Cache key: (backend name, workload name, policy fingerprint, replica).
CacheKey = tuple[str, str, str, int]

#: Accepted values of ``ProbeEngine(executor=...)``.
EXECUTORS = ("auto", "serial", "thread", "process", "remote")

#: Target chunks per process-pool worker: enough slack for the pool to
#: load-balance, few enough that per-chunk IPC stays negligible.
_CHUNKS_PER_WORKER = 8

#: The process-wide shared worker pools (see :func:`_shared_process_pool`
#: and :func:`_shared_thread_pool`). Starting worker processes is the
#: single most expensive thing this module does — every engine of the
#: process shares one pool instead of paying it per analysis. The
#: thread pool is shared for a different reason: concurrent analyzers
#: (``analyze_many(jobs=N)``) each sizing a private probe pool would
#: multiply ``jobs × parallel`` threads and oversubscribe the machine;
#: one shared pool caps probe concurrency at the widest ``parallel``
#: requested, no matter how many analyses run at once.
_PROCESS_POOL: "concurrent.futures.ProcessPoolExecutor | None" = None
_PROCESS_POOL_WIDTH = 0
_THREAD_POOL: "concurrent.futures.ThreadPoolExecutor | None" = None
_THREAD_POOL_WIDTH = 0
_POOL_LOCK = threading.Lock()
#: Pools displaced by a wider request. They stay alive — an engine
#: that fetched one may still be mid-batch, and shutting it down under
#: that engine would abort the analysis — until
#: :func:`shutdown_worker_pools` reclaims everything. Bounded by the
#: number of distinct pool growths in one process (rare: campaigns
#: run at one width).
_RETIRED_POOLS: list[concurrent.futures.Executor] = []


def _process_context() -> "multiprocessing.context.BaseContext":
    """The start method for process sharding.

    Plain fork is only safe while the process is still
    single-threaded: forking under another thread's held lock
    (session-level ``jobs`` workers, a store flushing its file) can
    deadlock the child. So fork is used exactly when that holds at
    pool start — otherwise workers come from forkserver's clean
    single-threaded helper (or spawn where forkserver is missing).
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods and threading.active_count() == 1:
        return multiprocessing.get_context("fork")
    if "forkserver" in methods:
        return multiprocessing.get_context("forkserver")
    return multiprocessing.get_context("spawn")


def _shared_process_pool(width: int) -> concurrent.futures.Executor:
    """The process-wide worker-process pool, at least *width* wide.

    Worker processes are expensive to start (fork-eagerly, or a full
    interpreter under spawn/forkserver) and — unlike threads — hold no
    per-analysis state: tasks carry everything they need. So one pool
    serves every engine of the process, created on first use and
    grown (never shrunk) when a wider engine comes along; a campaign
    over N applications pays pool start-up once, not N times.
    ``ProbeEngine.close()`` deliberately leaves it alone; call
    :func:`shutdown_process_pool` to reclaim the workers explicitly.
    """
    global _PROCESS_POOL, _PROCESS_POOL_WIDTH
    with _POOL_LOCK:
        if _PROCESS_POOL is None or _PROCESS_POOL_WIDTH < width:
            if _PROCESS_POOL is not None:
                # Never shut a displaced pool down here: an engine
                # that fetched it may still be submitting chunks.
                _RETIRED_POOLS.append(_PROCESS_POOL)
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=width, mp_context=_process_context()
            )
            # Force the workers to start now, while the thread picture
            # the context choice was based on still holds (a fork
            # context must not fork later, once callers go threaded).
            pool.submit(int).result()
            _PROCESS_POOL, _PROCESS_POOL_WIDTH = pool, width
        return _PROCESS_POOL


def _new_thread_pool(width: int) -> concurrent.futures.ThreadPoolExecutor:
    """Build a probe thread pool (split out so tests can count it)."""
    return concurrent.futures.ThreadPoolExecutor(
        max_workers=width, thread_name_prefix="loupe-probe"
    )


def _shared_thread_pool(width: int) -> concurrent.futures.Executor:
    """The process-wide probe thread pool, at least *width* wide.

    One pool serves every engine of the process, so app-level
    concurrency (``analyze_many(jobs=N)``, each job with its own
    analyzer and engine) and probe-level parallelism compose instead
    of multiplying: total in-flight probe runs are capped by the
    widest ``parallel`` any engine asked for, not ``jobs × parallel``.
    Grown (never shrunk) when a wider engine comes along — displaced
    pools retire until :func:`shutdown_worker_pools` reclaims them,
    exactly like the process pool.
    """
    global _THREAD_POOL, _THREAD_POOL_WIDTH
    with _POOL_LOCK:
        if _THREAD_POOL is None or _THREAD_POOL_WIDTH < width:
            if _THREAD_POOL is not None:
                _RETIRED_POOLS.append(_THREAD_POOL)
            _THREAD_POOL = _new_thread_pool(width)
            _THREAD_POOL_WIDTH = width
        return _THREAD_POOL


def shutdown_process_pool() -> None:
    """Shut the shared worker-process pool down (idempotent).

    The next process-sharded run transparently starts a fresh pool.
    Long-lived embedders can call it to reclaim the worker processes
    while keeping the (cheap) thread pool warm;
    :func:`shutdown_worker_pools` reclaims both.
    """
    global _PROCESS_POOL, _PROCESS_POOL_WIDTH
    with _POOL_LOCK:
        pools = [
            pool for pool in _RETIRED_POOLS
            if isinstance(pool, concurrent.futures.ProcessPoolExecutor)
        ]
        for pool in pools:
            _RETIRED_POOLS.remove(pool)
        if _PROCESS_POOL is not None:
            pools.append(_PROCESS_POOL)
        _PROCESS_POOL = None
        _PROCESS_POOL_WIDTH = 0
    for pool in pools:
        pool.shutdown(wait=True)


def _replace_broken_process_pool(broken: concurrent.futures.Executor) -> None:
    """Retire *broken* so the next fetch starts a fresh process pool.

    Identity-guarded: if another engine already replaced the shared
    pool (two engines share one pool, so one dead worker breaks both),
    the healthy replacement is left alone and only *broken* is shut
    down. Shutdown of a broken pool is quick — its workers are gone.
    """
    global _PROCESS_POOL, _PROCESS_POOL_WIDTH
    with _POOL_LOCK:
        if _PROCESS_POOL is broken:
            _PROCESS_POOL = None
            _PROCESS_POOL_WIDTH = 0
        elif broken in _RETIRED_POOLS:
            _RETIRED_POOLS.remove(broken)
    broken.shutdown(wait=True)


def shutdown_worker_pools() -> None:
    """Shut both shared worker pools down (idempotent).

    The next scheduled run transparently starts fresh pools.
    Registered at interpreter exit; long-lived embedders can call it
    earlier to reclaim the worker threads and processes — including
    while other threads are mid-batch: shutdown waits for in-flight
    runs, and the thread-sharded submit loop re-fetches a replacement
    pool when it finds its pool shut.
    """
    global _THREAD_POOL, _THREAD_POOL_WIDTH
    with _POOL_LOCK:
        pools: list[concurrent.futures.Executor] = [
            pool for pool in _RETIRED_POOLS
            if isinstance(pool, concurrent.futures.ThreadPoolExecutor)
        ]
        for pool in pools:
            _RETIRED_POOLS.remove(pool)
        if _THREAD_POOL is not None:
            pools.append(_THREAD_POOL)
        _THREAD_POOL = None
        _THREAD_POOL_WIDTH = 0
    for pool in pools:
        pool.shutdown(wait=True)
    shutdown_process_pool()


atexit.register(shutdown_worker_pools)


def _execute_chunk(
    backend: ExecutionBackend,
    workload: Workload,
    tasks: Sequence[tuple[int, int, InterpositionPolicy]],
    early_exit: bool,
    fault_policy: "FaultPolicy | None" = None,
) -> "list[tuple[int, int, RunResult | ProbeFault]]":
    """Execute a contiguous slice of a batch inside one worker process.

    Process sharding ships tasks in chunks so the backend is pickled
    once per chunk instead of once per run — at thousands of
    microsecond-scale simulated runs, per-task IPC would otherwise eat
    the sharding win. ``tasks`` are ``(probe_index, replica, policy)``
    triples in submission order; with *early_exit* the worker skips
    the later replicas of a probe that already failed inside this
    chunk (the same replicas the serial path would skip), and the
    scheduler accounts anything absent from the return as skipped.

    Backend exceptions never cross the process boundary raw: without a
    fault policy they re-raise as :class:`ProbeRunError` carrying the
    probe key (a pickled anonymous traceback identifies nothing);
    with an active policy each run goes through :func:`guarded_run` —
    the same timeout/retry semantics as the scheduling process — and
    exhausted runs come back as :class:`ProbeFault` rows (degrade) or
    raise :class:`ProbeFaultError` (fail). Faulted probes do not
    trigger the in-chunk skip: only a *decided* failure does.
    """
    results: "list[tuple[int, int, RunResult | ProbeFault]]" = []
    failed: set[int] = set()
    guarded = fault_policy is not None and fault_policy.active
    for probe_index, replica, policy in tasks:
        if early_exit and probe_index in failed:
            continue
        if guarded:
            outcome = guarded_run(
                backend, workload, policy, replica, fault_policy
            )
            if outcome.faulted:
                fault = outcome.fault(workload, policy, replica)
                if not fault_policy.degrade:
                    raise ProbeFaultError(fault)
                results.append((probe_index, replica, fault))
                continue
            result = outcome.result
        else:
            try:
                result = backend.run(workload, policy, replica=replica)
            except (ProbeRunError, ProbeFaultError):
                raise
            except Exception as error:
                raise ProbeRunError(
                    describe_probe_error(workload, policy, replica, error)
                ) from error
        results.append((probe_index, replica, result))
        if not result.success:
            failed.add(probe_index)
    return results


@dataclasses.dataclass(frozen=True)
class EngineStats:
    """Immutable snapshot of one engine's run accounting.

    ``runs_requested`` counts every run the analysis asked for,
    including replicas that early exit never started;
    ``runs_executed`` the subset that actually reached the backend;
    ``cache_hits`` the subset answered from either cache, of which
    ``persistent_hits`` came from the on-disk store rather than this
    engine's own LRU; ``replicas_skipped`` the replicas never run
    because an earlier replica of the same probe already failed
    (early exit); ``faulted`` the runs the fault policy quarantined
    (timeout / worker-crash / backend-error / torn-result), which
    therefore produced no result. ``runs_requested == runs_executed +
    cache_hits + replicas_skipped + faulted`` always holds.
    """

    runs_requested: int = 0
    runs_executed: int = 0
    cache_hits: int = 0
    replicas_skipped: int = 0
    persistent_hits: int = 0
    faulted: int = 0

    def __add__(self, other: "EngineStats") -> "EngineStats":
        """Field-wise total, e.g. folding per-analysis stats into a
        campaign total (new counters join automatically)."""
        if not isinstance(other, EngineStats):
            return NotImplemented
        return EngineStats(**{
            field.name: getattr(self, field.name) + getattr(other, field.name)
            for field in dataclasses.fields(self)
        })

    @property
    def hit_rate(self) -> float:
        """Fraction of requested runs answered from the caches."""
        if self.runs_requested == 0:
            return 0.0
        return self.cache_hits / self.runs_requested

    @property
    def persistent_hit_rate(self) -> float:
        """Fraction of requested runs answered from the on-disk store."""
        if self.runs_requested == 0:
            return 0.0
        return self.persistent_hits / self.runs_requested

    def describe(self) -> str:
        base = (
            f"{self.runs_requested} run(s) requested, "
            f"{self.runs_executed} executed, "
            f"{self.cache_hits} cache hit(s) ({self.hit_rate:.0%}), "
            f"{self.replicas_skipped} replica(s) early-exited"
        )
        if self.persistent_hits:
            base += f", {self.persistent_hits} from the persistent cache"
        if self.faulted:
            base += f", {self.faulted} run(s) faulted"
        return base


class ProbeEngine:
    """Schedules probe runs over a pluggable executor with run caching.

    Parameters
    ----------
    parallel:
        Worker-pool width. ``1`` (the default) runs every replica
        inline on the calling thread, byte-for-byte preserving the
        serial execution order, regardless of *executor*.
    executor:
        The sharding strategy at ``parallel > 1``: ``"thread"`` fans
        runs over a ``ThreadPoolExecutor`` (overlaps run latency;
        CPU-bound backends stay GIL-capped), ``"process"`` shards them
        over a ``ProcessPoolExecutor`` (full CPU scaling, for backends
        passing :func:`~repro.core.runner.process_shardable` —
        others degrade to threads), ``"serial"`` disables sharding
        outright, and ``"auto"`` (the default) means threads.
    cache:
        Enable run-result memoization. Disabling it forces every
        request through the backend (useful for benchmarking the raw
        run cost). Even when enabled, only backends whose capability
        contract declares ``deterministic`` are ever answered from a
        cache.
    cache_size:
        Maximum cached :class:`RunResult`s before least-recently-used
        eviction (this engine's in-memory LRU only; the persistent
        store bounds itself — the SQLite backend evicts under its own
        ``max_entries``, JSONL grows until compacted).
    store:
        Optional persistent run-cache store (any
        :class:`~repro.core.cachestore.RunCacheBackend` —
        :func:`~repro.core.cachestore.open_store` builds one from a
        path). Misses that the LRU cannot answer are looked up here
        before reaching the backend, and every executed cacheable run
        is recorded, so later campaigns sharing the store start warm.
        Survives :meth:`reset` — cross-campaign reuse is its entire
        point.
    fault_policy:
        Optional :class:`~repro.core.faults.FaultPolicy`. When active,
        every run gets a wall-clock timeout and bounded retries;
        exhausted runs either abort the campaign as
        :class:`~repro.core.faults.ProbeFaultError` (``on_fault=
        "fail"``) or are quarantined as
        :class:`~repro.core.faults.ProbeFault` entries on the
        :class:`~repro.core.replicas.ProbeOutcome` (``"degrade"``).
        ``None`` (the default) keeps the historical fast path: raw
        exception propagation, zero per-run overhead.
    on_notice:
        Optional callback receiving fault-activity notices
        (:class:`~repro.core.faults.RetryNotice` /
        :class:`~repro.core.faults.FaultNotice` /
        :class:`~repro.core.faults.PoolRecoveredNotice`) from the
        scheduling thread; the analyzer adapts them into typed
        session events. Also assignable later via ``notice_sink``.
    """

    def __init__(
        self,
        *,
        parallel: int = 1,
        cache: bool = True,
        cache_size: int = DEFAULT_CACHE_SIZE,
        executor: str = "auto",
        store: "RunCacheBackend | None" = None,
        fault_policy: "FaultPolicy | None" = None,
        on_notice: "Callable[[object], None] | None" = None,
        workers: "Sequence[str]" = (),
    ) -> None:
        if parallel < 1:
            raise ValueError("parallel must be >= 1")
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; choose from: "
                f"{', '.join(EXECUTORS)}"
            )
        if executor == "remote" and not workers:
            raise ValueError(
                "the remote executor needs at least one worker address "
                "(workers=('host:port', ...))"
            )
        if store is not None and not cache:
            # cache=False means "every request reaches the backend";
            # silently ignoring the store the caller asked for would
            # be worse than refusing the contradiction.
            raise ValueError(
                "a persistent run-cache store requires cache=True"
            )
        self.parallel = parallel
        self.executor = executor
        self.workers = tuple(workers)
        #: Lazily-connected fabric client (``executor="remote"`` only);
        #: built on the first remote dispatch, torn down by ``close``.
        self._fabric = None
        self.cache_enabled = cache
        self.cache_size = cache_size
        self.store = store
        self.fault_policy = fault_policy
        #: Fault-activity callback; reassignable (the analyzer points
        #: it at the live event stream for the duration of an analysis).
        self.notice_sink = on_notice
        self._lock = threading.Lock()
        self._cache: OrderedDict[CacheKey, RunResult] = OrderedDict()
        self._requested = 0
        self._executed = 0
        self._hits = 0
        self._skipped = 0
        self._persistent_hits = 0
        self._faulted = 0
        #: id(backend) -> (backend, BackendCapabilities); resolved once
        #: per backend object, so a legacy backend's shimmed attributes
        #: (and the accompanying DeprecationWarning) are read once, not
        #: per run. The backend reference pins the id so a descriptor
        #: can never be served to a recycled object.
        self._capability_cache: dict[
            int, tuple[object, BackendCapabilities]
        ] = {}
        #: id(backend) -> (backend, process_shardable(backend)); same
        #: id-pinning contract as the capability cache.
        self._shard_verdicts: dict[int, tuple[object, bool]] = {}

    # -- lifecycle ---------------------------------------------------------

    @property
    def executor_name(self) -> str:
        """The resolved sharding strategy
        (``serial``/``thread``/``process``/``remote``).

        Per-backend capability fallback can still demote an individual
        scheduling call below this (see :meth:`run_probe_batch`).
        ``remote`` resolves regardless of ``parallel`` — fleet width
        comes from the worker count, not this engine's thread budget.
        """
        if self.executor == "remote":
            return "remote"
        if self.parallel == 1 or self.executor == "serial":
            return "serial"
        if self.executor == "process":
            return "process"
        return "thread"

    def close(self) -> None:
        """Release this engine's hold on scheduling state (idempotent).

        The worker pools — thread and process alike — are process-wide
        and deliberately survive this call for the other engines of
        the process (:func:`shutdown_worker_pools` reclaims them
        explicitly); the engine stays usable, re-fetching a pool — at
        the *current* ``parallel`` width — on the next scheduling
        call. The fabric connection, by contrast, is this engine's
        own: it is torn down here (workers survive a scheduler hangup
        and serve the next connection). Kept as an explicit lifecycle
        point so analyzers and sessions can context-manage engines
        uniformly.
        """
        self._close_fabric()

    def _fabric_client(self):
        """The lazily-connected fleet client (remote executor only)."""
        if self._fabric is None:
            # Imported here, not at module level: the fabric worker
            # imports this module for ``_execute_chunk``.
            from repro.fabric.executor import FabricExecutor

            self._fabric = FabricExecutor(self.workers).connect()
        return self._fabric

    def _close_fabric(self) -> None:
        fabric, self._fabric = self._fabric, None
        if fabric is not None:
            fabric.close()

    def __enter__(self) -> "ProbeEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _pool(self, kind: str) -> concurrent.futures.Executor:
        # Both pool kinds are process-wide: worker processes because
        # they are stateless and expensive to start, worker threads so
        # concurrent analyzers share one probe budget instead of
        # stacking jobs × parallel threads.
        if kind == "process":
            return _shared_process_pool(self.parallel)
        return _shared_thread_pool(self.parallel)

    def capabilities_for(self, backend: ExecutionBackend) -> BackendCapabilities:
        """The backend's capability descriptor, resolved once per object.

        Memoizing here keeps the hot paths (`_cacheable` runs per
        scheduled run) off the descriptor resolution — which for
        legacy backends goes through the attribute shim and its
        deprecation warning. Cleared on :meth:`reset`.
        """
        with self._lock:
            cached = self._capability_cache.get(id(backend))
        if cached is not None and cached[0] is backend:
            return cached[1]
        capabilities = capabilities_of(backend)
        with self._lock:
            # The strong backend reference keeps the id stable for the
            # descriptor's lifetime (cleared on reset).
            self._capability_cache[id(backend)] = (backend, capabilities)
        return capabilities

    def mode_for(self, backend: ExecutionBackend) -> str:
        """The executor one backend's probes actually get.

        Sharding of any kind requires the backend's capability
        contract to declare ``parallel_safe``: overlapping replicas of
        a live command (the ptrace backend) would contend on ports and
        on-disk state and corrupt each other's outcomes. Process
        sharding additionally requires the backend to survive
        pickling; declared-but-unshardable backends degrade to the
        thread pool rather than failing inside it. The (potentially
        costly) pickle check runs once per backend object, not once
        per scheduling call — the verdict cannot change mid-analysis.
        """
        kind = self.executor_name
        if kind == "serial":
            return "serial"
        capabilities = self.capabilities_for(backend)
        if not capabilities.parallel_safe:
            return "serial"
        if kind in ("process", "remote"):
            # Both ship the backend as a pickle — to a pool child or
            # over a socket — so both need the same shardable verdict.
            with self._lock:
                cached = self._shard_verdicts.get(id(backend))
            if cached is not None and cached[0] is backend:
                shardable = cached[1]
            else:
                shardable = process_shardable(
                    backend, capabilities=capabilities
                )
                with self._lock:
                    # The strong backend reference keeps the id stable
                    # for the verdict's lifetime (cleared on reset).
                    self._shard_verdicts[id(backend)] = (backend, shardable)
            if not shardable:
                return "thread" if self.parallel > 1 else "serial"
        return kind

    # -- accounting --------------------------------------------------------

    @property
    def stats(self) -> EngineStats:
        """A consistent snapshot of the run accounting so far."""
        with self._lock:
            return EngineStats(
                runs_requested=self._requested,
                runs_executed=self._executed,
                cache_hits=self._hits,
                replicas_skipped=self._skipped,
                persistent_hits=self._persistent_hits,
                faulted=self._faulted,
            )

    def reset(self) -> None:
        """Drop the LRU, zero the statistics, forget backend verdicts.

        The next scheduling call re-fetches the shared pools at the
        current ``parallel`` width, so resizing an engine between
        campaigns takes effect here (a wider width grows the shared
        pool; narrower engines simply use fewer of its slots). The
        persistent store — whose entire purpose is surviving campaign
        boundaries — is deliberately left alone.
        """
        self.close()
        with self._lock:
            self._cache.clear()
            self._capability_cache.clear()
            self._shard_verdicts.clear()
            self._requested = 0
            self._executed = 0
            self._hits = 0
            self._skipped = 0
            self._persistent_hits = 0
            self._faulted = 0

    def cached_runs(self) -> int:
        with self._lock:
            return len(self._cache)

    # -- caching -----------------------------------------------------------

    @staticmethod
    def _key(
        backend: ExecutionBackend,
        workload: Workload,
        policy: InterpositionPolicy,
        replica: int,
    ) -> CacheKey:
        return (
            backend_name(backend), workload.name,
            policy.fingerprint(), replica,
        )

    def _cacheable(self, backend: ExecutionBackend) -> bool:
        return (
            self.cache_enabled
            and self.capabilities_for(backend).deterministic
        )

    def _evict_locked(self) -> None:
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    def _lookup(self, key: CacheKey) -> "RunResult | None":
        """Answer a cacheable run from LRU, then store; counts the hit."""
        with self._lock:
            hit = self._cache.get(key)
            if hit is not None:
                self._cache.move_to_end(key)
                self._hits += 1
                return hit
        if self.store is not None:
            persisted = self.store.get(key)
            if persisted is not None:
                with self._lock:
                    self._hits += 1
                    self._persistent_hits += 1
                    self._cache[key] = persisted  # promote into the LRU
                    self._cache.move_to_end(key)
                    self._evict_locked()
                return persisted
        return None

    def _record(
        self,
        key: "CacheKey | None",
        result: RunResult,
        policy: "InterpositionPolicy | None" = None,
    ) -> None:
        """Account one executed run; memoize it when *key* is cacheable.

        The policy rides along to the persistent store so ``loupe
        cache verify`` can later re-execute the record (the key's
        fingerprint is lossy and cannot be reversed into a policy).
        """
        with self._lock:
            self._executed += 1
            if key is not None:
                self._cache[key] = result
                self._cache.move_to_end(key)
                self._evict_locked()
        if key is not None and self.store is not None:
            self.store.put(
                key, result,
                policy=policy.to_dict() if policy is not None else None,
            )

    # -- fault handling ----------------------------------------------------

    def _notify(self, notice: object) -> None:
        sink = self.notice_sink
        if sink is not None:
            sink(notice)

    def _account_fault(self, fault: ProbeFault) -> None:
        with self._lock:
            self._faulted += 1
        self._notify(FaultNotice(fault))

    def _notify_retries(
        self,
        workload: Workload,
        policy: InterpositionPolicy,
        replica: int,
        failures: Sequence[object],
        recovered: bool,
    ) -> None:
        """Emit one RetryNotice per *retried* attempt.

        On eventual success every recorded failure was retried; on an
        exhausted outcome the last failure was terminal (it becomes
        the FaultNotice instead).
        """
        retried = failures if recovered else failures[:-1]
        for attempt, failure in enumerate(retried, start=1):
            self._notify(RetryNotice(
                workload=workload.name,
                probe=policy.describe(),
                replica=replica,
                attempt=attempt,
                kind=failure.kind,
                detail=failure.detail,
            ))

    # -- the run API -------------------------------------------------------

    def run(
        self,
        backend: ExecutionBackend,
        workload: Workload,
        policy: InterpositionPolicy,
        replica: int = 0,
    ) -> RunResult:
        """One run, answered from the caches when possible.

        Caching requires the backend to declare ``deterministic =
        True``; a fresh execution of a nondeterministic backend is the
        whole point of replication, so its results are never memoized.

        The single-run API never degrades: a run that exhausts its
        fault budget raises :class:`ProbeFaultError` even under
        ``on_fault="degrade"`` — only probe outcomes (which can carry
        quarantined faults) support degradation.
        """
        with self._lock:
            self._requested += 1
        out = self._one(backend, workload, policy, replica)
        if isinstance(out, ProbeFault):
            raise ProbeFaultError(out)
        return out

    def _one(
        self,
        backend: ExecutionBackend,
        workload: Workload,
        policy: InterpositionPolicy,
        replica: int,
    ) -> "RunResult | ProbeFault":
        """Lookup-or-execute without touching ``runs_requested`` (the
        scheduling entry points account for requests up front).

        Returns the quarantine record instead of a result when the run
        exhausted its fault budget under ``on_fault="degrade"`` (the
        fault is already accounted and notified by then); raises
        :class:`ProbeFaultError` under ``"fail"``.
        """
        key = None
        if self._cacheable(backend):
            key = self._key(backend, workload, policy, replica)
            hit = self._lookup(key)
            if hit is not None:
                return hit
        fault_policy = self.fault_policy
        if fault_policy is None or not fault_policy.active:
            result = backend.run(workload, policy, replica=replica)
            self._record(key, result, policy)
            return result
        outcome = guarded_run(backend, workload, policy, replica, fault_policy)
        self._notify_retries(
            workload, policy, replica, outcome.failures,
            recovered=outcome.result is not None,
        )
        if outcome.result is not None:
            self._record(key, outcome.result, policy)
            return outcome.result
        fault = outcome.fault(workload, policy, replica)
        self._account_fault(fault)
        if not fault_policy.degrade:
            raise ProbeFaultError(fault)
        return fault

    def run_replicas(
        self,
        backend: ExecutionBackend,
        workload: Workload,
        policy: InterpositionPolicy,
        replicas: int,
        *,
        early_exit: bool = True,
    ) -> ProbeOutcome:
        """Run *replicas* executions of one probe and aggregate them.

        With ``early_exit`` (the default) the remaining replicas of a
        probe are abandoned as soon as one replica fails: the
        conservative merge needs only a single failure, and metric
        samples are only consumed on all-success outcomes. Results
        always appear in replica-index order, so an all-success
        parallel outcome is identical to the serial one.
        """
        return self.run_probe_batch(
            backend, workload, (policy,), replicas, early_exit=early_exit
        )[0]

    def run_probe_batch(
        self,
        backend: ExecutionBackend,
        workload: Workload,
        policies: Sequence[InterpositionPolicy],
        replicas: int,
        *,
        early_exit: bool = True,
    ) -> list[ProbeOutcome]:
        """Run every ``(policy, replica)`` probe of a batch; aggregate
        per policy.

        This is the analyzer's stage-2 entry point: submitting all
        probes of an analysis at once keeps the worker pool saturated
        across feature boundaries instead of draining it after each
        feature's handful of replicas. Outcomes come back in *policies*
        order; early exit remains per-probe (a failed replica only
        cancels its own probe's siblings). On the serial path the
        batch degenerates to the exact historical execution order —
        policy by policy, replica by replica.
        """
        if replicas < 1:
            raise ValueError("need at least one replica")
        if not policies:
            return []
        mode = self.mode_for(backend)
        if mode == "serial":
            return [
                self._serial_probe(
                    backend, workload, policy, replicas, early_exit
                )
                for policy in policies
            ]
        return self._pooled_batch(
            mode, backend, workload, policies, replicas, early_exit
        )

    # -- execution strategies ----------------------------------------------

    def _serial_probe(
        self,
        backend: ExecutionBackend,
        workload: Workload,
        policy: InterpositionPolicy,
        replicas: int,
        early_exit: bool,
    ) -> ProbeOutcome:
        with self._lock:
            self._requested += replicas
        results: list[RunResult] = []
        faults: list[ProbeFault] = []
        for index in range(replicas):
            out = self._one(backend, workload, policy, index)
            if isinstance(out, ProbeFault):
                # A fault is not a decision — later replicas still run
                # (one of them may observe a genuine failure, which
                # dominates; see replicas.aggregate).
                faults.append(out)
                continue
            results.append(out)
            if early_exit and not out.success:
                with self._lock:
                    self._skipped += replicas - index - 1
                break
        return aggregate(results, faults=tuple(faults))

    def _pooled_batch(
        self,
        mode: str,
        backend: ExecutionBackend,
        workload: Workload,
        policies: Sequence[InterpositionPolicy],
        replicas: int,
        early_exit: bool,
    ) -> list[ProbeOutcome]:
        cacheable = self._cacheable(backend)
        with self._lock:
            self._requested += len(policies) * replicas
        collected: list[dict[int, RunResult]] = [{} for _ in policies]
        faulted: list[dict[int, ProbeFault]] = [{} for _ in policies]
        failed = [False] * len(policies)
        # Resolve the caches up front; only misses reach the pool.
        tasks: list[tuple[int, int, InterpositionPolicy, CacheKey | None]] = []
        for probe_index, policy in enumerate(policies):
            for replica in range(replicas):
                if early_exit and failed[probe_index]:
                    break  # cached failure: siblings are never submitted
                key = None
                if cacheable:
                    key = self._key(backend, workload, policy, replica)
                    hit = self._lookup(key)
                    if hit is not None:
                        collected[probe_index][replica] = hit
                        if early_exit and not hit.success:
                            failed[probe_index] = True
                        continue
                tasks.append((probe_index, replica, policy, key))
        keys = {
            (probe_index, replica): key
            for probe_index, replica, _policy, key in tasks
        }
        if mode == "process":
            self._dispatch_process_chunks(
                backend, workload, tasks, keys, collected, faulted,
                failed, early_exit,
            )
        elif mode == "remote":
            self._dispatch_remote_chunks(
                backend, workload, tasks, keys, collected, faulted,
                failed, early_exit,
            )
        else:
            self._dispatch_threads(
                backend, workload, tasks, keys, collected, faulted,
                failed, early_exit,
            )
        # Whatever was asked for but never ran — cancelled in time,
        # skipped by a worker after an in-chunk failure, or never
        # submitted after a cached failure — was skipped. Runs that won
        # the cancellation race were collected above, and quarantined
        # runs are accounted as faults, so the ``requested == executed
        # + hits + skipped + faulted`` invariant holds regardless of
        # how the race resolved.
        obtained = sum(len(by_replica) for by_replica in collected)
        obtained += sum(len(by_replica) for by_replica in faulted)
        missing = len(policies) * replicas - obtained
        if missing:
            with self._lock:
                self._skipped += missing
        return [
            aggregate(
                [by_replica[index] for index in sorted(by_replica)],
                faults=tuple(
                    by_fault[index] for index in sorted(by_fault)
                ),
            )
            for by_replica, by_fault in zip(collected, faulted)
        ]

    def _dispatch_threads(
        self,
        backend: ExecutionBackend,
        workload: Workload,
        tasks: Sequence[tuple[int, int, InterpositionPolicy, "CacheKey | None"]],
        keys: dict[tuple[int, int], "CacheKey | None"],
        collected: list[dict[int, RunResult]],
        faulted: list[dict[int, ProbeFault]],
        failed: list[bool],
        early_exit: bool,
    ) -> None:
        """Thread sharding with bounded, lazy submission.

        The thread pool is process-wide and may be wider than this
        engine's ``parallel`` (grown by a wider engine, never shrunk).
        Submitting lazily — at most ``parallel`` runs in flight, the
        next entering as one completes — keeps ``parallel`` a true
        per-engine bound on backend concurrency regardless of the
        shared width, and sharpens early exit: a failed probe's
        not-yet-submitted siblings are simply never submitted (the
        eager version could only race to cancel them), while
        already-running siblings are still cancelled best-effort.

        With an active fault policy each run goes through
        :func:`guarded_run` on its worker thread (timeout + retries);
        exhausted runs are quarantined (degrade) or abort the batch
        (fail). Faults never trigger early exit — only a decided
        failure cancels a probe's siblings.
        """
        fault_policy = self.fault_policy
        if fault_policy is not None and not fault_policy.active:
            fault_policy = None
        pool = self._pool("thread")
        position = 0
        active: "dict[concurrent.futures.Future, tuple[int, int, InterpositionPolicy]]" = {}

        def start(policy: InterpositionPolicy, replica: int):
            if fault_policy is not None:
                return pool.submit(
                    guarded_run, backend, workload, policy, replica,
                    fault_policy,
                )
            return pool.submit(backend.run, workload, policy, replica=replica)

        def submit_ready() -> None:
            nonlocal position, pool
            while position < len(tasks) and len(active) < self.parallel:
                probe_index, replica, policy, _key = tasks[position]
                position += 1
                if early_exit and failed[probe_index]:
                    continue  # a sibling already failed: never submit
                try:
                    future = start(policy, replica)
                except RuntimeError:
                    # The shared pool was shut down under us
                    # (shutdown_worker_pools from another thread).
                    # Its in-flight runs completed — shutdown waits —
                    # so transparently re-fetch the replacement pool
                    # and resubmit; a second failure is a real
                    # interpreter-shutdown and propagates.
                    pool = self._pool("thread")
                    future = start(policy, replica)
                active[future] = (probe_index, replica, policy)

        submit_ready()
        try:
            while active:
                done, _ = concurrent.futures.wait(
                    active, return_when=concurrent.futures.FIRST_COMPLETED
                )
                for future in done:
                    probe_index, replica, policy = active.pop(future)
                    try:
                        result = future.result()
                    except concurrent.futures.CancelledError:
                        continue
                    if fault_policy is not None:
                        outcome = result
                        self._notify_retries(
                            workload, policy, replica, outcome.failures,
                            recovered=outcome.result is not None,
                        )
                        if outcome.faulted:
                            fault = outcome.fault(workload, policy, replica)
                            self._account_fault(fault)
                            if not fault_policy.degrade:
                                raise ProbeFaultError(fault)
                            faulted[probe_index][replica] = fault
                            continue
                        result = outcome.result
                    self._record(keys[(probe_index, replica)], result, policy)
                    collected[probe_index][replica] = result
                    if early_exit and not result.success \
                            and not failed[probe_index]:
                        failed[probe_index] = True
                        for other, (other_probe, _, _) in active.items():
                            if other_probe == probe_index:
                                other.cancel()
                submit_ready()
        except BaseException:
            # Mirror the serial path: a backend error ends the batch;
            # don't let queued runs keep executing on discarded.
            for other in active:
                other.cancel()
            raise

    def _dispatch_process_chunks(
        self,
        backend: ExecutionBackend,
        workload: Workload,
        tasks: Sequence[tuple[int, int, InterpositionPolicy, "CacheKey | None"]],
        keys: dict[tuple[int, int], "CacheKey | None"],
        collected: list[dict[int, RunResult]],
        faulted: list[dict[int, ProbeFault]],
        failed: list[bool],
        early_exit: bool,
    ) -> None:
        """Process sharding: runs ship in contiguous chunks.

        Chunking amortizes the per-task IPC cost (the backend pickles
        once per chunk, not once per run) while still cutting the
        batch finely enough — several chunks per worker — that the
        pool load-balances. Early exit degrades gracefully to chunk
        granularity: workers skip the later replicas of probes that
        fail within their own chunk, and cross-chunk failures simply
        run to completion (a ``ProcessPoolExecutor`` cannot retract
        work it has already queued to a child anyway).

        A dead worker no longer poisons the batch: on
        ``BrokenProcessPool`` the engine drains the surviving results,
        retires the broken shared pool, fetches a fresh one, and
        re-enqueues only the lost runs — as singleton chunks, so a
        poison run that kills its worker takes no innocent chunk-mates
        down with it. Each run is re-enqueued at most ``retries + 1``
        times (one rebuild without a fault policy); beyond that it is
        a ``worker-crash`` fault — quarantined under degrade, raised
        otherwise.
        """
        if not tasks:
            return
        fault_policy = self.fault_policy
        if fault_policy is not None and not fault_policy.active:
            fault_policy = None
        pool = self._pool("process")
        per_chunk = max(
            1, -(-len(tasks) // (self.parallel * _CHUNKS_PER_WORKER))
        )
        chunks = [
            [
                (probe_index, replica, policy)
                for probe_index, replica, policy, _key in tasks[start:start + per_chunk]
            ]
            for start in range(0, len(tasks), per_chunk)
        ]
        policies = {
            (probe_index, replica): policy
            for probe_index, replica, policy, _key in tasks
        }
        #: How often one lost run may be re-enqueued onto a fresh pool.
        max_requeues = (fault_policy.retries if fault_policy else 0) + 1
        requeues: dict[tuple[int, int], int] = {}
        rebuilds = 0

        def submit(chunk):
            nonlocal pool
            try:
                return pool.submit(
                    _execute_chunk, backend, workload, chunk, early_exit,
                    fault_policy,
                )
            except RuntimeError:
                # The shared pool was shut down under us, or a worker
                # died before this chunk was accepted (BrokenProcessPool
                # is a RuntimeError): retire the dead pool — else the
                # re-fetch hands back the same broken one — and retry
                # once on a fresh pool. Chunks the broken pool had
                # already accepted surface as lost runs in the wait
                # loop and are re-enqueued there.
                _replace_broken_process_pool(pool)
                pool = self._pool("process")
                return pool.submit(
                    _execute_chunk, backend, workload, chunk, early_exit,
                    fault_policy,
                )

        def consume(rows) -> None:
            for probe_index, replica, row in rows:
                if isinstance(row, ProbeFault):
                    self._account_fault(row)
                    faulted[probe_index][replica] = row
                    continue
                self._record(
                    keys[(probe_index, replica)], row,
                    policies[(probe_index, replica)],
                )
                collected[probe_index][replica] = row
                if early_exit and not row.success:
                    failed[probe_index] = True

        futures = {submit(chunk): chunk for chunk in chunks}
        try:
            while futures:
                done, _ = concurrent.futures.wait(
                    futures, return_when=concurrent.futures.FIRST_COMPLETED
                )
                lost: list[tuple[int, int, InterpositionPolicy]] = []
                pool_error: "BaseException | None" = None
                for future in done:
                    chunk = futures.pop(future)
                    try:
                        rows = future.result()
                    except concurrent.futures.CancelledError:
                        continue
                    except BrokenProcessPool as error:
                        lost.extend(chunk)
                        pool_error = error
                        continue
                    consume(rows)
                if pool_error is None:
                    continue
                # The pool is broken, which dooms every remaining
                # future with it. Drain them all now — survivors that
                # completed before the break keep their results — so
                # the pool is rebuilt exactly once per break.
                for future, chunk in list(futures.items()):
                    try:
                        rows = future.result()
                    except (
                        BrokenProcessPool,
                        concurrent.futures.CancelledError,
                    ):
                        lost.extend(chunk)
                    else:
                        consume(rows)
                futures.clear()
                rebuilds += 1
                _replace_broken_process_pool(pool)
                pool = self._pool("process")
                requeued = 0
                for probe_index, replica, policy in lost:
                    if (
                        replica in collected[probe_index]
                        or replica in faulted[probe_index]
                    ):
                        continue  # already answered by another chunk
                    count = requeues.get((probe_index, replica), 0)
                    if count < max_requeues:
                        requeues[(probe_index, replica)] = count + 1
                        requeued += 1
                        # Singleton chunk: isolate the potential poison
                        # run so it cannot take chunk-mates down again.
                        task = (probe_index, replica, policy)
                        futures[submit([task])] = [task]
                        continue
                    fault = ProbeFault(
                        workload=workload.name,
                        probe=policy.describe(),
                        replica=replica,
                        kind=FAULT_WORKER_CRASH,
                        attempts=count + 1,
                        detail="worker process died on every attempt",
                    )
                    self._account_fault(fault)
                    if fault_policy is None or not fault_policy.degrade:
                        raise ProbeFaultError(fault) from pool_error
                    faulted[probe_index][replica] = fault
                self._notify(PoolRecoveredNotice(
                    lost_runs=requeued, rebuilds=rebuilds,
                ))
        except BaseException:
            for other in futures:
                other.cancel()
            raise

    def _dispatch_remote_chunks(
        self,
        backend: ExecutionBackend,
        workload: Workload,
        tasks: Sequence[tuple[int, int, InterpositionPolicy, "CacheKey | None"]],
        keys: dict[tuple[int, int], "CacheKey | None"],
        collected: list[dict[int, RunResult]],
        faulted: list[dict[int, ProbeFault]],
        failed: list[bool],
        early_exit: bool,
    ) -> None:
        """Fleet sharding: process chunking with the pipe replaced by TCP.

        Chunks are the same ``_execute_chunk`` jobs the process pool
        ships, sized to the *fleet* width (chunks per worker, not per
        local thread). The failure contract mirrors the process path
        one-for-one: a worker that dies — SIGKILL, network partition,
        heartbeat silence — surfaces its chunk as *lost*, and the lost
        runs are re-enqueued on the survivors as singleton chunks
        under the same ``retries + 1`` budget; beyond it they become
        ``worker-crash`` faults (quarantined under degrade, raised
        otherwise). A chunk whose execution *itself* raised re-raises
        here exactly as a process future would.
        """
        if not tasks:
            return
        fault_policy = self.fault_policy
        if fault_policy is not None and not fault_policy.active:
            fault_policy = None
        fabric = self._fabric_client()
        width = max(1, fabric.worker_count)
        per_chunk = max(1, -(-len(tasks) // (width * _CHUNKS_PER_WORKER)))
        chunks = [
            [
                (probe_index, replica, policy)
                for probe_index, replica, policy, _key in tasks[start:start + per_chunk]
            ]
            for start in range(0, len(tasks), per_chunk)
        ]
        policies = {
            (probe_index, replica): policy
            for probe_index, replica, policy, _key in tasks
        }
        max_requeues = (fault_policy.retries if fault_policy else 0) + 1
        requeues: dict[tuple[int, int], int] = {}
        deaths = 0

        def consume(rows) -> None:
            for probe_index, replica, row in rows:
                if isinstance(row, ProbeFault):
                    self._account_fault(row)
                    faulted[probe_index][replica] = row
                    continue
                self._record(
                    keys[(probe_index, replica)], row,
                    policies[(probe_index, replica)],
                )
                collected[probe_index][replica] = row
                if early_exit and not row.success:
                    failed[probe_index] = True

        inflight: dict[int, list] = {}
        try:
            for chunk in chunks:
                job = (backend, workload, chunk, early_exit, fault_policy)
                inflight[fabric.submit(job)] = chunk
            while inflight:
                event, chunk_id, body = fabric.next_event()
                chunk = inflight.pop(chunk_id, None)
                if chunk is None:
                    continue
                if event == "done":
                    consume(body)
                    continue
                if event == "failed":
                    # The chunk executed and raised (a fail-mode
                    # ProbeFaultError, a raw backend error): same
                    # propagation as ``future.result()``.
                    raise body
                # "lost": the worker died holding this chunk.
                deaths += 1
                requeued = 0
                for probe_index, replica, policy in chunk:
                    if (
                        replica in collected[probe_index]
                        or replica in faulted[probe_index]
                    ):
                        continue
                    count = requeues.get((probe_index, replica), 0)
                    if count < max_requeues:
                        requeues[(probe_index, replica)] = count + 1
                        requeued += 1
                        # Singleton chunk, exactly like the process
                        # path: a poison run cannot take chunk-mates
                        # down twice.
                        task = (probe_index, replica, policy)
                        job = (
                            backend, workload, [task], early_exit,
                            fault_policy,
                        )
                        inflight[fabric.submit(job)] = [task]
                        continue
                    fault = ProbeFault(
                        workload=workload.name,
                        probe=policy.describe(),
                        replica=replica,
                        kind=FAULT_WORKER_CRASH,
                        attempts=count + 1,
                        detail="remote worker died on every attempt",
                    )
                    self._account_fault(fault)
                    if fault_policy is None or not fault_policy.degrade:
                        raise ProbeFaultError(fault) from body
                    faulted[probe_index][replica] = fault
                self._notify(PoolRecoveredNotice(
                    lost_runs=requeued, rebuilds=deaths,
                ))
        except BaseException:
            # Chunks may still be in flight on live workers; dropping
            # the connection now (workers tolerate a scheduler hangup)
            # keeps their late results from leaking into the next
            # batch. The next remote dispatch reconnects.
            self._close_fabric()
            raise
