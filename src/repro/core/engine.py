"""The probe execution engine: parallel run scheduling + result caching.

The paper's run-time model (Section 3.3, ``(2 + 2·t·s) · ceil(r/p)``)
assumes Loupe amortizes its run cost over a parallelism factor ``p``.
This module supplies that ``p``: a :class:`ProbeEngine` turns the
analyzer's implicit run loop into an explicit scheduler that

* fans ``(policy, replica)`` run requests out over a configurable
  worker pool (``parallel=1`` preserves exact serial semantics),
* short-circuits the remaining replicas of a probe as soon as one
  replica fails — the conservative merge in
  :class:`~repro.core.replicas.ProbeOutcome` only needs a single
  failure, and metric samples are only consumed on success,
* memoizes :class:`~repro.core.runner.RunResult`s in an LRU cache
  keyed by ``(backend.name, workload.name, policy.fingerprint(),
  replica)``, so the combined-run confirmation and the ddmin conflict
  bisection never re-pay for a run the probe phase already executed.

Correctness contract: a run may only be answered from the cache when
the backend is deterministic for a fixed ``(workload, policy,
replica)`` triple. Backends declare this with a ``deterministic``
attribute (the simulation backend sets it — it is deterministic by
construction); backends that do not declare it — notably the real
ptrace backend, whose runs are replicated precisely *because* they
are not reproducible — are never served from the cache, even when
caching is enabled. Under that contract the cache never changes
*what* an analysis concludes, only how many runs it takes to conclude
it. Cache keys assume ``backend.name`` uniquely identifies the
application build — callers analyzing two different programs behind
identically-named backends must use separate engines (the
:class:`~repro.core.analyzer.Analyzer` clears its engine at the start
of every analysis for exactly this reason).

Run submission (:meth:`ProbeEngine.run` / :meth:`ProbeEngine.run_replicas`)
is thread-safe; the engine is shared freely between worker threads.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import threading
from collections import OrderedDict
from collections.abc import Sequence

from repro.core.policy import InterpositionPolicy
from repro.core.replicas import ProbeOutcome, aggregate
from repro.core.runner import ExecutionBackend, RunResult, backend_name
from repro.core.workload import Workload

#: Default LRU capacity: comfortably holds every run of one analysis
#: (hundreds of features x 2 actions x a handful of replicas).
DEFAULT_CACHE_SIZE = 4096

#: Cache key: (backend name, workload name, policy fingerprint, replica).
CacheKey = tuple[str, str, str, int]


@dataclasses.dataclass(frozen=True)
class EngineStats:
    """Immutable snapshot of one engine's run accounting.

    ``runs_requested`` counts every run the analysis asked for;
    ``runs_executed`` the subset that actually reached the backend;
    ``cache_hits`` the subset answered from the LRU; ``replicas_skipped``
    the replicas never requested because an earlier replica of the same
    probe already failed (early exit).
    """

    runs_requested: int = 0
    runs_executed: int = 0
    cache_hits: int = 0
    replicas_skipped: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of requested runs answered from the cache."""
        if self.runs_requested == 0:
            return 0.0
        return self.cache_hits / self.runs_requested

    def describe(self) -> str:
        return (
            f"{self.runs_requested} run(s) requested, "
            f"{self.runs_executed} executed, "
            f"{self.cache_hits} cache hit(s) ({self.hit_rate:.0%}), "
            f"{self.replicas_skipped} replica(s) early-exited"
        )


class ProbeEngine:
    """Schedules probe runs over a worker pool with an LRU result cache.

    Parameters
    ----------
    parallel:
        Worker-pool width. ``1`` (the default) runs every replica
        inline on the calling thread, byte-for-byte preserving the
        serial execution order; ``N > 1`` fans the replicas of each
        probe out over ``N`` ``ThreadPoolExecutor`` workers.
    cache:
        Enable the LRU run cache. Disabling it forces every request
        through the backend (useful for benchmarking the raw run cost).
        Even when enabled, only backends declaring
        ``deterministic = True`` are ever answered from the cache.
    cache_size:
        Maximum cached :class:`RunResult`s before least-recently-used
        eviction.
    """

    def __init__(
        self,
        *,
        parallel: int = 1,
        cache: bool = True,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        if parallel < 1:
            raise ValueError("parallel must be >= 1")
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        self.parallel = parallel
        self.cache_enabled = cache
        self.cache_size = cache_size
        self._lock = threading.Lock()
        self._cache: OrderedDict[CacheKey, RunResult] = OrderedDict()
        self._requested = 0
        self._executed = 0
        self._hits = 0
        self._skipped = 0
        self._executor: concurrent.futures.ThreadPoolExecutor | None = None

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "ProbeEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _pool(self) -> concurrent.futures.ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = concurrent.futures.ThreadPoolExecutor(
                    max_workers=self.parallel,
                    thread_name_prefix="loupe-probe",
                )
            return self._executor

    # -- accounting --------------------------------------------------------

    @property
    def stats(self) -> EngineStats:
        """A consistent snapshot of the run accounting so far."""
        with self._lock:
            return EngineStats(
                runs_requested=self._requested,
                runs_executed=self._executed,
                cache_hits=self._hits,
                replicas_skipped=self._skipped,
            )

    def reset(self) -> None:
        """Drop the cache and zero the statistics."""
        with self._lock:
            self._cache.clear()
            self._requested = 0
            self._executed = 0
            self._hits = 0
            self._skipped = 0

    def cached_runs(self) -> int:
        with self._lock:
            return len(self._cache)

    # -- the run API -------------------------------------------------------

    @staticmethod
    def _key(
        backend: ExecutionBackend,
        workload: Workload,
        policy: InterpositionPolicy,
        replica: int,
    ) -> CacheKey:
        return (
            backend_name(backend), workload.name,
            policy.fingerprint(), replica,
        )

    def run(
        self,
        backend: ExecutionBackend,
        workload: Workload,
        policy: InterpositionPolicy,
        replica: int = 0,
    ) -> RunResult:
        """One run, answered from the cache when possible.

        Caching requires the backend to declare ``deterministic =
        True``; a fresh execution of a nondeterministic backend is the
        whole point of replication, so its results are never memoized.
        """
        cacheable = self.cache_enabled and getattr(
            backend, "deterministic", False
        )
        if cacheable:
            key = self._key(backend, workload, policy, replica)
            with self._lock:
                self._requested += 1
                hit = self._cache.get(key)
                if hit is not None:
                    self._cache.move_to_end(key)
                    self._hits += 1
                    return hit
        else:
            key = None
            with self._lock:
                self._requested += 1
        result = backend.run(workload, policy, replica=replica)
        with self._lock:
            self._executed += 1
            if cacheable:
                self._cache[key] = result
                self._cache.move_to_end(key)
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
        return result

    def run_replicas(
        self,
        backend: ExecutionBackend,
        workload: Workload,
        policy: InterpositionPolicy,
        replicas: int,
        *,
        early_exit: bool = True,
    ) -> ProbeOutcome:
        """Run *replicas* executions of one probe and aggregate them.

        With ``early_exit`` (the default) the remaining replicas of a
        probe are abandoned as soon as one replica fails: the
        conservative merge needs only a single failure, and metric
        samples are only consumed on all-success outcomes. Results
        always appear in replica-index order, so an all-success
        parallel outcome is identical to the serial one.

        Fan-out additionally requires the backend to declare
        ``parallel_safe = True``: overlapping replicas of a live
        command (the ptrace backend) would contend on ports and
        on-disk state and corrupt each other's outcomes, so
        undeclared backends always run their replicas serially no
        matter how wide the pool is.
        """
        if replicas < 1:
            raise ValueError("need at least one replica")
        parallel_safe = getattr(backend, "parallel_safe", False)
        if self.parallel == 1 or replicas == 1 or not parallel_safe:
            results = self._run_serial(
                backend, workload, policy, replicas, early_exit
            )
        else:
            results = self._run_parallel(
                backend, workload, policy, replicas, early_exit
            )
        return aggregate(results)

    # -- execution strategies ----------------------------------------------

    def _run_serial(
        self,
        backend: ExecutionBackend,
        workload: Workload,
        policy: InterpositionPolicy,
        replicas: int,
        early_exit: bool,
    ) -> Sequence[RunResult]:
        results: list[RunResult] = []
        for index in range(replicas):
            result = self.run(backend, workload, policy, index)
            results.append(result)
            if early_exit and not result.success:
                with self._lock:
                    self._skipped += replicas - index - 1
                break
        return results

    def _run_parallel(
        self,
        backend: ExecutionBackend,
        workload: Workload,
        policy: InterpositionPolicy,
        replicas: int,
        early_exit: bool,
    ) -> Sequence[RunResult]:
        pool = self._pool()
        futures = {
            pool.submit(self.run, backend, workload, policy, index): index
            for index in range(replicas)
        }
        collected: dict[int, RunResult] = {}
        failed = False
        for future in concurrent.futures.as_completed(futures):
            try:
                result = future.result()
            except concurrent.futures.CancelledError:
                continue
            except BaseException:
                # Mirror the serial path: a backend error ends the
                # probe; don't let sibling replicas run on discarded.
                for other in futures:
                    other.cancel()
                raise
            collected[futures[future]] = result
            if early_exit and not result.success and not failed:
                failed = True
                cancelled = sum(
                    1
                    for other in futures
                    if other is not future and other.cancel()
                )
                if cancelled:
                    with self._lock:
                        self._skipped += cancelled
        return [collected[index] for index in sorted(collected)]
