"""Analysis result model: what a Loupe run of one application produces.

An :class:`AnalysisResult` is the unit stored in the loupedb-style
database, consumed by the support-plan engine and by every study in
Section 5. It records, per traced feature, the stub/fake decision and
the measured performance/resource impact of each technique.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Mapping
from typing import Any

from repro.core.decisions import Decision, Verdict
from repro.core.faults import ProbeFault
from repro.core.metrics import ImpactSummary, MetricComparison, SampleStats
from repro.core.workload import WorkloadKind
from repro.syscalls import parse_qualified


@dataclasses.dataclass(frozen=True)
class FeatureReport:
    """Everything the analysis learned about one OS feature."""

    feature: str                     # "futex", "fcntl:F_SETFD", or "/dev/urandom"
    traced_count: int
    decision: Decision
    stub_impact: ImpactSummary | None = None
    fake_impact: ImpactSummary | None = None
    notes: tuple[str, ...] = ()

    @property
    def verdict(self) -> Verdict:
        return self.decision.verdict

    @property
    def syscall(self) -> str:
        """The parent syscall name ('' for pseudo-files)."""
        if self.feature.startswith("/"):
            return ""
        name, _ = parse_qualified(self.feature)
        return name

    @property
    def is_pseudofile(self) -> bool:
        return self.feature.startswith("/")

    @property
    def is_subfeature(self) -> bool:
        return ":" in self.feature and not self.is_pseudofile

    @property
    def has_metric_impact(self) -> bool:
        """True when stubbing or faking moved any guarded metric."""
        for impact in (self.stub_impact, self.fake_impact):
            if impact is not None and not impact.clean:
                return True
        return False


@dataclasses.dataclass(frozen=True)
class BaselineStats:
    """Passthrough-run statistics the impacts are measured against."""

    metric: SampleStats
    fd: SampleStats
    mem: SampleStats


@dataclasses.dataclass(frozen=True)
class AnalysisResult:
    """Complete output of analyzing one (application, workload) pair."""

    app: str
    app_version: str
    workload: str
    workload_kind: WorkloadKind
    backend: str
    replicas: int
    features: Mapping[str, FeatureReport]
    baseline: BaselineStats
    final_run_ok: bool = True
    conflicts: tuple[tuple[str, ...], ...] = ()
    #: The campaign's quarantine list: every run the fault policy gave
    #: up on under ``on_fault="degrade"`` (empty for fault-free
    #: campaigns and under ``"fail"``, which aborts instead).
    faults: tuple[ProbeFault, ...] = ()

    # -- feature-set views (all at whole-syscall granularity) -------------

    def _syscall_reports(self) -> Iterable[FeatureReport]:
        return (
            r for r in self.features.values()
            if not r.is_pseudofile and not r.is_subfeature
        )

    def traced_syscalls(self) -> frozenset[str]:
        """Every syscall invoked under the workload (naive dynamic view)."""
        return frozenset(r.feature for r in self._syscall_reports())

    def required_syscalls(self) -> frozenset[str]:
        """Syscalls that must be implemented (neither stub nor fake works)."""
        return frozenset(
            r.feature for r in self._syscall_reports() if r.decision.required
        )

    def stubbable_syscalls(self) -> frozenset[str]:
        return frozenset(
            r.feature for r in self._syscall_reports() if r.decision.can_stub
        )

    def fakeable_syscalls(self) -> frozenset[str]:
        return frozenset(
            r.feature for r in self._syscall_reports() if r.decision.can_fake
        )

    def avoidable_syscalls(self) -> frozenset[str]:
        """Syscalls needing no implementation (stubbable or fakeable)."""
        return frozenset(
            r.feature for r in self._syscall_reports() if r.decision.avoidable
        )

    def pseudo_files(self) -> frozenset[str]:
        return frozenset(r.feature for r in self.features.values() if r.is_pseudofile)

    def subfeature_reports(self) -> tuple[FeatureReport, ...]:
        return tuple(r for r in self.features.values() if r.is_subfeature)

    def impacted_features(self) -> tuple[FeatureReport, ...]:
        """Features whose stub/fake moved a guarded metric (Table 2 rows)."""
        return tuple(
            r for r in self.features.values() if r.has_metric_impact
        )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        data = {
            "app": self.app,
            "app_version": self.app_version,
            "workload": self.workload,
            "workload_kind": self.workload_kind.value,
            "backend": self.backend,
            "replicas": self.replicas,
            "final_run_ok": self.final_run_ok,
            "conflicts": [list(group) for group in self.conflicts],
            "baseline": _baseline_to_dict(self.baseline),
            "features": {
                name: _report_to_dict(report)
                for name, report in sorted(self.features.items())
            },
        }
        if self.faults:
            # Omitted when empty: fault-free results stay byte-identical
            # to the pre-fault record format.
            data["faults"] = [fault.to_dict() for fault in self.faults]
        return data

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "AnalysisResult":
        return AnalysisResult(
            app=data["app"],
            app_version=data["app_version"],
            workload=data["workload"],
            workload_kind=WorkloadKind(data["workload_kind"]),
            backend=data["backend"],
            replicas=int(data["replicas"]),
            final_run_ok=bool(data["final_run_ok"]),
            conflicts=tuple(tuple(group) for group in data.get("conflicts", [])),
            baseline=_baseline_from_dict(data["baseline"]),
            features={
                name: _report_from_dict(payload)
                for name, payload in data["features"].items()
            },
            faults=tuple(
                ProbeFault.from_dict(payload)
                for payload in data.get("faults", ())
            ),
        )


# -- serialization helpers ---------------------------------------------------


def _stats_to_dict(stats: SampleStats) -> dict[str, float]:
    return {"n": stats.n, "mean": stats.mean, "std": stats.std}


def _stats_from_dict(data: Mapping[str, Any]) -> SampleStats:
    return SampleStats(n=int(data["n"]), mean=float(data["mean"]), std=float(data["std"]))


def _baseline_to_dict(baseline: BaselineStats) -> dict[str, Any]:
    return {
        "metric": _stats_to_dict(baseline.metric),
        "fd": _stats_to_dict(baseline.fd),
        "mem": _stats_to_dict(baseline.mem),
    }


def _baseline_from_dict(data: Mapping[str, Any]) -> BaselineStats:
    return BaselineStats(
        metric=_stats_from_dict(data["metric"]),
        fd=_stats_from_dict(data["fd"]),
        mem=_stats_from_dict(data["mem"]),
    )


def _comparison_to_dict(comparison: MetricComparison | None) -> dict[str, Any] | None:
    if comparison is None:
        return None
    return {
        "baseline": _stats_to_dict(comparison.baseline),
        "variant": _stats_to_dict(comparison.variant),
        "delta": comparison.delta,
        "significant": comparison.significant,
    }


def _comparison_from_dict(data: Mapping[str, Any] | None) -> MetricComparison | None:
    if data is None:
        return None
    return MetricComparison(
        baseline=_stats_from_dict(data["baseline"]),
        variant=_stats_from_dict(data["variant"]),
        delta=float(data["delta"]),
        significant=bool(data["significant"]),
    )


def _impact_to_dict(impact: ImpactSummary | None) -> dict[str, Any] | None:
    if impact is None:
        return None
    return {
        "perf": _comparison_to_dict(impact.perf),
        "fd": _comparison_to_dict(impact.fd),
        "mem": _comparison_to_dict(impact.mem),
    }


def _impact_from_dict(data: Mapping[str, Any] | None) -> ImpactSummary | None:
    if data is None:
        return None
    return ImpactSummary(
        perf=_comparison_from_dict(data.get("perf")),
        fd=_comparison_from_dict(data.get("fd")),
        mem=_comparison_from_dict(data.get("mem")),
    )


def _report_to_dict(report: FeatureReport) -> dict[str, Any]:
    data = {
        "feature": report.feature,
        "traced_count": report.traced_count,
        "can_stub": report.decision.can_stub,
        "can_fake": report.decision.can_fake,
        "stub_impact": _impact_to_dict(report.stub_impact),
        "fake_impact": _impact_to_dict(report.fake_impact),
        "notes": list(report.notes),
    }
    if report.decision.undecided:
        # Omitted when False, keeping decided reports byte-identical
        # to the pre-fault record format.
        data["undecided"] = True
    return data


def _report_from_dict(data: Mapping[str, Any]) -> FeatureReport:
    return FeatureReport(
        feature=data["feature"],
        traced_count=int(data["traced_count"]),
        decision=Decision(
            can_stub=bool(data["can_stub"]),
            can_fake=bool(data["can_fake"]),
            undecided=bool(data.get("undecided", False)),
        ),
        stub_impact=_impact_from_dict(data.get("stub_impact")),
        fake_impact=_impact_from_dict(data.get("fake_impact")),
        notes=tuple(data.get("notes", ())),
    )
