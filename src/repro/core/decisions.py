"""The stub/fake decision lattice.

For every OS feature Loupe traces, the analysis derives two independent
bits: *can the feature be stubbed* (return ``-ENOSYS`` without running
it) and *can it be faked* (return a success code without running it) —
while the application still passes its workload reliably. From those
bits the paper derives four reporting buckets (Figure 4):

* ``REQUIRED``  — traced, neither stubbable nor fakeable: must implement.
* ``STUB_ONLY`` — stubbing works, faking does not.
* ``FAKE_ONLY`` — faking works, stubbing does not.
* ``ANY``       — either technique works.

Replica merging is **conservative**: a feature keeps a capability only
if every replica agreed (Section 3.1: "the result of the analysis is
conservatively updated to take all results into account").
"""

from __future__ import annotations

import dataclasses
import enum


class Verdict(enum.Enum):
    """Reporting bucket of a traced feature."""

    REQUIRED = "required"
    STUB_ONLY = "stub-only"
    FAKE_ONLY = "fake-only"
    ANY = "any"
    #: The probes could not decide: replicas faulted (timed out,
    #: crashed their worker, ...) without any observed genuine
    #: failure. Treated like REQUIRED for planning (conservative) but
    #: reported distinctly — the right response is re-running, not
    #: implementing.
    UNDECIDED = "undecided"

    @property
    def avoidable(self) -> bool:
        """True when the feature does not need a real implementation.

        An undecided feature is *not* avoidable: absence of evidence
        keeps it conservatively required until probes actually decide.
        """
        return self not in (Verdict.REQUIRED, Verdict.UNDECIDED)


@dataclasses.dataclass(frozen=True)
class Decision:
    """Outcome of the stub/fake probes for one feature.

    ``can_stub``/``can_fake`` mean: across all replicas, the workload
    passed with the feature stubbed/faked *and* no disqualifying metric
    regression was observed (when metric guarding is enabled).
    ``undecided`` marks capabilities withheld for lack of evidence —
    probe replicas faulted rather than failed — instead of by an
    observed failure; it never *grants* a capability.
    """

    can_stub: bool
    can_fake: bool
    undecided: bool = False

    @property
    def verdict(self) -> Verdict:
        if self.can_stub and self.can_fake:
            return Verdict.ANY
        if self.can_stub:
            return Verdict.STUB_ONLY
        if self.can_fake:
            return Verdict.FAKE_ONLY
        if self.undecided:
            return Verdict.UNDECIDED
        return Verdict.REQUIRED

    @property
    def required(self) -> bool:
        return not (self.can_stub or self.can_fake)

    @property
    def avoidable(self) -> bool:
        return self.can_stub or self.can_fake

    def merge(self, other: "Decision") -> "Decision":
        """Conservative combination across replicas (logical AND);
        uncertainty on either side survives the merge."""
        return Decision(
            can_stub=self.can_stub and other.can_stub,
            can_fake=self.can_fake and other.can_fake,
            undecided=self.undecided or other.undecided,
        )

    @staticmethod
    def optimistic() -> "Decision":
        """Identity element for :meth:`merge` folds."""
        return Decision(can_stub=True, can_fake=True)

    @staticmethod
    def required_decision() -> "Decision":
        """Absorbing element for :meth:`merge` folds."""
        return Decision(can_stub=False, can_fake=False)


def merge_all(decisions: "list[Decision] | tuple[Decision, ...]") -> Decision:
    """Fold replicas conservatively; empty input is an error.

    An empty fold would silently claim "stubbable and fakeable", which
    is exactly the optimistic mistake conservative merging exists to
    prevent — so we refuse it.
    """
    if not decisions:
        raise ValueError("cannot merge an empty set of decisions")
    merged = Decision.optimistic()
    for decision in decisions:
        merged = merged.merge(decision)
    return merged
