"""Interposition policies: what to do with each OS feature during a run.

A policy maps features to one of three actions:

* ``PASSTHROUGH`` — let the kernel execute the syscall normally.
* ``STUB``        — do not execute; return ``-ENOSYS``.
* ``FAKE``        — do not execute; return a syscall-specific success code.

Features are addressed at three granularities, mirroring the paper:

* whole syscalls (``"futex"``),
* sub-features of vectored syscalls (``"fcntl:F_SETFD"``, Section 5.4),
* pseudo-file path prefixes (``"/proc"``, ``"/dev/random"``, Section 3.3).

Sub-feature actions take precedence over their parent syscall's action,
so a policy can pass ``fcntl`` through while stubbing only ``F_SETFD``.
"""

from __future__ import annotations

import dataclasses
import enum
from collections.abc import Iterable, Mapping

from repro.errors import PolicyError
from repro.syscalls import exists, parse_qualified


class Action(enum.Enum):
    """What the interposition layer does when the feature is invoked."""

    PASSTHROUGH = "passthrough"
    STUB = "stub"
    FAKE = "fake"


class FakeStrategy(enum.Enum):
    """How to forge a success return value for a faked syscall.

    The paper fakes with "a success code (typically system-call
    specific)". Returning 0 is right for most calls, but e.g. a faked
    ``write`` must claim it wrote the requested byte count or callers
    will loop forever, and a faked ``brk`` must echo the requested
    break address or the libc will conclude it failed.
    """

    ZERO = "zero"              # return 0
    FIRST_ARG = "first-arg"    # echo argument 0 (brk)
    LENGTH_ARG3 = "arg3"       # echo argument 2, the usual length slot (write, send)
    FAKE_FD = "fake-fd"        # return a plausibly-valid descriptor number
    FAKE_PID = "fake-pid"      # return a plausibly-valid pid/tid


#: Per-syscall fake strategies; anything absent uses ``ZERO``.
FAKE_STRATEGIES: dict[str, FakeStrategy] = {
    "brk": FakeStrategy.FIRST_ARG,
    "write": FakeStrategy.LENGTH_ARG3,
    "pwrite64": FakeStrategy.LENGTH_ARG3,
    "send": FakeStrategy.LENGTH_ARG3,
    "sendto": FakeStrategy.LENGTH_ARG3,
    "writev": FakeStrategy.LENGTH_ARG3,
    "read": FakeStrategy.ZERO,
    "socket": FakeStrategy.FAKE_FD,
    "accept": FakeStrategy.FAKE_FD,
    "accept4": FakeStrategy.FAKE_FD,
    "openat": FakeStrategy.FAKE_FD,
    "open": FakeStrategy.FAKE_FD,
    "epoll_create": FakeStrategy.FAKE_FD,
    "epoll_create1": FakeStrategy.FAKE_FD,
    "eventfd2": FakeStrategy.FAKE_FD,
    "timerfd_create": FakeStrategy.FAKE_FD,
    "dup": FakeStrategy.FAKE_FD,
    "clone": FakeStrategy.FAKE_PID,
    "fork": FakeStrategy.FAKE_PID,
    "vfork": FakeStrategy.FAKE_PID,
    "getpid": FakeStrategy.FAKE_PID,
    "gettid": FakeStrategy.FAKE_PID,
    "set_tid_address": FakeStrategy.FAKE_PID,
}


def fake_strategy(syscall: str) -> FakeStrategy:
    """The forged-success strategy for *syscall*."""
    return FAKE_STRATEGIES.get(syscall, FakeStrategy.ZERO)


def _validate_feature(feature: str) -> None:
    syscall, _ = parse_qualified(feature)
    if not syscall.startswith("/") and not exists(syscall):
        raise PolicyError(f"policy references unknown syscall {syscall!r}")


@dataclasses.dataclass(frozen=True)
class InterpositionPolicy:
    """Immutable assignment of actions to features.

    ``syscall_actions`` keys are syscall names; ``subfeature_actions``
    keys are ``syscall:OPERATION`` strings; ``pseudofile_actions`` keys
    are absolute path prefixes. Unlisted features pass through.
    """

    syscall_actions: Mapping[str, Action] = dataclasses.field(default_factory=dict)
    subfeature_actions: Mapping[str, Action] = dataclasses.field(default_factory=dict)
    pseudofile_actions: Mapping[str, Action] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        for feature in self.syscall_actions:
            if ":" in feature:
                raise PolicyError(
                    f"sub-feature {feature!r} belongs in subfeature_actions"
                )
            _validate_feature(feature)
        for feature in self.subfeature_actions:
            if ":" not in feature:
                raise PolicyError(f"{feature!r} is not a syscall:OPERATION key")
            _validate_feature(feature)
        for path in self.pseudofile_actions:
            if not path.startswith("/"):
                raise PolicyError(f"pseudo-file prefix {path!r} must be absolute")

    # -- lookups ---------------------------------------------------------

    def action_for(self, syscall: str, subfeature: str | None = None) -> Action:
        """Action for one invocation; sub-feature entries take precedence."""
        if subfeature is not None:
            qualified = f"{syscall}:{subfeature}"
            action = self.subfeature_actions.get(qualified)
            if action is not None:
                return action
        return self.syscall_actions.get(syscall, Action.PASSTHROUGH)

    def action_for_path(self, path: str) -> Action:
        """Action for an open-family access to *path* (longest prefix wins)."""
        best: tuple[int, Action] | None = None
        for prefix, action in self.pseudofile_actions.items():
            if path == prefix or path.startswith(prefix.rstrip("/") + "/"):
                candidate = (len(prefix), action)
                if best is None or candidate[0] > best[0]:
                    best = candidate
        return best[1] if best is not None else Action.PASSTHROUGH

    def action_for_feature(self, feature: str) -> Action:
        """Action for a qualified feature name of any granularity."""
        if feature.startswith("/"):
            return self.action_for_path(feature)
        syscall, operation = parse_qualified(feature)
        return self.action_for(syscall, operation)

    # -- derivation ------------------------------------------------------

    def with_feature(self, feature: str, action: Action) -> "InterpositionPolicy":
        """A copy of this policy with one extra feature assignment."""
        if feature.startswith("/"):
            merged = dict(self.pseudofile_actions)
            merged[feature] = action
            return dataclasses.replace(self, pseudofile_actions=merged)
        if ":" in feature:
            merged = dict(self.subfeature_actions)
            merged[feature] = action
            return dataclasses.replace(self, subfeature_actions=merged)
        merged = dict(self.syscall_actions)
        merged[feature] = action
        return dataclasses.replace(self, syscall_actions=merged)

    def altered_features(self) -> frozenset[str]:
        """Every feature this policy stubs or fakes."""
        altered = set()
        for mapping in (
            self.syscall_actions,
            self.subfeature_actions,
            self.pseudofile_actions,
        ):
            altered.update(f for f, a in mapping.items() if a is not Action.PASSTHROUGH)
        return frozenset(altered)

    def _shadowing_passthrough(self, kind: str, feature: str) -> bool:
        """Would dropping this explicit PASSTHROUGH entry change lookups?

        A sub-feature entry takes precedence over its parent syscall's
        action, and the longest pseudo-file prefix wins — so an explicit
        PASSTHROUGH at the finer granularity is behaviorally meaningful
        exactly when a coarser entry would otherwise stub or fake it.
        """
        if kind == "sub":
            parent = feature.partition(":")[0]
            return (
                self.syscall_actions.get(parent, Action.PASSTHROUGH)
                is not Action.PASSTHROUGH
            )
        if kind == "path":
            return any(
                action is not Action.PASSTHROUGH
                and prefix != feature
                and feature.startswith(prefix.rstrip("/") + "/")
                for prefix, action in self.pseudofile_actions.items()
            )
        return False

    def fingerprint(self) -> str:
        """A stable identity string for run-result caching.

        Two policies fingerprint identically iff they act identically on
        every feature: entries are sorted (construction order never
        matters) and explicit ``PASSTHROUGH`` assignments are dropped
        when they are indistinguishable from absence at run time — but
        kept when they shadow a coarser STUB/FAKE (a sub-feature
        overriding its parent syscall, a longer pseudo-path prefix
        overriding a shorter one). The three granularities are tagged
        so a syscall, a sub-feature and a pseudo-file path can never
        collide. Memoized: policies are immutable (every derivation
        goes through ``dataclasses.replace``), and probe engines ask
        for the same policy's fingerprint once per replica.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            return cached
        parts = []
        for tag, mapping in (
            ("sys", self.syscall_actions),
            ("sub", self.subfeature_actions),
            ("path", self.pseudofile_actions),
        ):
            for feature, action in sorted(mapping.items()):
                if action is not Action.PASSTHROUGH or self._shadowing_passthrough(
                    tag, feature
                ):
                    parts.append(f"{tag}:{feature}={action.value}")
        fingerprint = ";".join(parts) if parts else "passthrough"
        object.__setattr__(self, "_fingerprint", fingerprint)
        return fingerprint

    def describe(self) -> str:
        """Human-readable one-line summary (used in logs and reports)."""
        altered = sorted(self.altered_features())
        if not altered:
            return "passthrough"
        parts = [
            f"{feature}={self.action_for_feature(feature).value}"
            for feature in altered
        ]
        return ", ".join(parts)

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        """Lossless JSON form — unlike :meth:`fingerprint`, which is a
        one-way digest. Stored alongside cached run results so a
        record can be independently *re-executed* (``loupe cache
        verify``), not just matched."""
        return {
            "syscalls": {
                feature: action.value
                for feature, action in sorted(self.syscall_actions.items())
            },
            "subfeatures": {
                feature: action.value
                for feature, action in sorted(self.subfeature_actions.items())
            },
            "pseudofiles": {
                path: action.value
                for path, action in sorted(self.pseudofile_actions.items())
            },
        }

    @staticmethod
    def from_dict(data: Mapping) -> "InterpositionPolicy":
        """Rebuild a policy from its :meth:`to_dict` form."""
        return InterpositionPolicy(
            syscall_actions={
                feature: Action(value)
                for feature, value in dict(data.get("syscalls", {})).items()
            },
            subfeature_actions={
                feature: Action(value)
                for feature, value in dict(data.get("subfeatures", {})).items()
            },
            pseudofile_actions={
                path: Action(value)
                for path, value in dict(data.get("pseudofiles", {})).items()
            },
        )


def passthrough() -> InterpositionPolicy:
    """The baseline policy: every feature runs for real."""
    return InterpositionPolicy()


def stubbing(feature: str) -> InterpositionPolicy:
    """A policy that stubs exactly one feature."""
    return passthrough().with_feature(feature, Action.STUB)


def faking(feature: str) -> InterpositionPolicy:
    """A policy that fakes exactly one feature."""
    return passthrough().with_feature(feature, Action.FAKE)


def combined(
    stubs: Iterable[str] = (), fakes: Iterable[str] = ()
) -> InterpositionPolicy:
    """A policy stubbing *stubs* and faking *fakes* simultaneously.

    Used by the analyzer's final confirmation run. A feature listed in
    both collections is a contradiction and raises :class:`PolicyError`.
    """
    policy = passthrough()
    stub_set = set(stubs)
    fake_set = set(fakes)
    overlap = stub_set & fake_set
    if overlap:
        raise PolicyError(f"features both stubbed and faked: {sorted(overlap)}")
    for feature in sorted(stub_set):
        policy = policy.with_feature(feature, Action.STUB)
    for feature in sorted(fake_set):
        policy = policy.with_feature(feature, Action.FAKE)
    return policy
