"""The Loupe analysis algorithm (paper Section 3).

Given an application (behind an :class:`ExecutionBackend`) and a
workload, the analyzer:

1. runs the passthrough baseline N times — enumerating every invoked
   feature and collecting baseline performance/resource statistics;
2. probes each feature in isolation — N runs with the feature stubbed,
   N runs with it faked — deciding ``can_stub``/``can_fake`` from test
   script success across all replicas, and recording metric impacts;
3. performs a final **combined run** stubbing/faking everything found
   avoidable, confirming the per-feature analysis composes;
4. when the combined run fails, automatically bisects the avoided set
   to the minimal conflicting feature groups (the paper leaves this
   step to the user, noting it "could be automated in future works" —
   we automate it with ddmin) and conservatively demotes those
   features to REQUIRED before re-verifying.

Every run goes through a :class:`~repro.core.engine.ProbeEngine` — the
paper's parallelism factor ``p`` made concrete: ``AnalyzerConfig.parallel``
fans runs over a worker pool (``AnalyzerConfig.executor`` picks thread
or process sharding), ``AnalyzerConfig.cache`` memoizes run results so
the confirmation/bisection stages reuse probe-phase runs,
``AnalyzerConfig.run_cache`` extends that memoization to an on-disk
store shared across campaigns, and ``AnalyzerConfig.early_exit`` stops
replicating a probe once one replica has already failed it. Stage 2
submits every ``(feature, action, replica)`` probe of an analysis to
the engine as one batch, so a parallel pool stays full across feature
boundaries; outcomes are folded back deterministically in feature
order, keeping reports byte-identical to a serial run.

Progress is reported as the typed event stream of
:mod:`repro.api.events` (``on_event=``); the historical string callback
(``progress=``) still works through the event-to-string adapter, whose
output is byte-identical to the pre-event narration.

How a backend may be scheduled — cached, overlapped, process-sharded —
is decided entirely by its capability contract
(:func:`~repro.core.runner.capabilities_of`); the analyzer itself
never inspects backend attributes. One analyzer drives one execution
target; fanning a campaign across *several* targets (and
cross-validating what each observed) is the session's job
(:meth:`repro.api.session.LoupeSession.analyze` with a multi-backend
request).
"""

from __future__ import annotations

import dataclasses
import math
import time
import warnings
from collections.abc import Callable, Sequence

from repro.api.events import (
    AnalysisCancelled,
    AnalysisFinished,
    AnalysisStarted,
    BaselineStarted,
    CombinedRunFinished,
    ConflictBisected,
    EngineStatsEvent,
    EventCallback,
    FaultsSummary,
    FeatureProbed,
    FeaturesEnumerated,
    PoolRecovered,
    ProbeFaulted,
    ProbeRetry,
    combine_callbacks,
    legacy_adapter,
    tag_app,
)
from repro.core.decisions import Decision
from repro.core.cachestore import RunCacheBackend, open_store
from repro.core.engine import EXECUTORS, ProbeEngine
from repro.core.faults import (
    FaultNotice,
    FaultPolicy,
    PoolRecoveredNotice,
    ProbeFault,
    RetryNotice,
)
from repro.core.metrics import DEFAULT_MARGIN, ImpactSummary, compare
from repro.core.policy import Action, InterpositionPolicy, combined, passthrough
from repro.core.replicas import ProbeOutcome
from repro.core.result import AnalysisResult, BaselineStats, FeatureReport
from repro.core.runner import ExecutionBackend, backend_name
from repro.core.workload import Workload
from repro.core.metrics import SampleStats
from repro.errors import AnalysisCancelledError, AnalysisError


@dataclasses.dataclass(frozen=True)
class AnalyzerConfig:
    """Tunable knobs of one analysis campaign."""

    replicas: int = 3
    subfeature_level: bool = False      # Section 5.4 partial-implementation mode
    pseudo_files: bool = False          # Section 3.3 special-file tracking
    guard_metrics: bool = True          # record perf/resource impacts
    strict_metrics: bool = False        # impacts additionally disqualify stub/fake
    metric_margin: float = DEFAULT_MARGIN
    bisect_conflicts: bool = True
    max_demotion_rounds: int = 4
    #: Worker-pool width of the probe engine: the paper's parallelism
    #: factor ``p`` in ``(2 + 2·t·s)·ceil(r/p)``. ``1`` preserves the
    #: historical strictly-serial execution order.
    parallel: int = 1
    #: Sharding strategy at ``parallel > 1``: ``"thread"`` overlaps run
    #: latency, ``"process"`` shards CPU-bound runs past the GIL for
    #: backends that declare themselves process-safe (others degrade
    #: to threads; non-parallel-safe backends always run serially),
    #: ``"serial"`` disables sharding, ``"auto"`` means threads.
    executor: str = "auto"
    #: Memoize run results so the combined-run confirmation and the
    #: ddmin bisection never re-execute a run the probe phase paid for.
    cache: bool = True
    #: Optional path of a persistent run cache. Executed runs of
    #: deterministic backends are recorded, and later campaigns —
    #: other processes, other sessions — answer repeats from it, so a
    #: re-run campaign starts warm. The path picks the backend
    #: (:func:`repro.core.cachestore.open_store`): ``*.sqlite`` /
    #: ``sqlite:...`` opens the concurrent bounded SQLite store,
    #: anything else the append-only JSONL file.
    run_cache: "str | None" = None
    #: Optional LRU cap on the persistent run cache (SQLite backend
    #: only): a put that grows the store past this many records
    #: evicts the least recently used. ``None`` leaves it unbounded.
    run_cache_max_entries: "int | None" = None
    #: Optional age cap on persistent run-cache records: entries older
    #: than this many seconds read as misses (and ``loupe cache gc
    #: --ttl`` sweeps them). Complements the LRU entry cap — the cap
    #: bounds *size*, the TTL bounds *staleness*. ``None`` disables
    #: age-based eviction.
    run_cache_ttl_s: "float | None" = None
    #: Fabric worker addresses (``host:port``) for
    #: ``executor="remote"``: probe chunks are shipped to these
    #: ``loupe worker`` processes instead of a local pool. Required
    #: (non-empty) when the remote executor is selected, ignored by
    #: every other executor.
    workers: "tuple[str, ...]" = ()
    #: Stop replicating a probe at the first failed replica (one
    #: failure already decides the conservative merge).
    early_exit: bool = True
    #: Cross-application knowledge transfer (Section 6, future work):
    #: confident priors from past analyses shrink a feature's probe to
    #: a single confirmation run, falling back to the full replicated
    #: probe on any disagreement.
    priors: "object | None" = None
    #: Wall-clock budget for a single probe run attempt; an attempt
    #: exceeding it is abandoned and classified as a ``timeout`` fault.
    #: ``None`` disables the guard.
    probe_timeout_s: "float | None" = None
    #: Extra attempts after a faulted run attempt (exponential backoff
    #: between attempts). ``0`` fails/quarantines on the first fault.
    retries: int = 0
    #: Base delay of the exponential retry backoff.
    retry_backoff_s: float = 0.05
    #: What to do when a probe run exhausts its attempts: ``"fail"``
    #: aborts the campaign (historical behavior), ``"degrade"``
    #: quarantines the run and keeps going — the affected feature is
    #: reported UNDECIDED rather than the whole analysis dying.
    on_fault: str = "fail"
    #: Seed for the retry-backoff jitter; set it to make backoff delays
    #: (and therefore chaos-test timings) reproducible.
    fault_seed: "int | None" = None
    #: Cooperative cancellation hook: a zero-argument callable polled
    #: at analysis checkpoints (before the baseline, between probe
    #: waves, between confirmation rounds). The first poll returning
    #: true stops the campaign within one wave: a final
    #: ``engine_stats`` event and a terminal ``analysis_cancelled``
    #: event are emitted, then
    #: :class:`repro.errors.AnalysisCancelledError` is raised with the
    #: accounting intact. ``None`` (the default) disables polling.
    #: Excluded from config equality — whether a campaign is
    #: cancellable never changes what it concludes.
    cancel_check: "Callable[[], bool] | None" = dataclasses.field(
        default=None, compare=False
    )
    #: Cooperative liveness hook: a zero-argument callable invoked at
    #: the same wave-boundary checkpoints ``cancel_check`` is polled
    #: at. Long-lived drivers use it as a heartbeat — the campaign
    #: server refreshes a running job's lease here, so a hung worker
    #: (or a stuck backend that never reaches a checkpoint) is
    #: distinguishable from a healthy long campaign. Exceptions are
    #: deliberately swallowed: a liveness beacon must never be able to
    #: kill the campaign it reports on. Excluded from config equality
    #: like ``cancel_check`` — observation never changes conclusions.
    progress_hook: "Callable[[], None] | None" = dataclasses.field(
        default=None, compare=False
    )

    def fault_policy(self) -> "FaultPolicy | None":
        """The engine-level fault policy these knobs describe.

        Returns ``None`` when the knobs are all at their inactive
        defaults, so the engine keeps its historical raw execution
        path (exceptions propagate with their original types).
        """
        policy = FaultPolicy(
            probe_timeout_s=self.probe_timeout_s,
            retries=self.retries,
            retry_backoff_s=self.retry_backoff_s,
            on_fault=self.on_fault,
            jitter_seed=self.fault_seed,
        )
        return policy if policy.active else None

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.max_demotion_rounds < 1:
            raise ValueError("max_demotion_rounds must be >= 1")
        if self.parallel < 1:
            raise ValueError("parallel must be >= 1")
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {self.executor!r}; choose from: "
                f"{', '.join(EXECUTORS)}"
            )
        if self.run_cache and not self.cache:
            raise ValueError(
                "run_cache requires cache=True: with memoization "
                "disabled the persistent store would never be read "
                "or written"
            )
        if self.run_cache_max_entries is not None \
                and self.run_cache_max_entries < 1:
            raise ValueError("run_cache_max_entries must be >= 1")
        if self.run_cache_max_entries is not None and not self.run_cache:
            raise ValueError(
                "run_cache_max_entries requires run_cache: there is "
                "no persistent store to bound"
            )
        if self.run_cache_ttl_s is not None and self.run_cache_ttl_s <= 0:
            raise ValueError("run_cache_ttl_s must be positive")
        if self.run_cache_ttl_s is not None and not self.run_cache:
            raise ValueError(
                "run_cache_ttl_s requires run_cache: there is no "
                "persistent store to age out"
            )
        # Normalize (the config is frozen; lists arrive from job specs).
        object.__setattr__(self, "workers", tuple(self.workers))
        if self.executor == "remote" and not self.workers:
            raise ValueError(
                "executor='remote' needs at least one worker address "
                "(workers=('host:port', ...))"
            )
        # FaultPolicy validates the fault knobs (ranges, mode names);
        # building it here surfaces bad values at config time instead
        # of mid-campaign.
        self.fault_policy()


@dataclasses.dataclass
class _FeatureProbe:
    """Mutable working state for one feature during the analysis."""

    feature: str
    traced_count: int
    can_stub: bool = False
    can_fake: bool = False
    #: A probe side is *undecided* when its replicas faulted (timed
    #: out, crashed their worker, ...) without one genuine observed
    #: failure — the capability is withheld for lack of evidence, not
    #: because the workload was seen to break.
    undecided_stub: bool = False
    undecided_fake: bool = False
    stub_impact: ImpactSummary | None = None
    fake_impact: ImpactSummary | None = None
    notes: list[str] = dataclasses.field(default_factory=list)
    faults: list[ProbeFault] = dataclasses.field(default_factory=list)

    def to_report(self) -> FeatureReport:
        return FeatureReport(
            feature=self.feature,
            traced_count=self.traced_count,
            decision=Decision(
                can_stub=self.can_stub,
                can_fake=self.can_fake,
                undecided=self.undecided_stub or self.undecided_fake,
            ),
            stub_impact=self.stub_impact,
            fake_impact=self.fake_impact,
            notes=tuple(self.notes),
        )


class Analyzer:
    """Drives the full Loupe analysis for one (app, workload) pair.

    Analyzers context-manage their engine: ``with Analyzer(...) as
    analyzer`` (or an explicit :meth:`close`) releases analyzer-owned
    resources (run-cache stores) deterministically; the probe worker
    pools themselves are process-wide and shared across analyzers
    (:func:`repro.core.engine.shutdown_worker_pools` reclaims them).
    """

    def __init__(
        self,
        config: AnalyzerConfig | None = None,
        *,
        store: "RunCacheBackend | None" = None,
    ) -> None:
        self.config = config or AnalyzerConfig()
        if not self.config.cache:
            # cache=False measures raw run cost; an *injected* store
            # (session infrastructure, not this config's request) is
            # simply benched along with the LRU. A config asking for
            # both was already rejected in AnalyzerConfig.
            store = None
        #: Store this analyzer built (and therefore owns and closes)
        #: from ``config.run_cache`` — as opposed to an injected one,
        #: whose lifetime belongs to the caller (the session).
        self._owned_store: "RunCacheBackend | None" = None
        if store is None and self.config.run_cache:
            store = self._owned_store = open_store(
                self.config.run_cache,
                max_entries=self.config.run_cache_max_entries,
                ttl_s=self.config.run_cache_ttl_s,
            )
        #: The probe scheduler every run of this analyzer goes through.
        #: Its LRU and statistics are reset at the start of each
        #: :meth:`analyze` call, so ``engine.stats`` after a call
        #: describes exactly that analysis; the persistent *store*
        #: (when configured) deliberately survives across analyses.
        self.engine = ProbeEngine(
            parallel=self.config.parallel,
            cache=self.config.cache,
            executor=self.config.executor,
            store=store,
            fault_policy=self.config.fault_policy(),
            workers=self.config.workers,
        )
        #: Populated by :meth:`analyze` when priors are configured.
        self.last_transfer_stats: "object | None" = None

    def close(self) -> None:
        """Release any run-cache store this analyzer created itself
        (idempotent). The engine's worker pools are process-wide and
        survive for other analyzers;
        :func:`repro.core.engine.shutdown_worker_pools` reclaims
        them."""
        self.engine.close()
        if self._owned_store is not None:
            self._owned_store.close()

    def __enter__(self) -> "Analyzer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _run(
        self,
        backend: ExecutionBackend,
        workload: Workload,
        policy: InterpositionPolicy,
        replicas: int,
    ) -> ProbeOutcome:
        return self.engine.run_replicas(
            backend, workload, policy, replicas,
            early_exit=self.config.early_exit,
        )

    # -- public entry point ------------------------------------------------

    def analyze(
        self,
        backend: ExecutionBackend,
        workload: Workload,
        *,
        app: str = "",
        app_version: str = "",
        progress: Callable[[str], None] | None = None,
        on_event: EventCallback | None = None,
    ) -> AnalysisResult:
        """Run the complete analysis and return the result record.

        Progress surfaces on ``on_event`` as the typed events of
        :mod:`repro.api.events`; the legacy string callback
        ``progress`` keeps working through the event-to-string
        adapter (its output is byte-identical to the pre-event form).
        """
        emit = combine_callbacks(
            on_event,
            legacy_adapter(progress) if progress is not None else None,
        ) or (lambda _event: None)
        try:
            return self._analyze(
                backend, workload,
                app=app, app_version=app_version, emit=emit,
            )
        finally:
            # Mark the engine's lifecycle point; the shared worker
            # pools stay up for the process's other engines. Stats
            # survive, so ``engine.stats`` still describes the
            # finished run.
            self.engine.notice_sink = None
            self.engine.close()

    def _analyze(
        self,
        backend: ExecutionBackend,
        workload: Workload,
        *,
        app: str,
        app_version: str,
        emit: EventCallback,
    ) -> AnalysisResult:
        config = self.config
        identity = app or workload.name
        emit = tag_app(emit, identity)
        started = time.monotonic()

        def checkpoint() -> None:
            """Poll the cooperative cancellation hook (no-op without
            one). On a truthy answer the campaign stops *here*: the
            accounting so far is flushed as a final ``engine_stats``
            event, a terminal ``analysis_cancelled`` event closes the
            stream, and the error carries the same stats snapshot. A
            string answer names the reason (``"signal"`` for the
            CLI's SIGINT hook); any other truthy value reads as a
            plain ``"cancelled"``. The liveness hook beats first, so
            even a wave that ends in cancellation is recorded as
            reached.
            """
            if config.progress_hook is not None:
                try:
                    config.progress_hook()
                except Exception:  # noqa: BLE001 — a heartbeat must
                    # never kill the campaign whose liveness it reports.
                    pass
            if config.cancel_check is None:
                return
            verdict = config.cancel_check()
            if not verdict:
                return
            reason = verdict if isinstance(verdict, str) else "cancelled"
            stats = self.engine.stats
            emit(EngineStatsEvent.from_stats(
                stats, executor=self.engine.mode_for(backend)
            ))
            emit(AnalysisCancelled(
                duration_s=time.monotonic() - started, reason=reason
            ))
            raise AnalysisCancelledError(identity, stats=stats)

        # One analysis == one application build: drop run results (and
        # accounting) from any prior analyze() call so identically-named
        # backends of different programs can never cross-contaminate.
        self.engine.reset()
        # Surface engine-level fault-handling moments (retries,
        # quarantines, pool rebuilds) on the event stream. The sink is
        # detached in analyze()'s finally so a dangling emit can never
        # outlive its campaign.
        self.engine.notice_sink = lambda notice: _emit_notice(emit, notice)
        # A config asking for observations the backend's contract says
        # it cannot produce deserves a signal, not silent empty sets.
        # Only *explicit* contracts are trusted to mean "no": the
        # legacy attribute shim cannot express the supports_* flags,
        # so pre-contract backends get the benefit of the doubt (their
        # runs may well report pseudo-files — collection reads run
        # results unconditionally either way).
        if getattr(backend, "capabilities", None) is not None:
            capabilities = self.engine.capabilities_for(backend)
            for wanted, supported, mode in (
                (config.pseudo_files, capabilities.supports_pseudo_files,
                 "pseudo-file"),
                (config.subfeature_level,
                 capabilities.supports_subfeatures, "sub-feature"),
            ):
                if wanted and not supported:
                    warnings.warn(
                        f"{mode} analysis requested, but backend "
                        f"{backend_name(backend)} does not declare "
                        f"support for it; expect no such observations",
                        UserWarning,
                        stacklevel=3,
                    )

        emit(AnalysisStarted(
            app=identity,
            workload=workload.name,
            backend=backend_name(backend),
            replicas=config.replicas,
        ))
        checkpoint()
        emit(BaselineStarted(replicas=config.replicas))
        # The baseline never early-exits: on failure the error below
        # reports every replica's reason (and success runs them all
        # anyway), matching the pre-engine diagnostics.
        baseline = self.engine.run_replicas(
            backend, workload, passthrough(), config.replicas,
            early_exit=False,
        )
        if not baseline.all_succeeded:
            # A faulted baseline (timeouts, dead workers) is just as
            # disqualifying as a failed one — without a trustworthy
            # passthrough run nothing downstream is meaningful, even
            # under on_fault="degrade".
            parts = list(baseline.failure_reasons())
            parts.extend(fault.describe() for fault in baseline.faults)
            reasons = "; ".join(parts) or "unknown"
            raise AnalysisError(
                f"application fails the workload even without interposition: {reasons}"
            )

        features = self._enumerate_features(baseline)
        emit(FeaturesEnumerated(
            count=len(features), features=tuple(sorted(features))
        ))

        transfer_stats = None
        if config.priors is not None:
            from repro.core.transfer import TransferStats

            transfer_stats = TransferStats(features_total=len(features))
        self.last_transfer_stats = transfer_stats

        ordered = sorted(features.items())
        checkpoint()
        if config.priors is None:
            probes = self._probe_features_batched(
                backend, workload, ordered, baseline, emit,
                checkpoint=checkpoint,
            )
        else:
            # The transfer fast path decides each feature's run count
            # from its prediction's outcome, so prior-guided probing
            # stays feature-at-a-time (and polls per feature — each
            # feature is its own wave here).
            probes = {}
            for feature, count in ordered:
                checkpoint()
                probes[feature] = self._probe_feature(
                    backend, workload, feature, count, baseline, emit,
                    transfer_stats,
                )

        final_ok, conflicts, combined_faults = self._confirm_combined(
            backend, workload, probes, emit, checkpoint=checkpoint
        )

        # Quarantine list: probe-phase faults in deterministic feature
        # order, then the combined/bisection phase's. The summary event
        # is emitted only when non-empty, keeping fault-free campaigns'
        # event streams byte-identical to the pre-fault ones.
        faults: list[ProbeFault] = []
        for probe in probes.values():
            faults.extend(probe.faults)
        faults.extend(combined_faults)
        if faults:
            kinds: dict[str, int] = {}
            for fault in faults:
                kinds[fault.kind] = kinds.get(fault.kind, 0) + 1
            emit(FaultsSummary(
                total=len(faults),
                kinds=kinds,
                faults=tuple(fault.to_dict() for fault in faults),
            ))

        emit(EngineStatsEvent.from_stats(
            # mode_for, not executor_name: the event reports what this
            # backend's runs actually got after capability fallback
            # (ptrace under --executor process still says "serial").
            self.engine.stats, executor=self.engine.mode_for(backend)
        ))
        emit(AnalysisFinished(duration_s=time.monotonic() - started))
        return AnalysisResult(
            app=identity,
            app_version=app_version,
            workload=workload.name,
            workload_kind=workload.kind,
            backend=backend_name(backend),
            replicas=config.replicas,
            features={name: probe.to_report() for name, probe in probes.items()},
            baseline=BaselineStats(
                metric=SampleStats.of(baseline.metric_samples),
                fd=SampleStats.of(baseline.fd_samples),
                mem=SampleStats.of(baseline.mem_samples),
            ),
            final_run_ok=final_ok,
            conflicts=conflicts,
            faults=tuple(faults),
        )

    # -- stage 1: enumeration ----------------------------------------------

    def _enumerate_features(self, baseline: ProbeOutcome) -> dict[str, int]:
        """Feature -> invocation count, united over baseline replicas."""
        union = baseline.union_traced()
        features: dict[str, int] = {}
        level = self.config.subfeature_level
        wanted = set()
        for result in baseline.results:
            wanted |= result.features(subfeature_level=level)
        for feature in wanted:
            if feature.startswith("/"):
                continue  # pseudo-files handled below
            features[feature] = union.get(feature, 1)
        if self.config.pseudo_files:
            for path, count in baseline.union_pseudofiles().items():
                features[path] = count
        return features

    # -- stage 2: per-feature probing ---------------------------------------

    def _apply_verdict(
        self,
        probe: _FeatureProbe,
        attribute: str,
        outcome: ProbeOutcome,
        baseline: ProbeOutcome,
        workload: Workload,
    ) -> None:
        """Fold one probe outcome into the feature's stub/fake verdict.

        Shared by the batched and feature-at-a-time paths so both
        apply the identical decision and note wording.
        """
        probe.faults.extend(outcome.faults)
        if outcome.undecided:
            # Replicas faulted without one genuine failure: withhold
            # the capability for lack of evidence and mark the side
            # undecided instead of pretending the workload broke.
            kinds = ", ".join(sorted({f.kind for f in outcome.faults}))
            probe.notes.append(
                f"{attribute} probe undecided: "
                f"{len(outcome.faults)} replica(s) faulted ({kinds}) "
                f"with no observed failure"
            )
            if attribute == "stub":
                probe.can_stub = False
                probe.undecided_stub = True
                probe.stub_impact = None
            else:
                probe.can_fake = False
                probe.undecided_fake = True
                probe.fake_impact = None
            return
        ok = outcome.all_succeeded
        impact = None
        if ok and self.config.guard_metrics:
            impact = self._impact(baseline, outcome, workload)
            if not impact.clean:
                probe.notes.append(
                    f"{attribute}bing shifts metrics: {impact.describe()}"
                )
                if self.config.strict_metrics:
                    ok = False
        if attribute == "stub":
            probe.can_stub = ok
            probe.stub_impact = impact
        else:
            probe.can_fake = ok
            probe.fake_impact = impact

    def _probe_features_batched(
        self,
        backend: ExecutionBackend,
        workload: Workload,
        ordered: Sequence[tuple[str, int]],
        baseline: ProbeOutcome,
        emit: EventCallback,
        *,
        checkpoint: Callable[[], None] = lambda: None,
    ) -> dict[str, _FeatureProbe]:
        """Probe the features in batched waves of engine submissions.

        All ``(feature, action, replica)`` runs of a wave enter the
        engine at once, keeping a parallel pool saturated across
        feature boundaries; outcomes are folded back strictly in
        feature order, so reports and event ordering are
        byte-identical to the feature-at-a-time loop. The wave size
        bounds progress *liveness*: ``FeatureProbed`` events fire at
        wave ends, and when the backend executes serially anyway
        (``parallel=1``, or a non-parallel-safe backend such as
        ptrace, where runs are slowest and progress matters most) the
        wave shrinks to a single feature — the exact historical
        streaming.
        """
        mode = self.engine.mode_for(backend)
        if mode == "serial":
            wave = 1
        elif mode == "process":
            # Chunked IPC makes wave boundaries costlier than in the
            # thread pool, and process-shardable backends are fast
            # simulations — trade some event granularity for keeping
            # the workers fed.
            wave = max(32, 8 * self.engine.parallel)
        else:
            # A few features per worker keeps the pool full inside a
            # wave while the drain bubble at each wave boundary stays
            # a tiny fraction of the wave's runs.
            wave = max(8, 2 * self.engine.parallel)
        actions = (Action.STUB, Action.FAKE)
        probes: dict[str, _FeatureProbe] = {}
        for start in range(0, len(ordered), wave):
            if start:
                # Cooperative cancellation stops within one wave: the
                # wave in flight completes (its outcomes fold into the
                # stats), the next never starts. The entry checkpoint
                # already covered start == 0.
                checkpoint()
            subset = ordered[start:start + wave]
            policies = [
                passthrough().with_feature(feature, action)
                for feature, _count in subset
                for action in actions
            ]
            outcomes = iter(self.engine.run_probe_batch(
                backend, workload, policies, self.config.replicas,
                early_exit=self.config.early_exit,
            ))
            for feature, count in subset:
                probe = _FeatureProbe(feature=feature, traced_count=count)
                for attribute in ("stub", "fake"):
                    self._apply_verdict(
                        probe, attribute, next(outcomes), baseline, workload
                    )
                emit(FeatureProbed(
                    feature=feature,
                    can_stub=probe.can_stub,
                    can_fake=probe.can_fake,
                    traced_count=count,
                ))
                probes[feature] = probe
        return probes

    def _probe_feature(
        self,
        backend: ExecutionBackend,
        workload: Workload,
        feature: str,
        traced_count: int,
        baseline: ProbeOutcome,
        emit: EventCallback,
        transfer_stats: "object | None" = None,
    ) -> _FeatureProbe:
        probe = _FeatureProbe(feature=feature, traced_count=traced_count)
        prediction = None
        if self.config.priors is not None:
            prediction = self.config.priors.predict(feature)  # type: ignore[attr-defined]

        fast_pathed = prediction is not None
        for action, attribute in ((Action.STUB, "stub"), (Action.FAKE, "fake")):
            policy = passthrough().with_feature(feature, action)
            predicted = (
                getattr(prediction, f"can_{attribute}")
                if prediction is not None
                else None
            )
            if predicted is not None and self.config.replicas > 1:
                # Transfer fast path: one confirmation run; the full
                # probe only on disagreement (Section 6 future work).
                confirmation = self._run(backend, workload, policy, 1)
                if confirmation.all_succeeded == predicted:
                    outcome = confirmation
                    if transfer_stats is not None:
                        transfer_stats.runs_saved += self.config.replicas - 1
                else:
                    fast_pathed = False
                    if transfer_stats is not None:
                        transfer_stats.fallbacks += 1
                    outcome = self._run(
                        backend, workload, policy, self.config.replicas
                    )
            else:
                outcome = self._run(
                    backend, workload, policy, self.config.replicas
                )
            self._apply_verdict(probe, attribute, outcome, baseline, workload)
        if fast_pathed and transfer_stats is not None:
            transfer_stats.features_fast_pathed += 1
        emit(FeatureProbed(
            feature=feature,
            can_stub=probe.can_stub,
            can_fake=probe.can_fake,
            traced_count=traced_count,
        ))
        return probe

    def _impact(
        self, baseline: ProbeOutcome, variant: ProbeOutcome, workload: Workload
    ) -> ImpactSummary:
        margin = self.config.metric_margin
        perf = None
        if workload.measures_performance and variant.metric_samples:
            perf = compare(
                baseline.metric_samples, variant.metric_samples, margin=margin
            )
        fd = compare(baseline.fd_samples, variant.fd_samples, margin=margin)
        mem = compare(baseline.mem_samples, variant.mem_samples, margin=margin)
        return ImpactSummary(perf=perf, fd=fd, mem=mem)

    # -- stage 3 & 4: combined confirmation + automated bisection ------------

    def _combined_policy(
        self, probes: dict[str, _FeatureProbe]
    ) -> InterpositionPolicy:
        stubs = [f for f, p in probes.items() if p.can_stub]
        fakes = [f for f, p in probes.items() if p.can_fake and not p.can_stub]
        return combined(stubs=stubs, fakes=fakes)

    def _confirm_combined(
        self,
        backend: ExecutionBackend,
        workload: Workload,
        probes: dict[str, _FeatureProbe],
        emit: EventCallback,
        *,
        checkpoint: Callable[[], None] = lambda: None,
    ) -> tuple[bool, tuple[tuple[str, ...], ...], tuple[ProbeFault, ...]]:
        all_conflicts: list[tuple[str, ...]] = []
        faults: list[ProbeFault] = []
        for round_index in range(self.config.max_demotion_rounds):
            checkpoint()
            policy = self._combined_policy(probes)
            avoided = sorted(policy.altered_features())
            if not avoided:
                emit(CombinedRunFinished(
                    ok=True, avoided=0, round=round_index + 1
                ))
                return True, tuple(all_conflicts), tuple(faults)
            outcome = self._run(backend, workload, policy, self.config.replicas)
            faults.extend(outcome.faults)
            if outcome.all_succeeded:
                emit(CombinedRunFinished(
                    ok=True, avoided=len(avoided), round=round_index + 1
                ))
                return True, tuple(all_conflicts), tuple(faults)
            emit(CombinedRunFinished(
                ok=False, avoided=len(avoided), round=round_index + 1
            ))
            if outcome.undecided:
                # The combined run faulted without a genuine failure:
                # there is no observed conflict to bisect, and ddmin on
                # faulting runs would demote features on noise. Report
                # the confirmation as not-ok and stop here.
                return False, tuple(all_conflicts), tuple(faults)
            if not self.config.bisect_conflicts:
                return False, tuple(all_conflicts), tuple(faults)
            conflict = self._minimize_conflict(
                backend, workload, probes, avoided, faults
            )
            if not conflict:
                return False, tuple(all_conflicts), tuple(faults)
            emit(ConflictBisected(round=round_index + 1, conflict=conflict))
            all_conflicts.append(conflict)
            for feature in conflict:
                probe = probes[feature]
                probe.can_stub = False
                probe.can_fake = False
                probe.notes.append(
                    "demoted to required: feature interacts badly with the "
                    "combined stub/fake set (found by automated bisection)"
                )
        return False, tuple(all_conflicts), tuple(faults)

    def _minimize_conflict(
        self,
        backend: ExecutionBackend,
        workload: Workload,
        probes: dict[str, _FeatureProbe],
        avoided: Sequence[str],
        faults: "list[ProbeFault] | None" = None,
    ) -> tuple[str, ...]:
        """ddmin-style minimization of a failing avoided-feature set.

        Returns a (small) subset of *avoided* whose combined application
        still fails the workload; empty when the failure cannot be
        reproduced on any subset (flaky run).
        """

        def fails(subset: Sequence[str]) -> bool:
            if not subset:
                return False
            stubs = [f for f in subset if probes[f].can_stub]
            fakes = [f for f in subset if probes[f].can_fake and not probes[f].can_stub]
            policy = combined(stubs=stubs, fakes=fakes)
            outcome = self._run(backend, workload, policy, 1)
            if faults is not None:
                faults.extend(outcome.faults)
            # An undecided (all-faults, no genuine failure) run must
            # not count as a reproduction — ddmin would otherwise
            # demote features on infrastructure noise.
            return not outcome.all_succeeded and not outcome.undecided

        candidate = list(avoided)
        if not fails(candidate):
            return ()
        granularity = 2
        while len(candidate) >= 2:
            chunk = max(1, len(candidate) // granularity)
            reduced = False
            for start in range(0, len(candidate), chunk):
                complement = candidate[:start] + candidate[start + chunk:]
                if complement and fails(complement):
                    candidate = complement
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
            if not reduced:
                if granularity >= len(candidate):
                    break
                granularity = min(len(candidate), granularity * 2)
        return tuple(candidate)


def _emit_notice(emit: EventCallback, notice: object) -> None:
    """Adapt an engine fault notice to its typed event.

    The engine lives below the event layer (the api package imports
    core), so it reports fault-handling moments as plain notice
    dataclasses; this is the one place they become events.
    """
    if isinstance(notice, RetryNotice):
        emit(ProbeRetry(
            workload=notice.workload,
            probe=notice.probe,
            replica=notice.replica,
            attempt=notice.attempt,
            fault=notice.kind,
            detail=notice.detail,
        ))
    elif isinstance(notice, FaultNotice):
        fault = notice.fault
        emit(ProbeFaulted(
            workload=fault.workload,
            probe=fault.probe,
            replica=fault.replica,
            fault=fault.kind,
            attempts=fault.attempts,
            detail=fault.detail,
        ))
    elif isinstance(notice, PoolRecoveredNotice):
        emit(PoolRecovered(
            lost_runs=notice.lost_runs, rebuilds=notice.rebuilds
        ))


def analyze(
    backend: ExecutionBackend,
    workload: Workload,
    *,
    config: AnalyzerConfig | None = None,
    app: str = "",
    app_version: str = "",
) -> AnalysisResult:
    """Convenience wrapper: run a full analysis with default config."""
    return Analyzer(config).analyze(
        backend, workload, app=app, app_version=app_version
    )


def estimated_runtime_s(
    workload_runtime_s: float,
    distinct_features: int,
    replicas: int = 3,
    parallel: int = 1,
) -> float:
    """The paper's run-time model: ``(2 + 2·t·s) · ceil(r/p)`` (Section 3.3).

    ``2 +`` covers the discovery and confirmation runs; ``2·`` the stub
    and fake probe per feature.
    """
    serial = 2 * workload_runtime_s + 2 * workload_runtime_s * distinct_features
    return serial * math.ceil(replicas / max(parallel, 1))
