"""Loupe core: the paper's primary contribution.

The analysis pipeline lives here — decision lattice, interposition
policies, workload contract, replica orchestration, metric guarding,
pseudo-file and partial-implementation support, and the
:class:`Analyzer` that ties them together.
"""

from repro.core.analyzer import Analyzer, AnalyzerConfig, analyze, estimated_runtime_s
from repro.core.cachestore import (
    JsonlRunCache,
    RunCacheBackend,
    SqliteRunCache,
    StoreStats,
    migrate_store,
    open_store,
)
from repro.core.decisions import Decision, Verdict, merge_all
from repro.core.engine import EngineStats, ProbeEngine
from repro.core.metrics import (
    DEFAULT_MARGIN,
    ImpactSummary,
    MetricComparison,
    SampleStats,
    compare,
    relative_delta,
    welch_statistic,
)
from repro.core.partial import PartialImplementationSummary, summarize
from repro.core.policy import (
    Action,
    FakeStrategy,
    InterpositionPolicy,
    combined,
    fake_strategy,
    faking,
    passthrough,
    stubbing,
)
from repro.core.pseudofiles import (
    KNOWN_PSEUDO_FILES,
    PseudoFileAccess,
    extract_accesses,
    is_pseudo_path,
)
from repro.core.replicas import ProbeOutcome, aggregate, run_replicas
from repro.core.result import AnalysisResult, BaselineStats, FeatureReport
from repro.core.runner import ExecutionBackend, ResourceUsage, RunResult
from repro.core.transfer import (
    FeaturePrior,
    Prediction,
    PriorKnowledge,
    TransferStats,
)
from repro.core.workload import (
    CommandWorkload,
    SimWorkload,
    Workload,
    WorkloadKind,
    benchmark,
    health_check,
    test_suite,
)

__all__ = [
    "Action",
    "AnalysisResult",
    "Analyzer",
    "AnalyzerConfig",
    "BaselineStats",
    "CommandWorkload",
    "DEFAULT_MARGIN",
    "Decision",
    "EngineStats",
    "ExecutionBackend",
    "FakeStrategy",
    "FeaturePrior",
    "FeatureReport",
    "ImpactSummary",
    "InterpositionPolicy",
    "JsonlRunCache",
    "KNOWN_PSEUDO_FILES",
    "MetricComparison",
    "PartialImplementationSummary",
    "Prediction",
    "PriorKnowledge",
    "ProbeEngine",
    "ProbeOutcome",
    "PseudoFileAccess",
    "ResourceUsage",
    "RunCacheBackend",
    "RunResult",
    "SampleStats",
    "SimWorkload",
    "SqliteRunCache",
    "StoreStats",
    "TransferStats",
    "Verdict",
    "Workload",
    "WorkloadKind",
    "aggregate",
    "analyze",
    "benchmark",
    "combined",
    "compare",
    "estimated_runtime_s",
    "extract_accesses",
    "fake_strategy",
    "faking",
    "health_check",
    "is_pseudo_path",
    "merge_all",
    "migrate_store",
    "open_store",
    "passthrough",
    "relative_delta",
    "run_replicas",
    "stubbing",
    "summarize",
    "test_suite",
    "welch_statistic",
]
