"""Fault-tolerant probe execution: taxonomy, policy, chaos injection.

Loupe's methodology replicates thousands of probe runs against systems
that are *expected* to misbehave — crashing applications, hung
syscalls, dying tracers. This module is the robustness layer that
turns those mishaps into data points instead of campaign aborts:

* a four-class **fault taxonomy** (``timeout`` / ``worker-crash`` /
  ``backend-error`` / ``torn-result``) and the :class:`ProbeFault`
  quarantine record;
* a :class:`FaultPolicy` giving every probe a wall-clock timeout and
  bounded retries with exponential backoff (jitter is deterministic
  when seeded, so replayed campaigns sleep identically);
* :func:`guarded_run`, the module-level attempt loop that executes one
  ``(workload, policy, replica)`` run under the policy — module-level
  and picklable on purpose, so process-pool workers apply exactly the
  same timeout/retry semantics as the scheduling process;
* :class:`ChaosBackend`, a deterministic fault-injection wrapper used
  both as the test harness for all of the above and as the first
  adversarial persona of the ROADMAP's campaign hardening item.

Determinism is the load-bearing design rule: every chaos decision is a
pure function of ``(seed, workload, policy fingerprint, replica)`` —
never of call order, thread identity, or wall-clock — so serial,
thread and process executors observe the *same* injected faults and
produce byte-identical reports under ``--on-fault=degrade``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import random
import threading
import time
from collections.abc import Iterable

from repro.core.policy import InterpositionPolicy
from repro.core.runner import (
    BackendCapabilities,
    RunResult,
    backend_name,
    capabilities_of,
)
from repro.core.workload import Workload
from repro.errors import LoupeError

# -- taxonomy ------------------------------------------------------------

#: The probe exceeded its wall-clock budget; the run was abandoned.
FAULT_TIMEOUT = "timeout"
#: The worker process executing the probe died (BrokenProcessPool).
FAULT_WORKER_CRASH = "worker-crash"
#: The backend raised instead of returning a result.
FAULT_BACKEND_ERROR = "backend-error"
#: The backend returned something that is not a :class:`RunResult`.
FAULT_TORN_RESULT = "torn-result"

FAULT_KINDS = (
    FAULT_TIMEOUT,
    FAULT_WORKER_CRASH,
    FAULT_BACKEND_ERROR,
    FAULT_TORN_RESULT,
)

#: ``fail`` aborts the campaign on an exhausted probe (the historical
#: behavior); ``degrade`` quarantines it as an ``undecided`` outcome.
ON_FAULT_MODES = ("fail", "degrade")


@dataclasses.dataclass(frozen=True)
class FaultPolicy:
    """How the engine treats a probe run that refuses to complete.

    ``probe_timeout_s`` bounds each attempt's wall clock (``None``
    disables the guard); ``retries`` re-runs a faulted attempt up to
    that many extra times with exponential backoff starting at
    ``retry_backoff_s``; ``on_fault`` decides what happens once the
    budget is exhausted. ``jitter_seed`` makes the backoff jitter a
    pure function of the probe key so replays sleep identically.
    """

    probe_timeout_s: float | None = None
    retries: int = 0
    retry_backoff_s: float = 0.05
    on_fault: str = "fail"
    jitter_seed: int | None = None

    def __post_init__(self) -> None:
        if self.probe_timeout_s is not None and self.probe_timeout_s <= 0:
            raise ValueError("probe_timeout_s must be positive (or None)")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        if self.on_fault not in ON_FAULT_MODES:
            raise ValueError(
                f"on_fault must be one of {ON_FAULT_MODES}, "
                f"got {self.on_fault!r}"
            )

    @property
    def active(self) -> bool:
        """Whether any guard is configured at all.

        An inactive policy keeps the engine on its historical fast
        path: no wrapper threads, raw exception propagation, zero
        overhead per run.
        """
        return (
            self.probe_timeout_s is not None
            or self.retries > 0
            or self.on_fault != "fail"
        )

    @property
    def degrade(self) -> bool:
        return self.on_fault == "degrade"

    @property
    def attempts(self) -> int:
        """Total attempts each probe run gets (first try + retries)."""
        return self.retries + 1

    def backoff_delay(self, attempt: int, key: str = "") -> float:
        """Sleep before retry *attempt* (1-based): exponential + jitter.

        With ``jitter_seed`` set, the jitter fraction is derived from a
        hash of ``(seed, key, attempt)`` — deterministic per probe, so
        a replayed campaign backs off identically; unseeded, plain
        ``random`` jitter decorrelates concurrent retries.
        """
        base = self.retry_backoff_s * (2 ** max(0, attempt - 1))
        if base <= 0:
            return 0.0
        if self.jitter_seed is None:
            fraction = random.random()
        else:
            digest = hashlib.sha256(
                f"{self.jitter_seed}|{key}|{attempt}".encode()
            ).digest()
            fraction = int.from_bytes(digest[:8], "big") / 2**64
        return base * (1.0 + 0.5 * fraction)


@dataclasses.dataclass(frozen=True)
class ProbeFault:
    """One quarantined probe run: the key, class, and attempt history."""

    workload: str
    probe: str          # the policy's human-readable describe()
    replica: int
    kind: str
    attempts: int
    durations_s: tuple[float, ...] = ()
    detail: str = ""

    def describe(self) -> str:
        text = (
            f"[{self.kind}] {self.probe} replica {self.replica} "
            f"on {self.workload!r} after {self.attempts} attempt(s)"
        )
        if self.detail:
            text += f": {self.detail}"
        return text

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "probe": self.probe,
            "replica": self.replica,
            "kind": self.kind,
            "attempts": self.attempts,
            "durations_s": list(self.durations_s),
            "detail": self.detail,
        }

    @staticmethod
    def from_dict(document: dict) -> "ProbeFault":
        return ProbeFault(
            workload=str(document.get("workload", "")),
            probe=str(document.get("probe", "")),
            replica=int(document.get("replica", 0)),
            kind=str(document.get("kind", FAULT_BACKEND_ERROR)),
            attempts=int(document.get("attempts", 1)),
            durations_s=tuple(
                float(d) for d in document.get("durations_s", ())
            ),
            detail=str(document.get("detail", "")),
        )


class ProbeFaultError(LoupeError):
    """A probe exhausted its fault budget under ``on_fault=fail``.

    Carries the :class:`ProbeFault` record and pickles across process
    boundaries (workers raise it; the scheduler re-raises it intact).
    """

    def __init__(self, fault: ProbeFault) -> None:
        super().__init__(fault.describe())
        self.fault = fault

    def __reduce__(self):
        return (ProbeFaultError, (self.fault,))


class ProbeRunError(LoupeError):
    """A backend exception annotated with the probe key that caused it.

    Raised from process-sharded chunks in place of the raw backend
    exception, whose pickled traceback would otherwise surface with no
    indication of which ``(feature, action, replica)`` probe failed.
    Constructed from a single message string so it survives the
    pool's exception pickling untouched.
    """


def describe_probe_error(
    workload: Workload,
    policy: InterpositionPolicy,
    replica: int,
    error: BaseException,
) -> str:
    """The probe-key-carrying message for :class:`ProbeRunError`."""
    return (
        f"probe {policy.describe()!r} replica {replica} of workload "
        f"{workload.name!r} failed in a worker: "
        f"{type(error).__name__}: {error}"
    )


# -- guarded execution ---------------------------------------------------


@dataclasses.dataclass(frozen=True)
class AttemptFailure:
    """One failed attempt inside :func:`guarded_run`."""

    kind: str
    detail: str
    duration_s: float


@dataclasses.dataclass(frozen=True)
class GuardedOutcome:
    """What :func:`guarded_run` produced for one probe run.

    ``result`` is ``None`` exactly when every attempt failed;
    ``failures`` lists the failed attempts in order (non-empty even on
    eventual success if earlier attempts were retried).
    """

    result: RunResult | None
    failures: tuple[AttemptFailure, ...] = ()

    @property
    def faulted(self) -> bool:
        return self.result is None

    def fault(
        self, workload: Workload, policy: InterpositionPolicy, replica: int
    ) -> ProbeFault:
        """The quarantine record for an exhausted outcome."""
        last = self.failures[-1] if self.failures else None
        return ProbeFault(
            workload=workload.name,
            probe=policy.describe(),
            replica=replica,
            kind=last.kind if last else FAULT_BACKEND_ERROR,
            attempts=len(self.failures),
            durations_s=tuple(f.duration_s for f in self.failures),
            detail=last.detail if last else "",
        )


def probe_key(
    workload: Workload, policy: InterpositionPolicy, replica: int
) -> str:
    """The stable identity of one probe run (jitter and chaos seed it)."""
    return f"{workload.name}|{policy.fingerprint()}|{replica}"


def _attempt_once(
    backend,
    workload: Workload,
    policy: InterpositionPolicy,
    replica: int,
    timeout_s: float | None,
) -> tuple[RunResult | None, str | None, str]:
    """One attempt: ``(result, fault_kind, detail)``.

    With a timeout, the run executes on a daemon thread and is
    *abandoned* (not killed — Python cannot interrupt arbitrary C
    calls) when the budget expires; the thread dies with the process.
    """
    if timeout_s is None:
        try:
            result = backend.run(workload, policy, replica=replica)
        except Exception as error:
            return None, FAULT_BACKEND_ERROR, f"{type(error).__name__}: {error}"
    else:
        box: dict[str, object] = {}

        def target() -> None:
            try:
                box["result"] = backend.run(workload, policy, replica=replica)
            except BaseException as error:  # reported through the box
                box["error"] = error

        thread = threading.Thread(
            target=target, daemon=True, name="loupe-guarded-run"
        )
        thread.start()
        thread.join(timeout_s)
        if thread.is_alive():
            return (
                None,
                FAULT_TIMEOUT,
                f"no result within {timeout_s:g}s (run abandoned)",
            )
        if "error" in box:
            error = box["error"]
            return None, FAULT_BACKEND_ERROR, f"{type(error).__name__}: {error}"
        result = box.get("result")
    if not isinstance(result, RunResult):
        return (
            None,
            FAULT_TORN_RESULT,
            f"backend returned {type(result).__name__}, not RunResult",
        )
    return result, None, ""


def guarded_run(
    backend,
    workload: Workload,
    policy: InterpositionPolicy,
    replica: int,
    fault_policy: FaultPolicy,
) -> GuardedOutcome:
    """Execute one probe run under *fault_policy*.

    Module-level so process-pool chunks apply identical semantics:
    timeout per attempt, bounded retries with backoff, taxonomy
    classification. Never raises for a classified fault — the caller
    decides between ``fail`` and ``degrade``.
    """
    failures: list[AttemptFailure] = []
    key = probe_key(workload, policy, replica)
    for attempt in range(1, fault_policy.attempts + 1):
        start = time.perf_counter()
        result, kind, detail = _attempt_once(
            backend, workload, policy, replica, fault_policy.probe_timeout_s
        )
        duration = time.perf_counter() - start
        if result is not None:
            return GuardedOutcome(result, tuple(failures))
        failures.append(AttemptFailure(kind or FAULT_BACKEND_ERROR, detail, duration))
        if attempt <= fault_policy.retries:
            delay = fault_policy.backoff_delay(attempt, key)
            if delay > 0:
                time.sleep(delay)
    return GuardedOutcome(None, tuple(failures))


# -- engine-to-analyzer notices -----------------------------------------

# Plain records, not api-layer events: core modules cannot import
# repro.api (which imports them back). The analyzer adapts these into
# typed events for the session stream.


@dataclasses.dataclass(frozen=True)
class RetryNotice:
    """A probe attempt failed and will be (or was) retried."""

    workload: str
    probe: str
    replica: int
    attempt: int
    kind: str
    detail: str = ""


@dataclasses.dataclass(frozen=True)
class FaultNotice:
    """A probe exhausted its budget and was quarantined."""

    fault: ProbeFault


@dataclasses.dataclass(frozen=True)
class PoolRecoveredNotice:
    """A broken worker pool was rebuilt and lost chunks re-enqueued."""

    lost_runs: int
    rebuilds: int = 1


# -- chaos injection -----------------------------------------------------


class ChaosError(LoupeError):
    """The error :class:`ChaosBackend` injects for targeted probes."""


@dataclasses.dataclass(frozen=True)
class ChaosSpec:
    """Which faults to inject, addressed by *feature*.

    A probe is targeted when its policy stubs or fakes any feature in
    the corresponding set, so the passthrough baseline is never
    injected (a faulted baseline aborts any analysis). ``error_rate``
    additionally faults a seeded pseudo-random fraction of *all*
    probes — useful for property tests, hazardous for campaigns.

    * ``hang_features`` — sleep ``hang_s`` then raise (a probe
      timeout shorter than ``hang_s`` classifies this as ``timeout``;
      without one the campaign still terminates, as ``backend-error``);
    * ``error_features`` — raise :class:`ChaosError` immediately;
    * ``flip_features`` — return the wrong answer (success inverted);
    * ``crash_features`` — kill the *worker process* on the Nth
      targeted run (``crash_after``); a no-op in the scheduling
      process itself, and once-only when ``crash_marker`` names a
      file (created atomically on first crash, checked before the
      next), so recovered re-executions proceed normally.
    """

    seed: int = 0
    hang_features: frozenset = frozenset()
    error_features: frozenset = frozenset()
    flip_features: frozenset = frozenset()
    crash_features: frozenset = frozenset()
    hang_s: float = 30.0
    error_rate: float = 0.0
    crash_after: int = 1
    crash_marker: str | None = None

    def __post_init__(self) -> None:
        for field in (
            "hang_features", "error_features", "flip_features",
            "crash_features",
        ):
            object.__setattr__(self, field, frozenset(getattr(self, field)))
        if self.hang_s <= 0:
            raise ValueError("hang_s must be positive")
        if not 0.0 <= self.error_rate <= 1.0:
            raise ValueError("error_rate must be within [0, 1]")
        if self.crash_after < 1:
            raise ValueError("crash_after must be >= 1")

    def chance(self, kind: str, key: str) -> float:
        """A deterministic pseudo-random fraction for one decision."""
        digest = hashlib.sha256(f"{self.seed}|{kind}|{key}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2**64


class ChaosBackend:
    """Wraps an execution backend with seeded, deterministic faults.

    Every injection decision is a pure function of the chaos seed and
    the probe key — the executor choice, scheduling order, and retry
    count never change *which* probes fault, which is what lets
    degraded campaigns stay byte-identical across serial/thread/
    process executors. Picklable whenever the inner backend is, so
    chaos reaches process-pool workers too.
    """

    def __init__(self, inner, spec: ChaosSpec, *, name: str | None = None):
        self.inner = inner
        self.spec = spec
        self.name = name or f"chaos:{backend_name(inner)}"
        self._parent_pid = os.getpid()
        self._crash_calls = 0

    def capabilities(self) -> BackendCapabilities:
        return capabilities_of(self.inner)

    def run(
        self,
        workload: Workload,
        policy: InterpositionPolicy,
        *,
        replica: int = 0,
    ) -> RunResult:
        spec = self.spec
        altered = policy.altered_features()
        key = probe_key(workload, policy, replica)
        if spec.crash_features & altered:
            self._maybe_crash()
        if spec.hang_features & altered:
            time.sleep(spec.hang_s)
            raise ChaosError(f"chaos: hang released after {spec.hang_s:g}s for {key}")
        if spec.error_features & altered or (
            spec.error_rate > 0.0
            and spec.chance("error", key) < spec.error_rate
        ):
            raise ChaosError(f"chaos: injected backend error for {key}")
        result = self.inner.run(workload, policy, replica=replica)
        if spec.flip_features & altered:
            flipped = not result.success
            result = dataclasses.replace(
                result,
                success=flipped,
                failure_reason=None if flipped else "chaos: wrong-answer flip",
            )
        return result

    def _maybe_crash(self) -> None:
        """Kill this process — but only if it is a pool worker.

        The scheduling process is never killed (serial and thread
        executors run chaos inline), and a ``crash_marker`` file makes
        the crash once-only across the whole campaign so recovery can
        re-execute the lost chunk successfully.
        """
        if os.getpid() == self._parent_pid:
            return
        self._crash_calls += 1
        if self._crash_calls < self.spec.crash_after:
            return
        marker = self.spec.crash_marker
        if marker is not None:
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return
            os.close(fd)
        os._exit(139)


def chaos_features(features: Iterable[str]) -> frozenset:
    """Convenience: normalize an iterable of feature names for a spec."""
    return frozenset(features)
