"""The execution-backend protocol: the only door into an application.

The analyzer never inspects an application directly. It submits a
``(workload, policy)`` pair to a backend and gets back a
:class:`RunResult`: did the test script pass, which features were
invoked, what did performance and resource usage look like. Both the
real ptrace backend (:mod:`repro.ptracer.backend`) and the simulation
backend (:mod:`repro.appsim.backend`) implement this protocol, which is
what keeps the analysis honest on simulated applications — it can only
learn what a real Loupe could observe.
"""

from __future__ import annotations

import dataclasses
import pickle
from collections import Counter
from typing import Protocol, runtime_checkable

from repro.core.policy import InterpositionPolicy
from repro.core.workload import Workload


@dataclasses.dataclass(frozen=True)
class ResourceUsage:
    """Peak resource usage sampled during a run (via /proc in the paper)."""

    fd_peak: int = 0
    mem_peak_kb: int = 0

    def scaled_delta(self, baseline: "ResourceUsage") -> tuple[float, float]:
        """Relative (fd, mem) change vs *baseline*; 0.0 when baseline is 0."""
        fd_delta = _relative(self.fd_peak, baseline.fd_peak)
        mem_delta = _relative(self.mem_peak_kb, baseline.mem_peak_kb)
        return fd_delta, mem_delta

    def to_dict(self) -> dict:
        return {"fd_peak": self.fd_peak, "mem_peak_kb": self.mem_peak_kb}

    @staticmethod
    def from_dict(document: dict) -> "ResourceUsage":
        return ResourceUsage(
            fd_peak=int(document.get("fd_peak", 0)),
            mem_peak_kb=int(document.get("mem_peak_kb", 0)),
        )


def _relative(value: float, baseline: float) -> float:
    if baseline == 0:
        return 0.0
    return (value - baseline) / baseline


@dataclasses.dataclass(frozen=True)
class RunResult:
    """Everything one run reveals about the application.

    ``traced`` maps qualified feature names to invocation counts. Plain
    syscall names always appear; when sub-feature tracking is on, the
    vectored syscalls additionally contribute ``syscall:OP`` entries
    (both granularities coexist so reports can aggregate either way).
    ``pseudo_files`` maps accessed special-file paths to access counts.
    """

    success: bool
    traced: Counter
    pseudo_files: Counter = dataclasses.field(default_factory=Counter)
    metric: float | None = None
    resources: ResourceUsage = ResourceUsage()
    exit_code: int = 0
    failure_reason: str | None = None
    duration_s: float = 0.0

    def syscalls(self) -> frozenset[str]:
        """Plain syscall names invoked during the run."""
        return frozenset(name for name in self.traced if ":" not in name and not name.startswith("/"))

    def subfeatures(self) -> frozenset[str]:
        """Qualified ``syscall:OP`` entries invoked during the run."""
        return frozenset(name for name in self.traced if ":" in name)

    def features(self, *, subfeature_level: bool = False) -> frozenset[str]:
        """The probe-able feature set of this run.

        At sub-feature level, vectored syscalls are replaced by their
        observed operations (a partial-implementation study); otherwise
        only whole syscalls are reported.
        """
        if not subfeature_level:
            return self.syscalls() | frozenset(self.pseudo_files)
        vectored_parents = {name.partition(":")[0] for name in self.subfeatures()}
        plain = self.syscalls() - vectored_parents
        return plain | self.subfeatures() | frozenset(self.pseudo_files)

    def to_dict(self) -> dict:
        """JSON-serializable form (the persistent run cache's on-disk
        record); :meth:`from_dict` round-trips it exactly."""
        return {
            "success": self.success,
            "traced": dict(self.traced),
            "pseudo_files": dict(self.pseudo_files),
            "metric": self.metric,
            "resources": self.resources.to_dict(),
            "exit_code": self.exit_code,
            "failure_reason": self.failure_reason,
            "duration_s": self.duration_s,
        }

    @staticmethod
    def from_dict(document: dict) -> "RunResult":
        return RunResult(
            success=bool(document["success"]),
            traced=Counter(document.get("traced", {})),
            pseudo_files=Counter(document.get("pseudo_files", {})),
            metric=document.get("metric"),
            resources=ResourceUsage.from_dict(document.get("resources", {})),
            exit_code=int(document.get("exit_code", 0)),
            failure_reason=document.get("failure_reason"),
            duration_s=float(document.get("duration_s", 0.0)),
        )


@runtime_checkable
class ExecutionBackend(Protocol):
    """Runs one application workload under an interposition policy.

    Beyond ``run``, backends opt into scheduling capabilities by
    declaring capability attributes (absence always means "no"):

    * ``deterministic = True`` — a fixed ``(workload, policy, replica)``
      triple always yields the same result, so the probe engine may
      answer repeats from its run caches;
    * ``parallel_safe = True`` — concurrent runs share no mutable
      state, so replicas of one probe may overlap in time;
    * ``process_safe = True`` — the backend (and its results) survive
      pickling, so runs may be sharded out to worker *processes*
      (:func:`process_shardable` additionally verifies the pickle
      round-trip). The ptrace backend deliberately declares none of
      these: live traced processes contend on ports and on-disk state
      and hold OS handles no child process could inherit.
    """

    name: str

    def run(
        self,
        workload: Workload,
        policy: InterpositionPolicy,
        *,
        replica: int = 0,
    ) -> RunResult:
        """Execute the workload; *replica* seeds run-to-run variation."""
        ...


def backend_name(backend: object) -> str:
    """The backend's stable identity for records and cache keys.

    The single definition every layer (engine cache keys, result
    records, session memoization keys) must share: the declared
    ``name`` attribute, falling back to the class name.
    """
    return getattr(backend, "name", type(backend).__name__)


def process_shardable(backend: object) -> bool:
    """Whether *backend*'s runs may be sharded over worker processes.

    Two conditions, both necessary: the backend must *declare*
    ``process_safe = True`` (the author's promise that runs share no
    parent-process state), and it must actually survive a pickle
    round-trip (the mechanical requirement of handing it to a
    ``ProcessPoolExecutor``). A declared-but-unpicklable backend —
    say, one wrapping a lambda or an open socket — quietly fails the
    check instead of blowing up inside the pool, so schedulers can
    fall back to thread sharding.
    """
    if not getattr(backend, "process_safe", False):
        return False
    try:
        pickle.dumps(backend)
    except Exception:
        return False
    return True
