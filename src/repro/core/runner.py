"""The execution-backend protocol: the only door into an application.

The analyzer never inspects an application directly. It submits a
``(workload, policy)`` pair to a backend and gets back a
:class:`RunResult`: did the test script pass, which features were
invoked, what did performance and resource usage look like. Both the
real ptrace backend (:mod:`repro.ptracer.backend`) and the simulation
backend (:mod:`repro.appsim.backend`) implement this protocol, which is
what keeps the analysis honest on simulated applications — it can only
learn what a real Loupe could observe.
"""

from __future__ import annotations

import dataclasses
import pickle
import warnings
from collections import Counter
from typing import Protocol, runtime_checkable

from repro.core.policy import InterpositionPolicy
from repro.core.workload import Workload


@dataclasses.dataclass(frozen=True)
class ResourceUsage:
    """Peak resource usage sampled during a run (via /proc in the paper)."""

    fd_peak: int = 0
    mem_peak_kb: int = 0

    def scaled_delta(self, baseline: "ResourceUsage") -> tuple[float, float]:
        """Relative (fd, mem) change vs *baseline*; 0.0 when baseline is 0."""
        fd_delta = _relative(self.fd_peak, baseline.fd_peak)
        mem_delta = _relative(self.mem_peak_kb, baseline.mem_peak_kb)
        return fd_delta, mem_delta

    def to_dict(self) -> dict:
        return {"fd_peak": self.fd_peak, "mem_peak_kb": self.mem_peak_kb}

    @staticmethod
    def from_dict(document: dict) -> "ResourceUsage":
        return ResourceUsage(
            fd_peak=int(document.get("fd_peak", 0)),
            mem_peak_kb=int(document.get("mem_peak_kb", 0)),
        )


def _relative(value: float, baseline: float) -> float:
    if baseline == 0:
        return 0.0
    return (value - baseline) / baseline


@dataclasses.dataclass(frozen=True)
class RunResult:
    """Everything one run reveals about the application.

    ``traced`` maps qualified feature names to invocation counts. Plain
    syscall names always appear; when sub-feature tracking is on, the
    vectored syscalls additionally contribute ``syscall:OP`` entries
    (both granularities coexist so reports can aggregate either way).
    ``pseudo_files`` maps accessed special-file paths to access counts.
    """

    success: bool
    traced: Counter
    pseudo_files: Counter = dataclasses.field(default_factory=Counter)
    metric: float | None = None
    resources: ResourceUsage = ResourceUsage()
    exit_code: int = 0
    failure_reason: str | None = None
    duration_s: float = 0.0

    def syscalls(self) -> frozenset[str]:
        """Plain syscall names invoked during the run."""
        return frozenset(name for name in self.traced if ":" not in name and not name.startswith("/"))

    def subfeatures(self) -> frozenset[str]:
        """Qualified ``syscall:OP`` entries invoked during the run."""
        return frozenset(name for name in self.traced if ":" in name)

    def features(self, *, subfeature_level: bool = False) -> frozenset[str]:
        """The probe-able feature set of this run.

        At sub-feature level, vectored syscalls are replaced by their
        observed operations (a partial-implementation study); otherwise
        only whole syscalls are reported.
        """
        if not subfeature_level:
            return self.syscalls() | frozenset(self.pseudo_files)
        vectored_parents = {name.partition(":")[0] for name in self.subfeatures()}
        plain = self.syscalls() - vectored_parents
        return plain | self.subfeatures() | frozenset(self.pseudo_files)

    def to_dict(self) -> dict:
        """JSON-serializable form (the persistent run cache's on-disk
        record); :meth:`from_dict` round-trips it exactly."""
        return {
            "success": self.success,
            "traced": dict(self.traced),
            "pseudo_files": dict(self.pseudo_files),
            "metric": self.metric,
            "resources": self.resources.to_dict(),
            "exit_code": self.exit_code,
            "failure_reason": self.failure_reason,
            "duration_s": self.duration_s,
        }

    @staticmethod
    def from_dict(document: dict) -> "RunResult":
        return RunResult(
            success=bool(document["success"]),
            traced=Counter(document.get("traced", {})),
            pseudo_files=Counter(document.get("pseudo_files", {})),
            metric=document.get("metric"),
            resources=ResourceUsage.from_dict(document.get("resources", {})),
            exit_code=int(document.get("exit_code", 0)),
            failure_reason=document.get("failure_reason"),
            duration_s=float(document.get("duration_s", 0.0)),
        )


@dataclasses.dataclass(frozen=True)
class BackendCapabilities:
    """What one execution backend promises its schedulers and consumers.

    The capability contract of the backend protocol: a frozen,
    all-defaults-false descriptor every backend returns from its
    ``capabilities()`` method. Schedulers (the probe engine, the
    session's multi-target fan-out) consult the descriptor instead of
    sniffing attributes, and cross-validation reports use it to pick
    the reference target. Absence of a capability always means "no" —
    the conservative reading keeps a silent backend safe to schedule.

    * ``deterministic`` — a fixed ``(workload, policy, replica)``
      triple always yields the same result, so run caches may answer
      repeats;
    * ``parallel_safe`` — concurrent runs share no mutable state, so
      runs may overlap in time (replicas of one probe, or whole
      analyses of a multi-target fan-out);
    * ``process_safe`` — the backend (and its results) survive
      pickling, so runs may be sharded out to worker *processes*
      (:func:`process_shardable` additionally verifies the pickle
      round-trip);
    * ``supports_pseudo_files`` — runs observe accesses to special
      files (``/dev/...``, ``/proc/...``), so pseudo-file analysis is
      meaningful;
    * ``supports_subfeatures`` — runs qualify vectored syscalls with
      the operation invoked (``fcntl:F_SETFD``), so sub-feature
      analysis is meaningful;
    * ``real_execution`` — runs execute the real application on the
      real kernel (the ptrace backend) rather than a model of it;
      cross-validation prefers such a target as its reference.
    * ``static_analysis`` — runs never execute anything: they report a
      statically extracted syscall footprint (the ``static``
      pseudo-backend). Cross-validation compares such a target's
      footprint against dynamic observations instead of diffing run
      behavior, classifying the expected static ⊇ dynamic direction as
      over-approximation and the reverse as a soundness violation.
    """

    deterministic: bool = False
    parallel_safe: bool = False
    process_safe: bool = False
    supports_pseudo_files: bool = False
    supports_subfeatures: bool = False
    real_execution: bool = False
    static_analysis: bool = False

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @staticmethod
    def from_dict(document: dict) -> "BackendCapabilities":
        fields = {f.name for f in dataclasses.fields(BackendCapabilities)}
        return BackendCapabilities(**{
            name: bool(value)
            for name, value in document.items()
            if name in fields
        })


#: The pre-contract spelling: bare boolean attributes on the backend
#: object. :func:`capabilities_of` synthesizes a descriptor from them
#: (and warns) so backends written against the old protocol keep
#: scheduling exactly as before.
_LEGACY_CAPABILITY_ATTRIBUTES = (
    "deterministic", "parallel_safe", "process_safe"
)


def capabilities_of(backend: object) -> BackendCapabilities:
    """The backend's capability contract, via ``capabilities()``.

    This is the single sanctioned way to read capabilities — nothing
    outside this function may sniff capability attributes. Backends
    that predate the contract and still declare bare attributes
    (``deterministic``/``parallel_safe``/``process_safe``) keep
    working through the legacy shim below: the attributes are
    synthesized into a descriptor and a :class:`DeprecationWarning`
    points at the method. A backend declaring neither is scheduled
    with no capabilities at all (serial, uncached) — the conservative
    default the old ``getattr(..., False)`` sniffing encoded.
    """
    method = getattr(backend, "capabilities", None)
    if isinstance(method, BackendCapabilities):
        # A descriptor stored as a plain attribute is an honest (and
        # natural dataclass-style) declaration; accept it rather than
        # silently scheduling the backend with no capabilities.
        return method
    if method is not None and not callable(method):
        raise TypeError(
            f"{type(backend).__name__}.capabilities must be a method "
            f"returning BackendCapabilities (or a BackendCapabilities "
            f"instance), got {type(method).__name__}"
        )
    if callable(method):
        capabilities = method()
        if not isinstance(capabilities, BackendCapabilities):
            raise TypeError(
                f"{type(backend).__name__}.capabilities() must return a "
                f"BackendCapabilities descriptor, got "
                f"{type(capabilities).__name__}"
            )
        return capabilities
    # Legacy shim: synthesize the descriptor from declared attributes.
    declared = [
        name for name in _LEGACY_CAPABILITY_ATTRIBUTES
        if hasattr(backend, name)
    ]
    if declared:
        warnings.warn(
            f"{type(backend).__name__} declares legacy capability "
            f"attribute(s) {', '.join(declared)}; implement a "
            f"capabilities() method returning BackendCapabilities "
            f"instead",
            DeprecationWarning,
            stacklevel=2,
        )
    return BackendCapabilities(**{
        name: bool(getattr(backend, name, False))
        for name in _LEGACY_CAPABILITY_ATTRIBUTES
    })


@runtime_checkable
class ExecutionBackend(Protocol):
    """Runs one application workload under an interposition policy.

    Beyond ``run``, backends declare their scheduling contract by
    returning a :class:`BackendCapabilities` descriptor from
    :meth:`capabilities` — deterministic runs may be cached,
    parallel-safe runs may overlap, process-safe backends may be
    sharded over worker processes (see the descriptor for the full
    vocabulary). The ptrace backend deliberately declares none of the
    scheduling capabilities: live traced processes contend on ports
    and on-disk state and hold OS handles no child process could
    inherit. Backends that predate the descriptor and declare bare
    boolean attributes instead keep working through the
    :func:`capabilities_of` legacy shim (with a deprecation warning).
    """

    name: str

    def capabilities(self) -> BackendCapabilities:
        """The backend's scheduling/feature contract."""
        ...

    def run(
        self,
        workload: Workload,
        policy: InterpositionPolicy,
        *,
        replica: int = 0,
    ) -> RunResult:
        """Execute the workload; *replica* seeds run-to-run variation."""
        ...


def backend_name(backend: object) -> str:
    """The backend's stable identity for records and cache keys.

    The single definition every layer (engine cache keys, result
    records, session memoization keys) must share: the declared
    ``name`` attribute, falling back to the class name.
    """
    return getattr(backend, "name", type(backend).__name__)


def process_shardable(
    backend: object,
    *,
    capabilities: "BackendCapabilities | None" = None,
) -> bool:
    """Whether *backend*'s runs may be sharded over worker processes.

    Two conditions, both necessary: the backend's capability contract
    must declare ``process_safe`` (the author's promise that runs
    share no parent-process state), and the backend must actually
    survive a pickle round-trip (the mechanical requirement of handing
    it to a ``ProcessPoolExecutor``). A declared-but-unpicklable
    backend — say, one wrapping a lambda or an open socket — quietly
    fails the check instead of blowing up inside the pool, so
    schedulers can fall back to thread sharding. Callers that already
    resolved the descriptor pass it as *capabilities* to skip the
    (possibly legacy-shimmed) re-resolution.
    """
    if capabilities is None:
        capabilities = capabilities_of(backend)
    if not capabilities.process_safe:
        return False
    try:
        pickle.dumps(backend)
    except Exception:
        return False
    return True
