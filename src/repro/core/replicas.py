"""Replica orchestration: repeated runs and conservative aggregation.

Loupe replicates every analysis (3x by default) "to maximize the
reliability and reproducibility of the results" (Section 3.1). This
module runs the replicas and condenses them into a
:class:`ProbeOutcome`: success only if *all* replicas succeeded, plus
the metric/resource samples the impact analysis needs.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from collections.abc import Sequence

from repro.core.faults import ProbeFault
from repro.core.policy import InterpositionPolicy
from repro.core.runner import ExecutionBackend, RunResult
from repro.core.workload import Workload


@dataclasses.dataclass(frozen=True)
class ProbeOutcome:
    """Condensed view of N replicated runs under one policy.

    ``faults`` lists the replicas the fault policy quarantined
    (timeouts, worker crashes, ...): those produced no
    :class:`RunResult` at all. A fault is weaker evidence than a
    failure — see :func:`aggregate` for how the two combine.
    """

    results: tuple[RunResult, ...]
    all_succeeded: bool
    metric_samples: tuple[float, ...]
    fd_samples: tuple[float, ...]
    mem_samples: tuple[float, ...]
    faults: tuple[ProbeFault, ...] = ()

    @property
    def replica_count(self) -> int:
        return len(self.results)

    @property
    def undecided(self) -> bool:
        """No verdict is honest: replicas faulted, none decidedly failed.

        A genuine observed failure *decides* the probe (the
        conservative merge needs only one), faults or not. But when
        every observed replica succeeded and at least one replica
        faulted, neither "works" nor "breaks" is supported by the
        evidence — the probe is undecided and callers must not treat
        ``all_succeeded == False`` as a decided failure.
        """
        return bool(self.faults) and all(r.success for r in self.results)

    def union_traced(self) -> Counter:
        """Invocation counts united across replicas (max per feature).

        Taking the max rather than the sum keeps counts comparable with
        a single run while still being conservative about which
        features were seen (any replica seeing a feature counts).
        """
        union: Counter = Counter()
        for result in self.results:
            for feature, count in result.traced.items():
                union[feature] = max(union[feature], count)
        return union

    def union_pseudofiles(self) -> Counter:
        union: Counter = Counter()
        for result in self.results:
            for path, count in result.pseudo_files.items():
                union[path] = max(union[path], count)
        return union

    def failure_reasons(self) -> tuple[str, ...]:
        return tuple(
            r.failure_reason for r in self.results
            if not r.success and r.failure_reason
        )


def aggregate(
    results: Sequence[RunResult],
    *,
    faults: Sequence[ProbeFault] = (),
) -> ProbeOutcome:
    """Condense already-executed runs into a :class:`ProbeOutcome`.

    Shared by the serial :func:`run_replicas` loop and the parallel
    :class:`~repro.core.engine.ProbeEngine` scheduler, so both paths
    apply the identical conservative merge.

    Quarantined replicas arrive as *faults*: they weaken the outcome
    (``all_succeeded`` requires every replica to have actually
    succeeded, so any fault forfeits it) but do not decide it — an
    observed genuine failure dominates, and with faults-but-no-failure
    the outcome is :attr:`ProbeOutcome.undecided`. An outcome may be
    all faults and no results; zero of both is still an error.
    """
    results = tuple(results)
    faults = tuple(faults)
    if not results and not faults:
        raise ValueError("cannot aggregate zero runs")
    return ProbeOutcome(
        results=results,
        all_succeeded=bool(results)
        and not faults
        and all(r.success for r in results),
        metric_samples=tuple(r.metric for r in results if r.metric is not None),
        fd_samples=tuple(float(r.resources.fd_peak) for r in results),
        mem_samples=tuple(float(r.resources.mem_peak_kb) for r in results),
        faults=faults,
    )


def run_replicas(
    backend: ExecutionBackend,
    workload: Workload,
    policy: InterpositionPolicy,
    replicas: int,
    *,
    early_exit: bool = True,
) -> ProbeOutcome:
    """Run up to *replicas* independent executions and aggregate them.

    Replica indices seed run-to-run variation in backends that model
    noise; real backends simply rerun the application. The outcome's
    ``all_succeeded`` implements the conservative merge: one failing
    replica disqualifies the probed technique.

    Behavior change vs. the original serial loop: with ``early_exit``
    (now the default) replication stops at the first failed replica —
    one failure already decides ``all_succeeded``, and metric/resource
    samples are only consumed by the impact analysis when every replica
    succeeded, so the abandoned replicas could never influence the
    analysis. Pass ``early_exit=False`` to force the historical
    run-everything behavior (e.g. to collect failure reasons from every
    replica). For pool-parallel execution and run-result caching, use
    :class:`repro.core.engine.ProbeEngine` instead.
    """
    if replicas < 1:
        raise ValueError("need at least one replica")
    results: list[RunResult] = []
    for index in range(replicas):
        result = backend.run(workload, policy, replica=index)
        results.append(result)
        if early_exit and not result.success:
            break
    return aggregate(results)
