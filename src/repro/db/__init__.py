"""Results database: the paper's shared loupedb, reproduced locally."""

from repro.db.schema import SCHEMA_VERSION, RecordKey, validate_document
from repro.db.store import Database

__all__ = ["Database", "RecordKey", "SCHEMA_VERSION", "validate_document"]
