"""The results database (the paper's shared loupedb, locally).

Analyses are expensive (the paper quotes 4 minutes to 1.5 days per
application) but final for a fixed build + workload, so Loupe shares
them through a database that "can be populated and looked up by any
individual running Loupe" (Section 3.3). This is that store: JSON on
disk, keyed by (app, version, workload, backend), with conservative
merge semantics for combining databases from different sources.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.core.result import AnalysisResult
from repro.db.schema import SCHEMA_VERSION, RecordKey, validate_document
from repro.errors import DatabaseError


class Database:
    """A mapping of :class:`RecordKey` -> :class:`AnalysisResult`.

    ``metadata`` mirrors the paper's submission metadata (point E in
    Figure 1): free-form facts about where the measurements came from
    (kernel version, hostname, Loupe version). It is persisted verbatim
    and merged shallowly.
    """

    def __init__(self, metadata: "dict[str, str] | None" = None) -> None:
        self._records: dict[RecordKey, AnalysisResult] = {}
        self.metadata: dict[str, str] = dict(metadata or {})

    # -- basic mapping behavior ---------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[AnalysisResult]:
        return iter(self._records.values())

    def __contains__(self, key: RecordKey) -> bool:
        return key in self._records

    # -- CRUD -----------------------------------------------------------------

    def add(self, result: AnalysisResult, *, overwrite: bool = True) -> None:
        key = RecordKey.of(result)
        if not overwrite and key in self._records:
            raise DatabaseError(f"record {key.as_string()!r} already present")
        self._records[key] = result

    def get(self, key: RecordKey) -> AnalysisResult:
        found = self._records.get(key)
        if found is None:
            raise DatabaseError(f"no record for {key.as_string()!r}")
        return found

    def find(
        self,
        app: str,
        workload: str | None = None,
        *,
        backend: str | None = None,
    ) -> list[AnalysisResult]:
        """All records for *app*, optionally narrowed by workload/backend."""
        return [
            result
            for key, result in sorted(
                self._records.items(), key=lambda kv: kv[0].as_string()
            )
            if key.app == app
            and (workload is None or key.workload == workload)
            and (backend is None or key.backend == backend)
        ]

    def apps(self) -> list[str]:
        return sorted({key.app for key in self._records})

    # -- merge -----------------------------------------------------------------

    def merge(self, other: "Database") -> int:
        """Absorb *other*; newer records win on key collision.

        Returns the number of records added or replaced. Records are
        compared by serialized payload, not identity, so merging two
        structurally-equal databases (e.g. the same records loaded
        from two files) reports zero changes.
        """
        changed = 0
        for key, result in other._records.items():
            existing = self._records.get(key)
            if existing is None or existing.to_dict() != result.to_dict():
                self._records[key] = result
                changed += 1
        self.metadata.update(other.metadata)
        return changed

    # -- persistence --------------------------------------------------------------

    def to_document(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "metadata": dict(sorted(self.metadata.items())),
            "records": {
                key.as_string(): result.to_dict()
                for key, result in sorted(
                    self._records.items(), key=lambda kv: kv[0].as_string()
                )
            },
        }

    @staticmethod
    def from_document(document: dict) -> "Database":
        validate_document(document)
        database = Database(metadata=document.get("metadata") or {})
        for raw_key, payload in document["records"].items():
            key = RecordKey.from_string(raw_key)
            result = AnalysisResult.from_dict(payload)
            if RecordKey.of(result) != key:
                raise DatabaseError(
                    f"record key {raw_key!r} disagrees with its payload"
                )
            database._records[key] = result
        return database

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_document(), indent=1))

    @staticmethod
    def load(path: str | Path) -> "Database":
        try:
            document = json.loads(Path(path).read_text())
        except json.JSONDecodeError as error:
            raise DatabaseError(f"corrupt database file {path}: {error}") from error
        return Database.from_document(document)

    @staticmethod
    def collect(results: Iterable[AnalysisResult]) -> "Database":
        database = Database()
        for result in results:
            database.add(result)
        return database
