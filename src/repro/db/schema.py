"""Record schema and validation for the results database.

Mirrors the role of the shared loupedb (paper Section 3.3): results are
final for a fixed build of the software, workload, and kernel, so they
are stored with enough metadata to be looked up instead of re-measured.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.core.result import AnalysisResult
from repro.errors import DatabaseError

#: Bumped whenever the stored JSON layout changes incompatibly.
SCHEMA_VERSION = 1

_REQUIRED_TOP_LEVEL = ("schema", "records")


@dataclasses.dataclass(frozen=True)
class RecordKey:
    """Primary key of one stored analysis."""

    app: str
    app_version: str
    workload: str
    backend: str

    @staticmethod
    def of(result: AnalysisResult) -> "RecordKey":
        return RecordKey(
            app=result.app,
            app_version=result.app_version,
            workload=result.workload,
            backend=result.backend,
        )

    def as_string(self) -> str:
        return "|".join(
            (self.app, self.app_version, self.workload, self.backend)
        )

    @staticmethod
    def from_string(raw: str) -> "RecordKey":
        parts = raw.split("|")
        if len(parts) != 4:
            raise DatabaseError(f"malformed record key {raw!r}")
        return RecordKey(*parts)


def validate_document(document: Any) -> None:
    """Raise :class:`DatabaseError` unless *document* looks like ours."""
    if not isinstance(document, dict):
        raise DatabaseError("database document must be a JSON object")
    for field in _REQUIRED_TOP_LEVEL:
        if field not in document:
            raise DatabaseError(f"database document lacks {field!r}")
    if document["schema"] != SCHEMA_VERSION:
        raise DatabaseError(
            f"unsupported schema version {document['schema']!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    if not isinstance(document["records"], dict):
        raise DatabaseError("records must be an object keyed by record key")
