"""Application simulation substrate.

Stands in for the paper's corpus of real Linux applications: programs
are modeled as annotated syscall traces whose *failure policies*
(ignore / fallback / safe default / disable feature / abort) and *fake
reactions* (harmless / breaks feature / breaks core / detected)
reproduce the resilience mechanisms cataloged in Section 5.2. The
analyzer only ever sees these programs through the standard
:class:`~repro.core.runner.ExecutionBackend` protocol.
"""

from repro.appsim.backend import SimBackend
from repro.appsim.behavior import (
    FakeKind,
    FakeReaction,
    MetricShift,
    StubKind,
    StubReaction,
    abort,
    as_failure,
    breaks,
    breaks_core,
    disable,
    fallback,
    harmless,
    ignore,
    safe_default,
)
from repro.appsim.corpus import (
    CLOUD_APPS,
    CORPUS_SIZE,
    HANDBUILT,
    SEVEN_APPS,
    build,
    cloud_apps,
    corpus,
    seven_apps,
)
from repro.appsim.libc import (
    GLIBC_228_DYNAMIC,
    GLIBC_228_STATIC,
    GLIBC_231_DYNAMIC,
    MUSL_122_DYNAMIC,
    MUSL_122_STATIC,
    LibcModel,
)
from repro.appsim.program import Origin, Phase, SimProgram, SyscallOp, WorkloadProfile
from repro.appsim.runtime import SimProcess
from repro.appsim.apps import App
from repro.api.registry import (
    BackendResolutionError,
    ResolvedTarget,
    register_backend,
)


def _appsim_backend_factory(request) -> ResolvedTarget:
    """Resolve an :class:`~repro.api.session.AnalysisRequest` against
    the hand-built simulation corpus."""
    if request.app not in HANDBUILT:
        raise BackendResolutionError(
            f"unknown app {request.app!r}; choose from: "
            f"{', '.join(sorted(HANDBUILT))}"
        )
    app = build(request.app)
    try:
        workload = app.workload(request.workload)
    except KeyError as error:
        raise BackendResolutionError(str(error)) from error
    return ResolvedTarget(
        backend=app.backend(),
        workload=workload,
        app=app.name,
        app_version=app.version,
    )


# Self-registration: importing the package makes the simulation corpus
# reachable as ``--backend appsim`` / ``AnalysisRequest(backend="appsim")``.
# No replace=True: a conflicting earlier registration under this name
# should fail loudly rather than be silently clobbered (re-importing is
# harmless — identical factories re-register freely).
register_backend("appsim", _appsim_backend_factory)

__all__ = [
    "App",
    "CLOUD_APPS",
    "CORPUS_SIZE",
    "FakeKind",
    "FakeReaction",
    "GLIBC_228_DYNAMIC",
    "GLIBC_228_STATIC",
    "GLIBC_231_DYNAMIC",
    "HANDBUILT",
    "LibcModel",
    "MUSL_122_DYNAMIC",
    "MUSL_122_STATIC",
    "MetricShift",
    "Origin",
    "Phase",
    "SEVEN_APPS",
    "SimBackend",
    "SimProcess",
    "SimProgram",
    "StubKind",
    "StubReaction",
    "SyscallOp",
    "WorkloadProfile",
    "abort",
    "as_failure",
    "breaks",
    "breaks_core",
    "build",
    "cloud_apps",
    "corpus",
    "disable",
    "fallback",
    "harmless",
    "ignore",
    "safe_default",
    "seven_apps",
]
