"""The program model: simulated applications as annotated syscall traces.

A :class:`SimProgram` is an ordered list of :class:`SyscallOp` call
sites, grouped into phases (libc init, application startup, workload
loop, shutdown). Each op records:

* which syscall (and optionally which sub-feature / pseudo-file path)
  it invokes and how many times,
* whether the *source code* checks the wrapper's return value (ground
  truth for the paper's Figure 7 study — orthogonal to actual
  resilience, as the paper stresses),
* its :class:`~repro.appsim.behavior.StubReaction` — the code path
  taken when the syscall fails, and
* its :class:`~repro.appsim.behavior.FakeReaction` — the consequence of
  a forged success.

The op's *feature* tag ties it to application functionality ("core",
"persistence", "access-logging"...). Workloads declare which features
they exercise; a run fails when an exercised feature has been broken.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.appsim.behavior import FakeReaction, StubReaction, abort, harmless
from repro.core.pseudofiles import is_pseudo_path
from repro.errors import LoupeError
from repro.syscalls import exists


class Origin(enum.Enum):
    """Which layer of the process issues the call (Section 5.6)."""

    APP = "app"
    LIBC = "libc"


class Phase(enum.Enum):
    """Execution phase of a call site."""

    INIT = "init"            # libc initialization sequence
    STARTUP = "startup"      # application setup before serving
    WORKLOAD = "workload"    # per-request / steady-state loop
    SHUTDOWN = "shutdown"


@dataclasses.dataclass(frozen=True)
class SyscallOp:
    """One call site of a simulated application."""

    syscall: str
    count: int = 1
    subfeature: str | None = None
    path: str | None = None                    # open-family path argument
    feature: str = "core"                      # app feature this op serves
    phase: Phase = Phase.STARTUP
    origin: Origin = Origin.APP
    checks_return: bool = True
    #: When set, the op only executes if the workload exercises one of
    #: these features — how test suites come to trace more syscalls
    #: than benchmarks (Figure 4). ``None`` means the op always runs.
    when: frozenset[str] | None = None
    on_stub: StubReaction = dataclasses.field(default_factory=abort)
    on_fake: FakeReaction = dataclasses.field(default_factory=harmless)

    def __post_init__(self) -> None:
        if not exists(self.syscall):
            raise LoupeError(f"op references unknown syscall {self.syscall!r}")
        if self.count < 1:
            raise LoupeError("op count must be >= 1")
        if self.path is not None and not self.path.startswith("/"):
            raise LoupeError(f"op path {self.path!r} must be absolute")

    @property
    def qualified(self) -> str:
        if self.subfeature is not None:
            return f"{self.syscall}:{self.subfeature}"
        return self.syscall

    @property
    def touches_pseudo_file(self) -> bool:
        return self.path is not None and is_pseudo_path(self.path)


@dataclasses.dataclass(frozen=True)
class WorkloadProfile:
    """Baseline behavior of the app under one named workload."""

    metric: float | None = None       # e.g. requests/s for a benchmark
    fd_peak: int = 16
    mem_peak_kb: int = 8_192
    noise: float = 0.004              # relative run-to-run metric noise


@dataclasses.dataclass(frozen=True)
class SimProgram:
    """A complete simulated application."""

    name: str
    version: str
    ops: tuple[SyscallOp, ...]
    features: frozenset[str] = frozenset({"core"})
    profiles: "dict[str, WorkloadProfile]" = dataclasses.field(default_factory=dict)
    #: Extra syscalls a *static* analyzer would report: dead code,
    #: error-handling paths, unused configuration features. Keys name
    #: the static view ("binary" reports a superset of "source").
    static_extra: "dict[str, frozenset[str]]" = dataclasses.field(default_factory=dict)
    #: Ground truth for the return-check study that cannot be attached
    #: to a single op (wrapper-less direct syscall(2) invocations).
    description: str = ""

    def __post_init__(self) -> None:
        declared = set(self.features) | {"core"}
        for op in self.ops:
            if op.feature not in declared:
                raise LoupeError(
                    f"{self.name}: op {op.qualified} references undeclared "
                    f"feature {op.feature!r}"
                )
            if op.when is not None and not set(op.when) <= declared:
                raise LoupeError(
                    f"{self.name}: op {op.qualified} gated on undeclared "
                    f"feature(s) {sorted(set(op.when) - declared)}"
                )
            if op.on_stub.feature is not None and op.on_stub.feature not in declared:
                raise LoupeError(
                    f"{self.name}: stub reaction of {op.qualified} references "
                    f"undeclared feature {op.on_stub.feature!r}"
                )
            if op.on_fake.feature is not None and op.on_fake.feature not in declared:
                raise LoupeError(
                    f"{self.name}: fake reaction of {op.qualified} references "
                    f"undeclared feature {op.on_fake.feature!r}"
                )

    # -- static views ------------------------------------------------------

    def live_syscalls(self) -> frozenset[str]:
        """Every syscall with a live call site, including fallback paths.

        This is what *source-level* inspection of the program would
        enumerate; the passthrough dynamic trace is a subset (fallback
        paths and feature-gated ops may never execute).
        """
        names = {op.syscall for op in self.ops}
        names.update(
            op.on_stub.fallback.syscall            # type: ignore[union-attr]
            for op in self.ops
            if op.on_stub.fallback is not None
        )
        return frozenset(names)

    def static_view(self, level: str) -> frozenset[str]:
        """What a static analyzer at *level* ("source"/"binary") reports.

        Static analysis is conservative: it sees every live call site
        plus dead/error-path code; binary-level additionally picks up
        linked-but-unused library code (Section 5.1's 2-5x factors).
        """
        return self.live_syscalls() | self.static_extra.get(level, frozenset())

    def profile(self, workload_name: str) -> WorkloadProfile:
        """Baseline profile for a workload (named or default)."""
        if workload_name in self.profiles:
            return self.profiles[workload_name]
        return self.profiles.get("*", WorkloadProfile())

    def ops_checking_returns(self) -> frozenset[str]:
        """Syscalls whose wrapper return value the app's code checks.

        Only wrapper call sites originating in application code count —
        the paper's Figure 7 inspects user-written source, not libc
        internals.
        """
        return frozenset(
            op.syscall
            for op in self.ops
            if op.origin is Origin.APP and op.checks_return
        )

    def app_syscalls(self) -> frozenset[str]:
        """Syscalls invoked from application (non-libc) call sites."""
        return frozenset(op.syscall for op in self.ops if op.origin is Origin.APP)
