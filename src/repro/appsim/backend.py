"""Simulation execution backend: SimProgram behind the backend protocol.

The analyzer talks to this class exactly as it talks to the real
ptrace backend — submit a policy and a workload, observe a
:class:`RunResult`. Nothing about the program's failure policies or
fake reactions is visible through this interface.
"""

from __future__ import annotations

import dataclasses

from repro.appsim.program import SimProgram
from repro.appsim.runtime import SimProcess
from repro.core.policy import InterpositionPolicy
from repro.core.runner import BackendCapabilities, RunResult
from repro.core.workload import Workload


@dataclasses.dataclass
class SimBackend:
    """An :class:`ExecutionBackend` over one simulated application."""

    program: SimProgram

    def __post_init__(self) -> None:
        self._process = SimProcess(self.program)
        self.name = f"sim:{self.program.name}-{self.program.version}"
        #: Simulated runs are reproducible by construction (even the
        #: metric noise is a hash of the run identity), so the probe
        #: engine may answer repeats from its run cache.
        self.deterministic = True
        #: Runs share no state (SimProcess keeps all run state local),
        #: so replicas may execute concurrently.
        self.parallel_safe = True
        #: The whole backend is plain picklable data (a SimProgram of
        #: frozen dataclasses), so runs may be sharded out to worker
        #: *processes* — the simulation is CPU-bound pure Python, and
        #: process sharding is what lifts the GIL cap on it.
        self.process_safe = True

    def capabilities(self) -> BackendCapabilities:
        """The simulator's scheduling/feature contract.

        Reads through the instance attributes above (rather than
        returning a constant) so tests and embedders that tune a
        single flag on one backend object — say, withdrawing
        ``process_safe`` — get a contract that follows. Tune flags
        *before* handing the object to a scheduler: the probe engine
        resolves the contract once per backend object per analysis
        (:meth:`~repro.core.engine.ProbeEngine.capabilities_for`), so
        a mid-analysis flip is not observed until the next
        ``reset()``. Pseudo-files
        and sub-features are first-class in the program model, so both
        analysis modes are meaningful; ``real_execution`` stays False —
        this is a *model* of the application, which is exactly what
        cross-validation against the ptrace backend is meant to check.
        """
        return BackendCapabilities(
            deterministic=self.deterministic,
            parallel_safe=self.parallel_safe,
            process_safe=self.process_safe,
            supports_pseudo_files=True,
            supports_subfeatures=True,
            real_execution=False,
        )

    def run(
        self,
        workload: Workload,
        policy: InterpositionPolicy,
        *,
        replica: int = 0,
    ) -> RunResult:
        return self._process.run(workload, policy, replica=replica)
