"""Simulation execution backend: SimProgram behind the backend protocol.

The analyzer talks to this class exactly as it talks to the real
ptrace backend — submit a policy and a workload, observe a
:class:`RunResult`. Nothing about the program's failure policies or
fake reactions is visible through this interface.
"""

from __future__ import annotations

import dataclasses

from repro.appsim.program import SimProgram
from repro.appsim.runtime import SimProcess
from repro.core.policy import InterpositionPolicy
from repro.core.runner import RunResult
from repro.core.workload import Workload


@dataclasses.dataclass
class SimBackend:
    """An :class:`ExecutionBackend` over one simulated application."""

    program: SimProgram

    def __post_init__(self) -> None:
        self._process = SimProcess(self.program)
        self.name = f"sim:{self.program.name}-{self.program.version}"
        #: Simulated runs are reproducible by construction (even the
        #: metric noise is a hash of the run identity), so the probe
        #: engine may answer repeats from its run cache.
        self.deterministic = True
        #: Runs share no state (SimProcess keeps all run state local),
        #: so replicas may execute concurrently.
        self.parallel_safe = True
        #: The whole backend is plain picklable data (a SimProgram of
        #: frozen dataclasses), so runs may be sharded out to worker
        #: *processes* — the simulation is CPU-bound pure Python, and
        #: process sharding is what lifts the GIL cap on it.
        self.process_safe = True

    def run(
        self,
        workload: Workload,
        policy: InterpositionPolicy,
        *,
        replica: int = 0,
    ) -> RunResult:
        return self._process.run(workload, policy, replica=replica)
