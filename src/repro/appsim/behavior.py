"""Failure-handling semantics of simulated applications.

The paper's Section 5.2 catalogs *why* programs survive stubbing and
faking. We model exactly those mechanisms, so that an application's
resilience is a consequence of its (modeled) code structure rather than
a label the analyzer could cheat off:

* **Ignoring the issue** — Redis ignores ``sysinfo`` failure (the value
  only feeds debug logs).
* **Using other system calls** — glibc's allocator falls back to
  ``mmap`` when ``brk`` fails; SQLite re-allocates with ``mmap`` when
  ``mremap`` fails.
* **Falling back to safe defaults** — Redis assumes 1024 descriptors
  when ``getrlimit`` fails, 80 columns when ``ioctl(TCGETS)`` fails.
* **Disabling functionality** — glibc disables NSCD name caching when
  ``connect`` fails.
* **Aborting** — Nginx exits when ``prctl(PR_SET_KEEPCAPS)`` fails
  (making the call *stub-resistant* yet *fakeable*).

Faking has its own outcome space: a lied success can be harmless
(``setsid`` in a unikernel), silently break a feature (``pipe2`` →
Redis persistence), break core functioning (``futex`` → inconsistent
synchronization), or be detected by the caller's value checks and
behave exactly like a failure (``brk`` — the libc compares the returned
break against what it asked for).

Reactions can also carry metric consequences (Table 2): stubbing
``write`` in Nginx *increases* throughput (+15%, access logs skipped);
stubbing ``rt_sigsuspend`` turns the master loop into busy-waiting
(-38%); faking ``futex`` in Redis costs -66% throughput and +94% file
descriptors.
"""

from __future__ import annotations

import dataclasses
import enum


class StubKind(enum.Enum):
    """What the application does when a syscall returns an error."""

    IGNORE = "ignore"                  # failure is inconsequential
    ABORT = "abort"                    # treat as fatal, exit
    FALLBACK = "fallback"              # invoke an alternative syscall
    SAFE_DEFAULT = "safe-default"      # adopt a conservative default value
    DISABLE_FEATURE = "disable-feature"  # turn the dependent feature off


class FakeKind(enum.Enum):
    """What happens when the kernel lies that a syscall succeeded."""

    HARMLESS = "harmless"              # nothing depended on the real effect
    BREAKS_FEATURE = "breaks-feature"  # a feature silently stops working
    BREAKS_CORE = "breaks-core"        # core functioning is corrupted
    AS_FAILURE = "as-failure"          # caller validates the result and
    #                                    treats the lie as a failure


@dataclasses.dataclass(frozen=True)
class MetricShift:
    """Relative metric consequences of a reaction, vs the app baseline.

    ``perf_factor`` multiplies the workload's performance metric
    (1.0 = unchanged, 1.15 = +15%, 0.62 = -38%). ``fd_frac`` and
    ``mem_frac`` shift peak descriptor count and peak memory by a
    fraction of baseline (+7.0 = x8 descriptors, +0.17 = +17% memory).
    """

    perf_factor: float = 1.0
    fd_frac: float = 0.0
    mem_frac: float = 0.0

    @property
    def neutral(self) -> bool:
        return self.perf_factor == 1.0 and self.fd_frac == 0.0 and self.mem_frac == 0.0


NEUTRAL = MetricShift()


@dataclasses.dataclass(frozen=True)
class StubReaction:
    """Reaction of one call site to a stubbed (-ENOSYS) syscall."""

    kind: StubKind
    feature: str | None = None          # DISABLE_FEATURE target
    fallback: "object | None" = None    # SyscallOp invoked for FALLBACK
    shift: MetricShift = NEUTRAL

    def __post_init__(self) -> None:
        if self.kind is StubKind.DISABLE_FEATURE and not self.feature:
            raise ValueError("DISABLE_FEATURE needs a feature name")
        if self.kind is StubKind.FALLBACK and self.fallback is None:
            raise ValueError("FALLBACK needs a fallback op")


@dataclasses.dataclass(frozen=True)
class FakeReaction:
    """Reaction of one call site to a faked (lied-success) syscall."""

    kind: FakeKind
    feature: str | None = None          # BREAKS_FEATURE target
    shift: MetricShift = NEUTRAL

    def __post_init__(self) -> None:
        if self.kind is FakeKind.BREAKS_FEATURE and not self.feature:
            raise ValueError("BREAKS_FEATURE needs a feature name")


# -- concise constructors (the app models read much better with these) -------


def ignore(**shift: float) -> StubReaction:
    return StubReaction(kind=StubKind.IGNORE, shift=MetricShift(**shift))


def abort() -> StubReaction:
    return StubReaction(kind=StubKind.ABORT)


def fallback(op: object, **shift: float) -> StubReaction:
    return StubReaction(kind=StubKind.FALLBACK, fallback=op, shift=MetricShift(**shift))


def safe_default(**shift: float) -> StubReaction:
    return StubReaction(kind=StubKind.SAFE_DEFAULT, shift=MetricShift(**shift))


def disable(feature: str, **shift: float) -> StubReaction:
    return StubReaction(
        kind=StubKind.DISABLE_FEATURE, feature=feature, shift=MetricShift(**shift)
    )


def harmless(**shift: float) -> FakeReaction:
    return FakeReaction(kind=FakeKind.HARMLESS, shift=MetricShift(**shift))


def breaks(feature: str, **shift: float) -> FakeReaction:
    return FakeReaction(
        kind=FakeKind.BREAKS_FEATURE, feature=feature, shift=MetricShift(**shift)
    )


def breaks_core(**shift: float) -> FakeReaction:
    return FakeReaction(kind=FakeKind.BREAKS_CORE, shift=MetricShift(**shift))


def as_failure() -> FakeReaction:
    return FakeReaction(kind=FakeKind.AS_FAILURE)
