"""Additional corpus members: gzip, a JIT language runtime, RabbitMQ.

These extend the corpus beyond the 15 Table 1 cloud applications with
genuinely different shapes: a pipe-oriented CLI tool (no sockets, no
threads), a JIT runtime (``mprotect`` is load-bearing — W^X flipping),
and an Erlang-VM-style message broker (port-mapper sockets, ETS file
spills, heavy timer usage).
"""

from __future__ import annotations

from repro.appsim.apps import App
from repro.appsim.apps.blocks import nscd_block, op, with_static_views
from repro.appsim.behavior import (
    abort,
    breaks,
    breaks_core,
    disable,
    harmless,
    ignore,
    safe_default,
)
from repro.appsim.libc import LibcModel
from repro.appsim.program import Phase, SimProgram, WorkloadProfile
from repro.core.workload import benchmark, health_check, test_suite


def build_gzip(version: str = "1.10") -> App:
    """gzip: a pure filter — stdin/stdout plus a handful of file ops."""
    libc = LibcModel("glibc", "2.28", "dynamic", brk_fallback_mem_frac=0.03)
    keep = frozenset({"keep-metadata"})
    ops = tuple(
        list(libc.init_ops())
        + [
            op("read", 32, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("write", 32, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("openat", 2, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("fstat", 2, on_stub=ignore(), on_fake=harmless()),
            op("lstat", 1, on_stub=ignore(), on_fake=harmless()),
            op("close", 2, phase=Phase.WORKLOAD,
               on_stub=ignore(fd_frac=0.2), on_fake=harmless(fd_frac=0.2)),
            op("unlink", 1, phase=Phase.WORKLOAD,
               on_stub=ignore(), on_fake=harmless()),
            op("ioctl", 1, subfeature="TCGETS",
               on_stub=safe_default(), on_fake=harmless()),
            # --keep metadata propagation: suite-verified.
            op("utimensat", 1, feature="keep-metadata", when=keep,
               on_stub=disable("keep-metadata"), on_fake=breaks("keep-metadata")),
            op("fchmod", 1, feature="keep-metadata", when=keep,
               on_stub=disable("keep-metadata"), on_fake=breaks("keep-metadata")),
            op("fchown", 1, feature="keep-metadata", when=keep,
               on_stub=ignore(), on_fake=harmless()),
        ]
    )
    program = SimProgram(
        name="gzip",
        version=version,
        ops=ops,
        features=frozenset({"core", "keep-metadata"}),
        profiles={
            "bench": WorkloadProfile(metric=210.0, fd_peak=6, mem_peak_kb=1_536),
            "suite": WorkloadProfile(metric=None, fd_peak=8, mem_peak_kb=2_048),
            "health": WorkloadProfile(metric=None, fd_peak=5, mem_peak_kb=1_024),
        },
        description="stream compressor",
    )
    program = with_static_views(program, source_total=42, binary_total=58)
    return App(
        program=program,
        workloads={
            "health": health_check("health"),
            "bench": benchmark("bench", metric_name="MB/s"),
            "suite": test_suite("suite", features=("core", "keep-metadata")),
        },
        category="tool",
        year=1992,
    )


def build_pyruntime(version: str = "3.9") -> App:
    """A CPython-like language runtime: JIT-less but mmap/mprotect-heavy
    startup, module imports through openat/getdents64, GC madvise."""
    libc = LibcModel("glibc", "2.28", "dynamic", brk_fallback_mem_frac=0.09)
    imports = frozenset({"imports"})
    subproc = frozenset({"subprocess"})
    ops = tuple(
        list(libc.init_ops())
        + list(libc.runtime_ops(threaded=True))
        + nscd_block()
        + [
            op("getrandom", 2, on_stub=abort(), on_fake=breaks_core()),
            op("openat", 8, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("read", 16, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("fstat", 8, on_stub=ignore(), on_fake=harmless()),
            op("newfstatat", 8, on_stub=ignore(), on_fake=harmless()),
            op("getdents64", 4, feature="imports", when=imports,
               phase=Phase.WORKLOAD,
               on_stub=disable("imports"), on_fake=breaks("imports")),
            op("readlink", 2, on_stub=ignore(), on_fake=harmless()),
            op("getcwd", 1, on_stub=ignore(), on_fake=harmless()),
            op("lseek", 4, phase=Phase.WORKLOAD,
               on_stub=ignore(), on_fake=harmless()),
            op("close", 8, phase=Phase.WORKLOAD,
               on_stub=ignore(fd_frac=0.4), on_fake=harmless(fd_frac=0.4)),
            op("dup", 2, on_stub=ignore(), on_fake=harmless()),
            op("ioctl", 2, subfeature="TCGETS",
               on_stub=safe_default(), on_fake=harmless()),
            op("rt_sigaction", 8, on_stub=ignore(), on_fake=harmless()),
            op("sigaltstack", 1, on_stub=ignore(), on_fake=harmless()),
            # Arena management: the GC returns memory via madvise and
            # the allocator genuinely needs mmap/munmap and mprotect
            # (guard pages for stack-overflow detection).
            op("mmap", 8, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("munmap", 4, phase=Phase.WORKLOAD,
               on_stub=ignore(mem_frac=0.15), on_fake=harmless(mem_frac=0.15)),
            op("mprotect", 4, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("madvise", 4, subfeature="MADV_FREE", checks_return=False,
               phase=Phase.WORKLOAD, on_stub=ignore(), on_fake=harmless()),
            op("futex", 16, phase=Phase.WORKLOAD, checks_return=False,
               on_stub=abort(), on_fake=breaks_core()),
            op("gettid", 2, checks_return=False,
               on_stub=ignore(), on_fake=harmless()),
            op("sysinfo", 1, on_stub=ignore(), on_fake=harmless()),
            op("uname", 1, on_stub=ignore(), on_fake=harmless()),
            op("geteuid", 1, on_stub=ignore(), on_fake=harmless()),
            op("getuid", 1, on_stub=ignore(), on_fake=harmless()),
            op("getpid", 2, checks_return=False,
               on_stub=ignore(), on_fake=harmless()),
            op("openat", 1, path="/dev/urandom",
               on_stub=ignore(), on_fake=harmless()),
            # subprocess module: suite-exercised.
            op("fork", 2, feature="subprocess", when=subproc,
               phase=Phase.WORKLOAD,
               on_stub=disable("subprocess"), on_fake=breaks("subprocess")),
            op("execve", 2, feature="subprocess", when=subproc,
               phase=Phase.WORKLOAD,
               on_stub=disable("subprocess"), on_fake=breaks("subprocess")),
            op("wait4", 2, feature="subprocess", when=subproc,
               phase=Phase.WORKLOAD,
               on_stub=disable("subprocess"), on_fake=breaks("subprocess")),
            op("pipe2", 2, feature="subprocess", when=subproc,
               phase=Phase.WORKLOAD,
               on_stub=disable("subprocess"), on_fake=breaks("subprocess")),
        ]
    )
    program = SimProgram(
        name="pyruntime",
        version=version,
        ops=ops,
        features=frozenset({"core", "imports", "subprocess", "nscd"}),
        profiles={
            "bench": WorkloadProfile(metric=3_400.0, fd_peak=24, mem_peak_kb=18_432),
            "suite": WorkloadProfile(metric=None, fd_peak=48, mem_peak_kb=24_576),
            "health": WorkloadProfile(metric=None, fd_peak=12, mem_peak_kb=12_288),
        },
        description="language runtime / interpreter",
    )
    program = with_static_views(program, source_total=92, binary_total=108)
    return App(
        program=program,
        workloads={
            "health": health_check("health"),
            "bench": benchmark("bench", metric_name="pystones/s"),
            "suite": test_suite(
                "suite", features=("core", "imports", "subprocess")
            ),
        },
        category="runtime",
        year=1991,
    )


def build_rabbitmq(version: str = "3.9") -> App:
    """An Erlang-VM-style broker: scheduler threads, timerfd ticks,
    message spills to disk, and an epmd-style port mapper socket."""
    libc = LibcModel("glibc", "2.28", "dynamic", brk_fallback_mem_frac=0.07)
    durability = frozenset({"durability"})
    mgmt = frozenset({"management"})
    ops = tuple(
        list(libc.init_ops())
        + list(libc.runtime_ops(threaded=True))
        + nscd_block()
        + [
            op("sysinfo", 1, on_stub=ignore(), on_fake=harmless()),
            op("prlimit64", 2, subfeature="RLIMIT_NOFILE",
               on_stub=safe_default(), on_fake=harmless()),
            op("sched_getaffinity", 2, on_stub=ignore(), on_fake=harmless()),
            op("sched_yield", 8, phase=Phase.WORKLOAD, checks_return=False,
               on_stub=ignore(perf_factor=0.96), on_fake=harmless()),
            op("clone", 8, on_stub=abort(), on_fake=breaks_core()),
            op("futex", 96, phase=Phase.WORKLOAD, checks_return=False,
               on_stub=abort(), on_fake=breaks_core()),
            op("timerfd_create", 1, on_stub=abort(), on_fake=breaks_core()),
            op("timerfd_settime", 2, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("eventfd2", 2, on_stub=abort(), on_fake=breaks_core()),
            op("epoll_create1", 1, on_stub=abort(), on_fake=breaks_core()),
            op("epoll_ctl", 8, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("epoll_wait", 24, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("socket", 2, on_stub=abort(), on_fake=breaks_core()),
            op("setsockopt", 4, on_stub=abort(), on_fake=breaks_core()),
            op("bind", 2, on_stub=abort(), on_fake=breaks_core()),
            op("listen", 2, on_stub=abort(), on_fake=breaks_core()),
            op("accept4", 4, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("connect", 1, on_stub=ignore(), on_fake=harmless()),
            op("recvfrom", 24, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("sendto", 24, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("writev", 8, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("close", 8, phase=Phase.WORKLOAD,
               on_stub=ignore(fd_frac=0.6), on_fake=harmless(fd_frac=0.6)),
            op("fcntl", 2, subfeature="F_SETFL",
               on_stub=disable("core"), on_fake=breaks_core()),
            op("getrandom", 1, on_stub=ignore(), on_fake=harmless()),
            op("madvise", 2, subfeature="MADV_DONTNEED", checks_return=False,
               phase=Phase.WORKLOAD, on_stub=ignore(), on_fake=harmless()),
            # Durable queues (suite).
            op("openat", 4, feature="durability", when=durability,
               phase=Phase.WORKLOAD,
               on_stub=disable("durability"), on_fake=breaks("durability")),
            op("pwrite64", 8, feature="durability", when=durability,
               phase=Phase.WORKLOAD,
               on_stub=disable("durability"), on_fake=breaks("durability")),
            op("fdatasync", 4, feature="durability", when=durability,
               phase=Phase.WORKLOAD,
               on_stub=disable("durability"), on_fake=breaks("durability")),
            op("rename", 2, feature="durability", when=durability,
               phase=Phase.WORKLOAD,
               on_stub=disable("durability"), on_fake=breaks("durability")),
            op("mkdir", 1, feature="durability", when=durability,
               on_stub=ignore(), on_fake=harmless()),
            op("getdents64", 2, feature="durability", when=durability,
               on_stub=ignore(), on_fake=harmless()),
            # Management UI (suite).
            op("socket", 1, feature="management", when=mgmt,
               on_stub=disable("management"), on_fake=breaks("management")),
            op("sendfile", 2, feature="management", when=mgmt,
               phase=Phase.WORKLOAD,
               on_stub=disable("management"), on_fake=breaks("management")),
            op("stat", 2, feature="management", when=mgmt,
               on_stub=ignore(), on_fake=harmless()),
        ]
    )
    program = SimProgram(
        name="rabbitmq",
        version=version,
        ops=ops,
        features=frozenset({"core", "durability", "management", "nscd"}),
        profiles={
            "bench": WorkloadProfile(metric=42_000.0, fd_peak=96, mem_peak_kb=98_304),
            "suite": WorkloadProfile(metric=None, fd_peak=128, mem_peak_kb=114_688),
            "health": WorkloadProfile(metric=None, fd_peak=48, mem_peak_kb=81_920),
        },
        description="message broker (Erlang-VM style)",
    )
    program = with_static_views(program, source_total=94, binary_total=110)
    return App(
        program=program,
        workloads={
            "health": health_check("health"),
            "bench": benchmark("bench", metric_name="msg/s"),
            "suite": test_suite(
                "suite", features=("core", "durability", "management")
            ),
        },
        category="message-queue",
        year=2007,
    )
