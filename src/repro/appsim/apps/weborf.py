"""Weborf model (minimal static web server).

The smallest server in the seven-app comparison set: a thread-per-
connection design with a modest syscall footprint. Table 1: Kerla
unlocks it by implementing getpid (39) and faking prlimit64 (302);
the paper's Section 5.4 notes weborf's only ioctl use is TCGETS and
it can be stubbed.
"""

from __future__ import annotations

from repro.appsim.apps import App
from repro.appsim.apps.blocks import op, with_static_views
from repro.appsim.behavior import (
    abort,
    breaks,
    breaks_core,
    disable,
    harmless,
    ignore,
    safe_default,
)
from repro.appsim.libc import LibcModel
from repro.appsim.program import Phase, SimProgram, WorkloadProfile
from repro.core.workload import benchmark, health_check, test_suite

FEATURES = frozenset({"core", "directory-listing", "webdav"})

SUITE_FEATURES = ("core", "directory-listing", "webdav")


def _ops(libc: LibcModel) -> tuple:
    listing = frozenset({"directory-listing"})
    webdav = frozenset({"webdav"})
    return tuple(
        list(libc.init_ops())
        + list(libc.runtime_ops(threaded=True))
        + [
            op("getpid", 1, on_stub=abort(), on_fake=harmless()),
            op("prlimit64", 1, subfeature="RLIMIT_NOFILE",
               on_stub=safe_default(), on_fake=harmless()),
            op("ioctl", 1, subfeature="TCGETS",
               on_stub=safe_default(), on_fake=harmless()),
            op("getuid", 1, on_stub=ignore(), on_fake=harmless()),
            op("setuid", 1, on_stub=ignore(), on_fake=harmless()),
            op("setgid", 1, on_stub=ignore(), on_fake=harmless()),
            op("rt_sigaction", 4, on_stub=ignore(), on_fake=harmless()),
            op("alarm", 1, checks_return=False, on_stub=ignore(), on_fake=harmless()),
            # Thread-per-connection core.
            op("socket", 1, on_stub=abort(), on_fake=breaks_core()),
            op("setsockopt", 2, on_stub=abort(), on_fake=breaks_core()),
            op("bind", 1, on_stub=abort(), on_fake=breaks_core()),
            op("listen", 1, on_stub=abort(), on_fake=breaks_core()),
            op("accept", 4, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("clone", 4, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("futex", 16, phase=Phase.WORKLOAD, checks_return=False,
               on_stub=abort(), on_fake=breaks_core()),
            op("read", 8, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("write", 8, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("openat", 4, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("fstat", 4, phase=Phase.WORKLOAD,
               on_stub=ignore(), on_fake=harmless()),
            op("close", 8, phase=Phase.WORKLOAD,
               on_stub=ignore(fd_frac=0.5), on_fake=harmless(fd_frac=0.5)),
            op("sendfile", 4, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            # Directory listings (suite).
            op("getdents64", 4, feature="directory-listing", when=listing,
               phase=Phase.WORKLOAD,
               on_stub=disable("directory-listing"),
               on_fake=breaks("directory-listing")),
            op("stat", 4, feature="directory-listing", when=listing,
               phase=Phase.WORKLOAD,
               on_stub=disable("directory-listing"),
               on_fake=breaks("directory-listing")),
            # Optional suite paths that fail soft (auth probe, mime
            # rescan, range logging).
            op("access", 2, feature="directory-listing", when=listing,
               on_stub=ignore(), on_fake=harmless()),
            op("readlink", 1, feature="directory-listing", when=listing,
               on_stub=ignore(), on_fake=harmless()),
            op("lseek", 2, feature="webdav", when=webdav,
               phase=Phase.WORKLOAD, on_stub=ignore(), on_fake=harmless()),
            op("getcwd", 1, feature="webdav", when=webdav,
               on_stub=ignore(), on_fake=harmless()),
            # WebDAV uploads/moves (suite).
            op("pwrite64", 2, feature="webdav", when=webdav,
               phase=Phase.WORKLOAD,
               on_stub=disable("webdav"), on_fake=breaks("webdav")),
            op("mkdir", 1, feature="webdav", when=webdav,
               on_stub=disable("webdav"), on_fake=breaks("webdav")),
            op("unlink", 1, feature="webdav", when=webdav,
               on_stub=disable("webdav"), on_fake=breaks("webdav")),
            op("rename", 1, feature="webdav", when=webdav,
               on_stub=disable("webdav"), on_fake=breaks("webdav")),
        ]
    )


def build(version: str = "0.17", libc: LibcModel | None = None) -> App:
    """Build the Weborf application model."""
    libc = libc or LibcModel("glibc", "2.28", "dynamic", brk_fallback_mem_frac=0.04)
    program = SimProgram(
        name="weborf",
        version=version,
        ops=_ops(libc),
        features=FEATURES,
        profiles={
            "bench": WorkloadProfile(metric=41_000.0, fd_peak=24, mem_peak_kb=3_072),
            "suite": WorkloadProfile(metric=None, fd_peak=36, mem_peak_kb=4_096),
            "health": WorkloadProfile(metric=None, fd_peak=12, mem_peak_kb=2_048),
        },
        description="minimal static web server",
    )
    program = with_static_views(program, source_total=58, binary_total=74)
    workloads = {
        "health": health_check("health"),
        "bench": benchmark("bench", metric_name="requests/s"),
        "suite": test_suite("suite", features=SUITE_FEATURES),
    }
    return App(program=program, workloads=workloads, category="web-server", year=2007)
