"""Nginx model (web server, master/worker processes).

Transcribed behaviors:

* Figure 6b: ``prctl(PR_SET_KEEPCAPS)`` failure is treated as fatal
  (stub-resistant) but faking succeeds — capabilities are meaningless
  on a unikernel.
* Table 2: ``write`` stub -> access logs skipped, **+15% throughput**
  (and broken access-logging, which only the suite checks);
  ``brk`` -> glibc mmap fallback, +17% memory; ``clone`` fake -> master
  executes the worker loop, +10% memory, functional yet fragile;
  ``rt_sigsuspend`` stub/fake -> master busy-waits, -38% throughput.
* Table 3 (glibc 2.31 build): the process-based architecture — no
  ``futex``, workers via ``clone``, worker channel via ``socketpair``,
  payload via ``writev``/``sendfile``, non-blocking sockets via
  ``ioctl(FIONBIO)`` rather than ``fcntl(F_SETFL)`` (Section 5.4 notes
  F_SETFL is required everywhere *except* Nginx).
* Section 5.2: Nginx has the lowest suite-level stub/fake rate (31%) —
  its test suite checks logging, uploads, proxying and privilege
  handling, turning many otherwise-avoidable calls into required ones.
"""

from __future__ import annotations

from repro.appsim.apps import App
from repro.appsim.apps.blocks import nscd_block, op, with_static_views
from repro.appsim.behavior import (
    abort,
    breaks,
    breaks_core,
    disable,
    fallback,
    harmless,
    ignore,
    safe_default,
)
from repro.appsim.libc import LibcModel
from repro.appsim.program import Phase, SimProgram, WorkloadProfile
from repro.core.workload import benchmark, health_check, test_suite

FEATURES = frozenset(
    {"core", "access-logging", "uploads", "proxy", "privileges", "reload", "nscd"}
)

SUITE_FEATURES = (
    "core", "access-logging", "uploads", "proxy", "privileges", "reload"
)


def _ops(libc: LibcModel) -> tuple:
    uploads = frozenset({"uploads"})
    proxy = frozenset({"proxy"})
    privileges = frozenset({"privileges"})
    reload = frozenset({"reload"})
    return tuple(
        list(libc.init_ops())
        + list(libc.runtime_ops(threaded=False))
        + nscd_block()
        + [
            # -- configuration and startup --------------------------------
            op("prlimit64", 1, subfeature="RLIMIT_NOFILE",
               on_stub=safe_default(), on_fake=harmless()),
            op("getpid", 2, checks_return=False, on_stub=ignore(), on_fake=harmless()),
            op("stat", 3, on_stub=ignore(), on_fake=harmless()),
            op("lstat", 2, on_stub=ignore(), on_fake=harmless()),
            op("lseek", 2, on_stub=ignore(), on_fake=harmless()),
            op("pread64", 1, on_stub=ignore(), on_fake=harmless()),
            op("mkdir", 2, on_stub=ignore(), on_fake=harmless()),
            op("umask", 1, checks_return=False, on_stub=ignore(), on_fake=harmless()),
            op("dup2", 3, on_stub=ignore(), on_fake=harmless()),
            op("_sysctl", 1, checks_return=False, on_stub=ignore(), on_fake=harmless()),
            op("gettimeofday", 4, checks_return=False,
               on_stub=ignore(), on_fake=harmless()),
            # Figure 6b: fatal when it fails, fine when faked.
            op("prctl", 1, subfeature="PR_SET_KEEPCAPS",
               on_stub=abort(), on_fake=harmless()),
            # -- master/worker architecture (Table 2 clone row) -------------
            op("clone", 2, on_stub=abort(), on_fake=harmless(mem_frac=0.10)),
            op("socketpair", 1, on_stub=abort(), on_fake=breaks_core()),
            op("rt_sigaction", 12, on_stub=ignore(), on_fake=harmless()),
            op("rt_sigprocmask", 4, on_stub=ignore(), on_fake=harmless()),
            op("rt_sigsuspend", 2, phase=Phase.WORKLOAD,
               on_stub=ignore(perf_factor=0.62),
               on_fake=harmless(perf_factor=0.62)),
            # -- event loop and data path ----------------------------------
            op("socket", 1, on_stub=abort(), on_fake=breaks_core()),
            op("setsockopt", 3, on_stub=abort(), on_fake=breaks_core()),
            op("bind", 1, on_stub=abort(), on_fake=breaks_core()),
            op("listen", 1, on_stub=abort(), on_fake=breaks_core()),
            op("epoll_create", 1, on_stub=abort(), on_fake=breaks_core()),
            op("epoll_ctl", 6, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("epoll_wait", 24, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("accept", 8, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("recvfrom", 16, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("read", 8, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            # Payload path: stubbing writev is caught by the test script.
            op("writev", 16, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            # sendfile degrades gracefully to writev when unavailable.
            op("sendfile", 8, phase=Phase.WORKLOAD,
               on_stub=fallback(op("writev", 1, on_stub=disable("core"),
                                   on_fake=breaks_core())),
               on_fake=breaks_core()),
            op("close", 12, phase=Phase.WORKLOAD,
               on_stub=ignore(fd_frac=0.08), on_fake=harmless(fd_frac=0.08)),
            op("ioctl", 2, subfeature="FIONBIO",
               on_stub=ignore(), on_fake=harmless()),
            op("ioctl", 1, subfeature="FIOASYNC",
               on_stub=ignore(), on_fake=harmless()),
            op("fcntl", 2, subfeature="F_SETFD",
               on_stub=ignore(), on_fake=harmless()),
            # -- access logging (Table 2 write row) -------------------------
            op("write", 16, feature="access-logging", phase=Phase.WORKLOAD,
               on_stub=disable("access-logging", perf_factor=1.15),
               on_fake=breaks("access-logging", perf_factor=1.15)),
            # -- privilege handling: executed at every startup, but only
            # the suite *verifies* the worker really dropped privileges
            # (the pipe2 pattern: silent breakage under benchmarks).
            op("geteuid", 1, feature="privileges",
               on_stub=ignore(), on_fake=harmless()),
            op("setuid", 1, feature="privileges",
               on_stub=disable("privileges"), on_fake=breaks("privileges")),
            op("setgid", 1, feature="privileges",
               on_stub=disable("privileges"), on_fake=breaks("privileges")),
            op("setgroups", 1, feature="privileges",
               on_stub=disable("privileges"), on_fake=breaks("privileges")),
            op("setsid", 1, on_stub=ignore(), on_fake=harmless()),
            # -- uploads: client body buffered to temp files (suite) --------
            op("openat", 2, feature="uploads", when=uploads,
               phase=Phase.WORKLOAD,
               on_stub=disable("uploads"), on_fake=breaks("uploads")),
            op("pwrite64", 4, feature="uploads", when=uploads,
               phase=Phase.WORKLOAD,
               on_stub=disable("uploads"), on_fake=breaks("uploads")),
            op("unlink", 2, feature="uploads", when=uploads,
               phase=Phase.WORKLOAD,
               on_stub=disable("uploads"), on_fake=breaks("uploads")),
            op("ftruncate", 1, feature="uploads", when=uploads,
               on_stub=disable("uploads"), on_fake=breaks("uploads")),
            # -- proxying: upstream connections (suite) ---------------------
            op("socket", 2, feature="proxy", when=proxy, phase=Phase.WORKLOAD,
               on_stub=disable("proxy"), on_fake=breaks("proxy")),
            op("connect", 2, feature="proxy", when=proxy, phase=Phase.WORKLOAD,
               on_stub=disable("proxy"), on_fake=breaks("proxy")),
            op("getsockopt", 2, feature="proxy", when=proxy,
               phase=Phase.WORKLOAD,
               on_stub=disable("proxy"), on_fake=breaks("proxy")),
            op("sendto", 2, feature="proxy", when=proxy, phase=Phase.WORKLOAD,
               on_stub=disable("proxy"), on_fake=breaks("proxy")),
            op("getpeername", 1, feature="proxy", when=proxy,
               on_stub=ignore(), on_fake=harmless()),
            # -- config reload via signals (suite) --------------------------
            op("kill", 2, feature="reload", when=reload, phase=Phase.WORKLOAD,
               on_stub=disable("reload"), on_fake=breaks("reload")),
            op("wait4", 2, feature="reload", when=reload, phase=Phase.WORKLOAD,
               on_stub=disable("reload"), on_fake=breaks("reload")),
            op("execve", 1, feature="reload", when=reload,
               phase=Phase.WORKLOAD,
               on_stub=disable("reload"), on_fake=breaks("reload")),
            op("getdents64", 2, feature="reload", when=reload,
               on_stub=ignore(), on_fake=harmless()),
            # The suite's reload tests verify signal dispositions and
            # descriptor juggling survive across re-exec; log tests
            # check timestamps and log-dir creation. These turn
            # otherwise-ignorable calls into suite-required ones —
            # Nginx's suite is the paper's least stub/fake-tolerant.
            op("rt_sigaction", 2, feature="reload", when=reload,
               on_stub=disable("reload"), on_fake=breaks("reload")),
            op("rt_sigprocmask", 1, feature="reload", when=reload,
               on_stub=disable("reload"), on_fake=breaks("reload")),
            op("dup2", 1, feature="reload", when=reload,
               on_stub=disable("reload"), on_fake=breaks("reload")),
            op("gettimeofday", 2, feature="access-logging",
               when=frozenset({"access-logging"}), checks_return=False,
               phase=Phase.WORKLOAD,
               on_stub=disable("access-logging"),
               on_fake=breaks("access-logging")),
            op("mkdir", 1, feature="access-logging",
               when=frozenset({"access-logging"}),
               on_stub=disable("access-logging"),
               on_fake=breaks("access-logging")),
            op("geteuid", 1, feature="privileges", when=privileges,
               on_stub=disable("privileges"), on_fake=breaks("privileges")),
            op("stat", 2, feature="uploads", when=uploads,
               phase=Phase.WORKLOAD,
               on_stub=disable("uploads"), on_fake=breaks("uploads")),
            op("umask", 1, feature="uploads", when=uploads,
               on_stub=disable("uploads"), on_fake=breaks("uploads")),
        ]
    )


def build(version: str = "1.20", libc: LibcModel | None = None) -> App:
    """Build the Nginx application model."""
    libc = libc or LibcModel("glibc", "2.31", "dynamic", brk_fallback_mem_frac=0.17)
    program = SimProgram(
        name="nginx",
        version=version,
        ops=_ops(libc),
        features=FEATURES,
        profiles={
            "bench": WorkloadProfile(metric=92_000.0, fd_peak=64, mem_peak_kb=9_216),
            "suite": WorkloadProfile(metric=None, fd_peak=96, mem_peak_kb=12_288),
            "health": WorkloadProfile(metric=None, fd_peak=32, mem_peak_kb=7_168),
        },
        description="event-driven web server",
    )
    program = with_static_views(program, source_total=95, binary_total=112)
    workloads = {
        "health": health_check("health"),
        "bench": benchmark("bench", metric_name="requests/s"),
        "suite": test_suite("suite", features=SUITE_FEATURES),
    }
    return App(program=program, workloads=workloads, category="web-server", year=2004)
