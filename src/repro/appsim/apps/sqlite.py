"""SQLite model (embedded database + shell, no network).

Distinguishing semantics:

* Section 5.2: SQLite re-allocates mappings with ``mmap`` when
  ``mremap`` fails — a textbook fallback resilience pattern.
* File locking through ``fcntl`` record locks: ``F_SETLK`` is required
  for concurrent-access correctness (suite) but a benchmark on a
  single connection shrugs off its absence.
* The suite is the largest the paper encountered (1-1.5 days, millions
  of tests) — modeled as the widest feature set of all our apps.
* Table 1: Kerla unlocks SQLite by implementing lseek (8), access
  (21), and unlink (87), and faking mremap (25).
"""

from __future__ import annotations

from repro.appsim.apps import App
from repro.appsim.apps.blocks import op, with_static_views
from repro.appsim.behavior import (
    abort,
    breaks,
    breaks_core,
    disable,
    fallback,
    harmless,
    ignore,
)
from repro.appsim.libc import LibcModel
from repro.appsim.program import Phase, SimProgram, WorkloadProfile
from repro.core.workload import benchmark, health_check, test_suite

FEATURES = frozenset({"core", "journal", "locking", "vacuum", "temp-store"})

SUITE_FEATURES = ("core", "journal", "locking", "vacuum", "temp-store")


def _ops(libc: LibcModel) -> tuple:
    journal = frozenset({"journal"})
    locking = frozenset({"locking"})
    vacuum = frozenset({"vacuum"})
    temp = frozenset({"temp-store"})
    return tuple(
        list(libc.init_ops())
        + [
            # -- database file I/O: the required core -----------------------
            op("openat", 2, on_stub=abort(), on_fake=breaks_core()),
            op("fstat", 4, on_stub=ignore(), on_fake=harmless()),
            op("stat", 2, on_stub=ignore(), on_fake=harmless()),
            op("lseek", 16, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("read", 32, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("write", 32, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("pread64", 16, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("pwrite64", 16, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("close", 8, phase=Phase.WORKLOAD,
               on_stub=ignore(fd_frac=0.6), on_fake=harmless(fd_frac=0.6)),
            # Hot-journal detection: SQLite *must* know whether a journal
            # file exists; a forged "yes" corrupts recovery (Table 1's
            # Kerla plan implements access (21) to unlock SQLite).
            op("access", 4, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("getcwd", 1, on_stub=ignore(), on_fake=harmless()),
            op("geteuid", 1, on_stub=ignore(), on_fake=harmless()),
            op("getpid", 1, checks_return=False, on_stub=ignore(), on_fake=harmless()),
            op("getrandom", 1, on_stub=ignore(), on_fake=harmless()),
            op("openat", 1, path="/dev/urandom", on_stub=ignore(), on_fake=harmless()),
            # Memory-mapped I/O with the Section 5.2 mremap fallback.
            op("mremap", 4, phase=Phase.WORKLOAD,
               on_stub=fallback(op("mmap", 1, on_stub=abort(),
                                   on_fake=breaks_core())),
               on_fake=harmless()),
            op("munmap", 4, phase=Phase.WORKLOAD,
               on_stub=ignore(mem_frac=0.08), on_fake=harmless(mem_frac=0.08)),
            op("madvise", 2, subfeature="MADV_DONTNEED", checks_return=False,
               on_stub=ignore(), on_fake=harmless()),
            # -- journaling (suite correctness) ------------------------------
            op("openat", 2, feature="journal", when=journal,
               phase=Phase.WORKLOAD,
               on_stub=disable("journal"), on_fake=breaks("journal")),
            op("unlink", 4, feature="journal", when=journal,
               phase=Phase.WORKLOAD,
               on_stub=disable("journal"), on_fake=breaks("journal")),
            op("fsync", 8, feature="journal", when=journal,
               phase=Phase.WORKLOAD,
               on_stub=disable("journal"), on_fake=harmless()),
            op("fdatasync", 4, feature="journal", when=journal,
               phase=Phase.WORKLOAD,
               on_stub=disable("journal"), on_fake=harmless()),
            op("ftruncate", 2, feature="journal", when=journal,
               on_stub=disable("journal"), on_fake=breaks("journal")),
            op("rename", 2, feature="journal", when=journal,
               phase=Phase.WORKLOAD,
               on_stub=disable("journal"), on_fake=breaks("journal")),
            # -- record locking (suite correctness) --------------------------
            op("fcntl", 8, subfeature="F_SETLK", feature="locking",
               when=locking, phase=Phase.WORKLOAD,
               on_stub=disable("locking"), on_fake=breaks("locking")),
            op("fcntl", 2, subfeature="F_GETLK", feature="locking",
               when=locking,
               on_stub=disable("locking"), on_fake=breaks("locking")),
            op("fcntl", 2, subfeature="F_SETFD",
               on_stub=ignore(), on_fake=harmless()),
            op("flock", 2, feature="locking", when=locking,
               on_stub=disable("locking"), on_fake=breaks("locking")),
            op("nanosleep", 2, feature="locking", when=locking,
               phase=Phase.WORKLOAD, checks_return=False,
               on_stub=ignore(), on_fake=harmless()),
            # -- vacuum / integrity scans (suite) ----------------------------
            op("getdents64", 2, feature="vacuum", when=vacuum,
               on_stub=disable("vacuum"), on_fake=breaks("vacuum")),
            op("utimensat", 1, feature="vacuum", when=vacuum,
               on_stub=ignore(), on_fake=harmless()),
            op("fallocate", 1, feature="vacuum", when=vacuum,
               on_stub=ignore(), on_fake=harmless()),
            # -- temp store (suite) ------------------------------------------
            op("mkdir", 1, feature="temp-store", when=temp,
               on_stub=ignore(), on_fake=harmless()),
            op("openat", 1, feature="temp-store", when=temp,
               on_stub=disable("temp-store"), on_fake=breaks("temp-store")),
            op("unlink", 1, feature="temp-store", when=temp,
               on_stub=ignore(), on_fake=harmless()),
            op("statfs", 1, feature="temp-store", when=temp,
               on_stub=ignore(), on_fake=harmless()),
        ]
    )


def build(version: str = "3.36", libc: LibcModel | None = None) -> App:
    """Build the SQLite application model."""
    libc = libc or LibcModel("glibc", "2.28", "dynamic", brk_fallback_mem_frac=0.03)
    program = SimProgram(
        name="sqlite",
        version=version,
        ops=_ops(libc),
        features=FEATURES,
        profiles={
            "bench": WorkloadProfile(metric=61_000.0, fd_peak=12, mem_peak_kb=6_144),
            "suite": WorkloadProfile(metric=None, fd_peak=28, mem_peak_kb=9_216),
            "health": WorkloadProfile(metric=None, fd_peak=8, mem_peak_kb=4_096),
        },
        description="embedded SQL database",
    )
    program = with_static_views(program, source_total=70, binary_total=88)
    workloads = {
        "health": health_check("health"),
        "bench": benchmark("bench", metric_name="queries/s"),
        "suite": test_suite("suite", features=SUITE_FEATURES),
    }
    return App(program=program, workloads=workloads, category="database", year=2000)
