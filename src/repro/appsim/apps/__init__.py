"""Hand-modeled applications: the paper's cloud application set.

Each module builds one (or a family of) application model(s) whose
failure-handling semantics are transcribed from the paper — Figure 6's
code snippets, Table 2's metric impacts, Section 5.2's resilience
catalog, Tables 3/4's libc footprints. The :class:`App` wrapper couples
the program with its canonical workloads (health check, benchmark,
test suite), matching how the paper evaluates each application.
"""

from __future__ import annotations

import dataclasses

from repro.appsim.backend import SimBackend
from repro.appsim.program import SimProgram
from repro.core.workload import SimWorkload


@dataclasses.dataclass(frozen=True)
class App:
    """A simulated application plus its canonical workloads."""

    program: SimProgram
    workloads: dict[str, SimWorkload]
    category: str = "server"
    #: Year of first public release (drives the evolution studies).
    year: int = 2010

    @property
    def name(self) -> str:
        return self.program.name

    @property
    def version(self) -> str:
        return self.program.version

    def backend(self) -> SimBackend:
        return SimBackend(self.program)

    def workload(self, name: str) -> SimWorkload:
        if name not in self.workloads:
            raise KeyError(
                f"{self.name} has no workload {name!r}; "
                f"available: {sorted(self.workloads)}"
            )
        return self.workloads[name]

    @property
    def bench(self) -> SimWorkload:
        """The canonical benchmark workload (paper Figures 4/5 'bench')."""
        return self.workload("bench")

    @property
    def suite(self) -> SimWorkload:
        """The canonical test-suite workload (paper Figures 4/5 'suite')."""
        return self.workload("suite")
