"""Historical application builds for the evolution study (Figure 8).

The paper compiles 2005-2010 releases of httpd, Nginx and Redis with a
modern toolchain and finds syscall usage nearly unchanged over 15
years, modulo the *deprecation-driven drift* of the libc choosing newer
variants (``open``->``openat``, ``accept``->``accept4``...). We model
old builds by **backdating** the modern programs: every modern-variant
syscall is rewritten to its classic equivalent and a handful of
genuinely newer calls are dropped, leaving counts roughly equal —
which is the paper's point.
"""

from __future__ import annotations

import dataclasses

from repro.appsim.apps import App
from repro.appsim.apps.blocks import calibrated_static
from repro.appsim.program import SimProgram, SyscallOp

#: Modern syscall -> classic equivalent chosen by older libcs/apps.
BACKDATE_REWRITES: dict[str, str] = {
    "openat": "open",
    "newfstatat": "stat",
    "accept4": "accept",
    "epoll_create1": "epoll_create",
    "pipe2": "pipe",
    "eventfd2": "eventfd",
    "inotify_init1": "inotify_init",
    "dup3": "dup2",
    "prlimit64": "getrlimit",
    "pread64": "pread64",        # existed already; kept for clarity
    "clock_nanosleep": "nanosleep",
    "faccessat": "access",
    "unlinkat": "unlink",
    "mkdirat": "mkdir",
    "readlinkat": "readlink",
    "renameat2": "rename",
    "utimensat": "utimes",
}

#: Syscalls that simply did not exist (or were unused) in the era;
#: backdated programs drop these ops entirely.
BACKDATE_DROPS = frozenset(
    "getrandom memfd_create eventfd2 eventfd timerfd_create "
    "timerfd_settime epoll_pwait set_robust_list rseq statx "
    "copy_file_range fallocate io_setup clock_getres".split()
)


def _backdate_op(old: SyscallOp) -> SyscallOp | None:
    if old.syscall in BACKDATE_DROPS:
        return None
    replacement = BACKDATE_REWRITES.get(old.syscall)
    if replacement is None:
        return old
    # Sub-features are tied to the original syscall; the classic
    # variants here are all plain calls.
    return dataclasses.replace(old, syscall=replacement, subfeature=None)


def backdate(app: App, *, version: str, year: int) -> App:
    """Derive an era-appropriate build of *app* (same app, old release)."""
    from repro.appsim.behavior import harmless, ignore
    from repro.appsim.program import Origin

    program = app.program
    old_ops = []
    for op_ in program.ops:
        backdated = _backdate_op(op_)
        if backdated is None:
            continue
        if backdated.on_stub.fallback is not None:
            fallback_op = _backdate_op(backdated.on_stub.fallback)  # type: ignore[arg-type]
            if fallback_op is not None and fallback_op is not backdated.on_stub.fallback:
                backdated = dataclasses.replace(
                    backdated,
                    on_stub=dataclasses.replace(
                        backdated.on_stub, fallback=fallback_op
                    ),
                )
        old_ops.append(backdated)
    # Deprecation drift runs both ways: old glibc issued calls modern
    # builds dropped, e.g. the uname kernel-version check (Table 3
    # shows uname only in the 2.3.2 column).
    if not any(op_.syscall == "uname" for op_ in old_ops):
        old_ops.append(
            SyscallOp(
                syscall="uname", origin=Origin.LIBC, checks_return=True,
                on_stub=ignore(), on_fake=harmless(),
            )
        )
    old_program = dataclasses.replace(
        program,
        version=version,
        ops=tuple(old_ops),
        static_extra={},
    )
    live = old_program.live_syscalls()
    # Older builds also present slightly smaller static footprints.
    shrink = 4
    source_total = max(
        len(live), len(program.static_view("source")) - shrink
    )
    binary_total = max(
        source_total, len(program.static_view("binary")) - shrink
    )
    old_program = dataclasses.replace(
        old_program,
        static_extra=calibrated_static(live, source_total, binary_total),
    )
    return App(
        program=old_program,
        workloads=app.workloads,
        category=app.category,
        year=year,
    )


def build_legacy_pairs() -> dict[str, tuple[App, App]]:
    """(old, recent) build pairs for the Figure 8 subjects."""
    from repro.appsim.apps import nginx, redis, webservers

    recent_httpd = webservers.build_httpd("2.4.48")
    recent_nginx = nginx.build("1.21")
    recent_redis = redis.build("6.2")
    return {
        "httpd": (backdate(recent_httpd, version="2.2.0", year=2006), recent_httpd),
        "nginx": (backdate(recent_nginx, version="0.3.19", year=2006), recent_nginx),
        "redis": (backdate(recent_redis, version="2.0.0", year=2010), recent_redis),
    }
