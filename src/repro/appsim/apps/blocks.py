"""Composable syscall-usage blocks shared by the application models.

Real servers share most of their syscall footprint: the libc brings its
init sequence, the event loop brings epoll, the socket layer brings the
network calls, and a long tail of identity/limits/signal housekeeping
is sprinkled across startup. These builders capture each of those
slices once, with the failure semantics Section 5.2 documents, so the
per-application modules only add their distinguishing quirks.

Conventions:

* every builder returns a list of :class:`SyscallOp`;
* ``feature`` tags tie ops to application functionality;
* ``when`` gates make suite-only code paths invisible to benchmarks.
"""

from __future__ import annotations

from repro.appsim.behavior import (
    FakeReaction,
    StubReaction,
    abort,
    as_failure,
    breaks,
    breaks_core,
    disable,
    fallback,
    harmless,
    ignore,
    safe_default,
)
from repro.appsim.libc import LibcModel
from repro.appsim.program import Origin, Phase, SyscallOp


def op(
    syscall: str,
    count: int = 1,
    *,
    subfeature: str | None = None,
    path: str | None = None,
    feature: str = "core",
    phase: Phase = Phase.STARTUP,
    origin: Origin = Origin.APP,
    checks_return: bool = True,
    when: frozenset[str] | None = None,
    on_stub: StubReaction | None = None,
    on_fake: FakeReaction | None = None,
) -> SyscallOp:
    """Shorthand :class:`SyscallOp` constructor with sane defaults."""
    return SyscallOp(
        syscall=syscall,
        count=count,
        subfeature=subfeature,
        path=path,
        feature=feature,
        phase=phase,
        origin=origin,
        checks_return=checks_return,
        when=when,
        on_stub=on_stub if on_stub is not None else abort(),
        on_fake=on_fake if on_fake is not None else harmless(),
    )


def libc_block(libc: LibcModel, *, threaded: bool = False) -> list[SyscallOp]:
    """Libc init sequence plus server-startup runtime calls."""
    return list(libc.init_ops()) + list(libc.runtime_ops(threaded=threaded))


def socket_server_block(
    *,
    writev: bool = True,
    accept4: bool = True,
    epoll: bool = True,
    feature: str = "core",
) -> list[SyscallOp]:
    """A TCP server's data path: fundamentally required syscalls.

    Section 5.2: "certain system calls can (almost) never be stubbed
    nor faked without breaking core program functionalities ...
    opening and writing to connections with bind, listen, socket, and
    writev, allocating memory with mmap."
    """
    ops = [
        op("socket", 1, feature=feature, on_stub=abort(), on_fake=breaks_core()),
        op("setsockopt", 2, feature=feature, on_stub=abort(), on_fake=breaks_core()),
        op("bind", 1, feature=feature, on_stub=abort(), on_fake=breaks_core()),
        op("listen", 1, feature=feature, on_stub=abort(), on_fake=breaks_core()),
        op(
            "getsockname", 1, feature=feature,
            on_stub=ignore(), on_fake=harmless(),
        ),
        op(
            "accept4" if accept4 else "accept", 4,
            feature=feature, phase=Phase.WORKLOAD,
            on_stub=disable(feature), on_fake=breaks_core(),
        ),
        op(
            "read", 16, feature=feature, phase=Phase.WORKLOAD,
            on_stub=disable(feature), on_fake=breaks_core(),
        ),
        op(
            "writev" if writev else "write", 16,
            feature=feature, phase=Phase.WORKLOAD,
            on_stub=disable(feature), on_fake=breaks_core(),
        ),
        op(
            "close", 8, feature=feature, phase=Phase.WORKLOAD,
            on_stub=ignore(fd_frac=0.04), on_fake=harmless(fd_frac=0.04),
        ),
    ]
    if epoll:
        ops.extend(
            [
                op(
                    "epoll_create1", 1, feature=feature,
                    on_stub=abort(), on_fake=breaks_core(),
                ),
                op(
                    "epoll_ctl", 6, feature=feature, phase=Phase.WORKLOAD,
                    on_stub=abort(), on_fake=breaks_core(),
                ),
                op(
                    "epoll_wait", 16, feature=feature, phase=Phase.WORKLOAD,
                    on_stub=abort(), on_fake=breaks_core(),
                ),
            ]
        )
    return ops


def identity_block(*, unikernel_irrelevant: bool = True) -> list[SyscallOp]:
    """UID/GID/session management: the classic stub/fake fodder.

    Section 5.2: get/setgroups or setsid "have no meaning in the
    context of a unikernel" — faking succeeds; several setters abort
    on stub (the code treats failure as a security problem) yet fake
    fine, which is exactly the Nginx prctl pattern of Figure 6b.
    """
    fake_ok: FakeReaction = harmless()
    return [
        op("getuid", 1, checks_return=False, on_stub=ignore(), on_fake=fake_ok),
        op("geteuid", 2, on_stub=ignore(), on_fake=fake_ok),
        op("getgid", 1, checks_return=False, on_stub=ignore(), on_fake=fake_ok),
        op("getegid", 1, checks_return=False, on_stub=ignore(), on_fake=fake_ok),
        op("getpid", 2, checks_return=False, on_stub=ignore(), on_fake=fake_ok),
        op(
            "setuid", 1,
            on_stub=abort() if unikernel_irrelevant else ignore(),
            on_fake=fake_ok,
        ),
        op(
            "setgid", 1,
            on_stub=abort() if unikernel_irrelevant else ignore(),
            on_fake=fake_ok,
        ),
        op("setgroups", 1, on_stub=ignore(), on_fake=fake_ok),
        op("setsid", 1, on_stub=ignore(), on_fake=fake_ok),
        op("umask", 1, checks_return=False, on_stub=ignore(), on_fake=fake_ok),
    ]


def limits_block(*, nofile_default: bool = True) -> list[SyscallOp]:
    """Limit/telemetry queries with safe-default fallbacks (Figure 6a)."""
    return [
        op(
            "prlimit64", 2, subfeature="RLIMIT_NOFILE",
            on_stub=safe_default() if nofile_default else abort(),
            on_fake=harmless(),
        ),
        op("getrusage", 1, checks_return=False, on_stub=ignore(), on_fake=harmless()),
        op("sysinfo", 1, on_stub=ignore(), on_fake=harmless()),
        op("uname", 1, on_stub=ignore(), on_fake=harmless()),
        op(
            "ioctl", 1, subfeature="TCGETS",
            on_stub=safe_default(), on_fake=harmless(),
        ),
    ]


def signal_block(*, sigsuspend: bool = False) -> list[SyscallOp]:
    """Signal-handling setup common to daemons."""
    ops = [
        op("rt_sigaction", 8, on_stub=ignore(), on_fake=harmless()),
        op("rt_sigprocmask", 4, on_stub=ignore(), on_fake=harmless()),
        op("sigaltstack", 1, on_stub=ignore(), on_fake=harmless()),
    ]
    if sigsuspend:
        # Master process waits for worker events; stubbed/faked it
        # degrades to polling (Table 2: Nginx -38% throughput).
        ops.append(
            op(
                "rt_sigsuspend", 2, phase=Phase.WORKLOAD,
                on_stub=ignore(perf_factor=0.62),
                on_fake=harmless(perf_factor=0.62),
            )
        )
    return ops


def time_block(*, timerfd: bool = False) -> list[SyscallOp]:
    """Clock and timer usage of event loops."""
    ops = [
        op(
            "clock_gettime", 8, phase=Phase.WORKLOAD, checks_return=False,
            on_stub=ignore(), on_fake=harmless(),
        ),
        op("gettimeofday", 2, checks_return=False, on_stub=ignore(), on_fake=harmless()),
    ]
    if timerfd:
        ops.extend(
            [
                op("timerfd_create", 1, on_stub=abort(), on_fake=breaks_core()),
                op("timerfd_settime", 1, on_stub=abort(), on_fake=breaks_core()),
            ]
        )
    return ops


def threading_block(
    *,
    workers: bool = True,
    clone_fake_mem_frac: float = 0.0,
    futex_fake_perf_factor: float = 1.0,
    futex_fake_fd_frac: float = 0.0,
    futex_breaks_suite_feature: str | None = None,
) -> list[SyscallOp]:
    """Worker threads and their synchronization.

    ``clone`` faked means the "parent runs the worker loop" pattern
    (Table 2: Nginx +10% memory, functional but unreliable). ``futex``
    faked yields inconsistent synchronization; under a benchmark this
    shows up as degraded metrics, under a suite (which checks the
    results of concurrent operations) it is an outright failure.
    """
    ops = []
    if workers:
        clone_fake = (
            harmless(mem_frac=clone_fake_mem_frac)
            if clone_fake_mem_frac
            else breaks_core()
        )
        ops.append(op("clone", 2, on_stub=abort(), on_fake=clone_fake))
    futex_fake: FakeReaction
    if futex_breaks_suite_feature is not None:
        futex_fake = breaks(
            futex_breaks_suite_feature,
            perf_factor=futex_fake_perf_factor,
            fd_frac=futex_fake_fd_frac,
        )
    elif futex_fake_perf_factor != 1.0 or futex_fake_fd_frac != 0.0:
        futex_fake = harmless(
            perf_factor=futex_fake_perf_factor, fd_frac=futex_fake_fd_frac
        )
    else:
        futex_fake = breaks_core()
    ops.extend(
        [
            op(
                "futex", 32, phase=Phase.WORKLOAD, checks_return=False,
                on_stub=abort(), on_fake=futex_fake,
            ),
            op("sched_getaffinity", 1, on_stub=ignore(), on_fake=harmless()),
        ]
    )
    return ops


def entropy_block(*, urandom: bool = True) -> list[SyscallOp]:
    """Randomness: getrandom plus the /dev/urandom pseudo-file."""
    ops = [
        op("getrandom", 2, on_stub=ignore(), on_fake=harmless()),
    ]
    if urandom:
        ops.append(
            op(
                "openat", 1, path="/dev/urandom",
                on_stub=ignore(), on_fake=harmless(),
            )
        )
    return ops


def storage_block(
    *,
    feature: str = "storage",
    when: frozenset[str] | None = None,
    fsync_required: bool = True,
) -> list[SyscallOp]:
    """On-disk persistence: the file-manipulation tail of test suites."""
    gate = when if when is not None else frozenset({feature})
    return [
        op(
            "openat", 4, feature=feature, when=gate, phase=Phase.WORKLOAD,
            on_stub=disable(feature), on_fake=breaks(feature),
        ),
        op(
            "stat", 2, feature=feature, when=gate,
            on_stub=ignore(), on_fake=harmless(),
        ),
        op(
            "lseek", 4, feature=feature, when=gate, phase=Phase.WORKLOAD,
            on_stub=disable(feature), on_fake=breaks(feature),
        ),
        op(
            "pread64", 4, feature=feature, when=gate, phase=Phase.WORKLOAD,
            on_stub=disable(feature), on_fake=breaks(feature),
        ),
        op(
            "pwrite64", 4, feature=feature, when=gate, phase=Phase.WORKLOAD,
            on_stub=disable(feature), on_fake=breaks(feature),
        ),
        op(
            "fsync", 2, feature=feature, when=gate, phase=Phase.WORKLOAD,
            on_stub=disable(feature) if fsync_required else ignore(),
            on_fake=harmless(),
        ),
        op(
            "ftruncate", 1, feature=feature, when=gate,
            on_stub=disable(feature), on_fake=breaks(feature),
        ),
        op(
            "unlink", 2, feature=feature, when=gate, phase=Phase.WORKLOAD,
            on_stub=ignore(), on_fake=harmless(),
        ),
        op(
            "rename", 2, feature=feature, when=gate, phase=Phase.WORKLOAD,
            on_stub=disable(feature), on_fake=breaks(feature),
        ),
        op(
            "getdents64", 2, feature=feature, when=gate,
            on_stub=ignore(), on_fake=harmless(),
        ),
        op(
            "fdatasync", 1, feature=feature, when=gate, phase=Phase.WORKLOAD,
            on_stub=ignore(), on_fake=harmless(),
        ),
    ]


def config_block() -> list[SyscallOp]:
    """Configuration loading at startup (required file access)."""
    return [
        op("openat", 2, on_stub=abort(), on_fake=as_failure()),
        op("fstat", 2, on_stub=ignore(), on_fake=harmless()),
        op("read", 4, on_stub=abort(), on_fake=breaks_core()),
        op("access", 1, on_stub=ignore(), on_fake=harmless()),
        op("getcwd", 1, on_stub=ignore(), on_fake=harmless()),
    ]


def nscd_block() -> list[SyscallOp]:
    """glibc NSCD cache-socket probing (Section 5.2's connect example).

    ``connect`` fails -> name caching is simply disabled. No workload
    exercises the "nscd" pseudo-feature, so stubbing is always safe.
    """
    return [
        op(
            "socket", 1, feature="nscd", origin=Origin.LIBC,
            on_stub=disable("nscd"), on_fake=harmless(),
        ),
        op(
            "connect", 1, feature="nscd", origin=Origin.LIBC,
            on_stub=disable("nscd"), on_fake=harmless(),
        ),
    ]


def daemon_block(*, pidfile: bool = True) -> list[SyscallOp]:
    """Daemonization: fork to background, manage a pid file."""
    ops = [
        op("fork", 1, on_stub=ignore(), on_fake=breaks_core()),
        op("setsid", 1, on_stub=ignore(), on_fake=harmless()),
        op("dup2", 3, on_stub=ignore(), on_fake=harmless()),
    ]
    if pidfile:
        ops.append(
            op("openat", 1, feature="core", on_stub=ignore(), on_fake=harmless())
        )
        ops.append(op("write", 1, on_stub=ignore(), on_fake=harmless()))
    return ops


#: Dead-code / error-path syscalls a source-level static analyzer
#: reports on top of the live set, for a typical C server codebase.
STATIC_SOURCE_TAIL = frozenset(
    "chown fchmod fchown flock utimensat mknod mkdir rmdir symlink "
    "readlink chdir fchdir dup kill wait4 waitid pipe select poll ppoll "
    "pselect6 msync mincore mlock munlock shutdown getpeername recvmsg "
    "sendmsg recvfrom sendto eventfd2 inotify_init1 inotify_add_watch "
    "inotify_rm_watch timer_create timer_settime setitimer getitimer "
    "setpriority getpriority sched_setscheduler capget capset".split()
)

def with_static_views(
    program: "SimProgram", source_total: int, binary_total: int
) -> "SimProgram":
    """Attach calibrated static-analysis views to a finished program."""
    import dataclasses

    from repro.appsim.program import SimProgram

    assert isinstance(program, SimProgram)
    views = calibrated_static(
        program.live_syscalls(), source_total=source_total, binary_total=binary_total
    )
    return dataclasses.replace(program, static_extra=views)


def calibrated_static(
    live: frozenset[str], source_total: int, binary_total: int
) -> dict[str, frozenset[str]]:
    """Static-analysis overestimation for an app with *live* syscalls.

    Static analyzers report the live set plus dead/error-path code; the
    paper measures the overestimation per app (Figure 4). This helper
    deterministically draws from the shared dead-code pools until the
    app's measured totals are reached, keeping binary ⊇ source (binary
    analysis additionally sees linked-but-unused library code).
    """
    source_pool = sorted(STATIC_SOURCE_TAIL - live)
    need_source = max(0, source_total - len(live))
    source = frozenset(source_pool[:need_source])
    binary_pool = sorted(source) + [
        name
        for name in sorted((STATIC_SOURCE_TAIL | STATIC_BINARY_TAIL) - live)
        if name not in source
    ]
    need_binary = max(0, binary_total - len(live))
    binary = frozenset(binary_pool[:need_binary])
    return {"source": source, "binary": binary}


#: Additional linked-but-unused library code visible only to binary-
#: level analysis (glibc pulls half the syscall table into any binary).
STATIC_BINARY_TAIL = frozenset(
    "semget semop shmget shmat shmctl shmdt msgget msgsnd msgrcv msgctl "
    "mq_open mq_unlink splice tee vmsplice sync syncfs swapon swapoff "
    "mount umount2 sethostname setdomainname adjtimex settimeofday "
    "clock_settime personality ustat statfs fstatfs quotactl acct "
    "setxattr getxattr listxattr removexattr fgetxattr fsetxattr "
    "process_vm_readv ptrace seccomp bpf memfd_create fallocate "
    "copy_file_range sendfile fadvise64 readahead getcpu ioprio_set "
    "ioprio_get mbind set_mempolicy get_mempolicy migrate_pages".split()
)
