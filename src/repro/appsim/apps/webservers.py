"""H2O, Apache httpd, and webfsd models (web-server family).

Table 1 calibration anchors:

* **H2O**: Unikraft unlocks it by implementing set_tid_address (218);
  Kerla implements accept4 (288) / eventfd2 (290), stubs dup (32) and
  fakes getuid (102).
* **httpd** (Apache): Kerla's very first unlock — clone (56), openat
  (257), setsockopt (54) implemented, seventeen syscalls stubbed,
  sendmsg (47) faked. Hybrid process/thread worker model.
* **webfsd**: Kerla implements the identity quartet getgid (104),
  geteuid (107), getegid (108), getuid (102) — a rare app whose
  logging genuinely depends on identity values.
"""

from __future__ import annotations

from repro.appsim.apps import App
from repro.appsim.apps.blocks import nscd_block, op, with_static_views
from repro.appsim.behavior import (
    abort,
    breaks,
    breaks_core,
    disable,
    harmless,
    ignore,
    safe_default,
)
from repro.appsim.libc import LibcModel
from repro.appsim.program import Phase, SimProgram, WorkloadProfile
from repro.core.workload import benchmark, health_check, test_suite


def _h2o_ops(libc: LibcModel) -> tuple:
    reload = frozenset({"reload"})
    logging = frozenset({"logging"})
    return tuple(
        list(libc.init_ops())
        + list(libc.runtime_ops(threaded=True))
        + [
            op("set_tid_address", 1, checks_return=False,
               on_stub=abort(), on_fake=harmless()),
            op("getuid", 1, on_stub=abort(), on_fake=harmless()),
            op("dup", 2, on_stub=ignore(), on_fake=harmless()),
            op("prlimit64", 1, subfeature="RLIMIT_NOFILE",
               on_stub=safe_default(), on_fake=harmless()),
            op("ioctl", 1, subfeature="TCGETS",
               on_stub=safe_default(), on_fake=harmless()),
            op("rt_sigaction", 6, on_stub=ignore(), on_fake=harmless()),
            op("rt_sigprocmask", 2, on_stub=ignore(), on_fake=harmless()),
            op("getrandom", 2, on_stub=ignore(), on_fake=harmless()),
            op("openat", 1, path="/dev/urandom", on_stub=ignore(), on_fake=harmless()),
            op("clone", 4, on_stub=abort(), on_fake=breaks_core()),
            op("futex", 32, phase=Phase.WORKLOAD, checks_return=False,
               on_stub=abort(), on_fake=breaks_core()),
            op("eventfd2", 1, on_stub=abort(), on_fake=breaks_core()),
            op("socket", 1, on_stub=abort(), on_fake=breaks_core()),
            op("setsockopt", 4, on_stub=abort(), on_fake=breaks_core()),
            op("bind", 1, on_stub=abort(), on_fake=breaks_core()),
            op("listen", 1, on_stub=abort(), on_fake=breaks_core()),
            op("accept4", 8, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("epoll_create1", 1, on_stub=abort(), on_fake=breaks_core()),
            op("epoll_ctl", 8, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("epoll_wait", 24, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("read", 16, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("writev", 16, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("close", 8, phase=Phase.WORKLOAD,
               on_stub=ignore(fd_frac=0.6), on_fake=harmless(fd_frac=0.6)),
            op("openat", 4, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("fstat", 4, phase=Phase.WORKLOAD,
               on_stub=ignore(), on_fake=harmless()),
            op("clock_gettime", 8, phase=Phase.WORKLOAD, checks_return=False,
               on_stub=ignore(), on_fake=harmless()),
            op("gettimeofday", 2, checks_return=False,
               on_stub=ignore(), on_fake=harmless()),
            op("write", 8, feature="logging", when=logging,
               phase=Phase.WORKLOAD,
               on_stub=disable("logging", perf_factor=1.06),
               on_fake=breaks("logging", perf_factor=1.06)),
            op("kill", 1, feature="reload", when=reload,
               on_stub=disable("reload"), on_fake=breaks("reload")),
            op("wait4", 1, feature="reload", when=reload,
               on_stub=ignore(), on_fake=harmless()),
            op("pipe2", 1, feature="reload",
               on_stub=ignore(fd_frac=-0.04), on_fake=harmless(fd_frac=-0.04)),
        ]
    )


def build_h2o(version: str = "2.2") -> App:
    """Build the H2O application model."""
    libc = LibcModel("glibc", "2.28", "dynamic", brk_fallback_mem_frac=0.05)
    program = SimProgram(
        name="h2o",
        version=version,
        ops=_h2o_ops(libc),
        features=frozenset({"core", "logging", "reload"}),
        profiles={
            "bench": WorkloadProfile(metric=105_000.0, fd_peak=56, mem_peak_kb=11_264),
            "suite": WorkloadProfile(metric=None, fd_peak=72, mem_peak_kb=13_312),
            "health": WorkloadProfile(metric=None, fd_peak=24, mem_peak_kb=8_192),
        },
        description="optimized HTTP/2 server",
    )
    program = with_static_views(program, source_total=76, binary_total=92)
    return App(
        program=program,
        workloads={
            "health": health_check("health"),
            "bench": benchmark("bench", metric_name="requests/s"),
            "suite": test_suite("suite", features=("core", "logging", "reload")),
        },
        category="web-server",
        year=2014,
    )


def _httpd_ops(libc: LibcModel) -> tuple:
    htaccess = frozenset({"htaccess"})
    cgi = frozenset({"cgi"})
    return tuple(
        list(libc.init_ops())
        + list(libc.runtime_ops(threaded=True))
        + nscd_block()
        + [
            op("prlimit64", 1, subfeature="RLIMIT_NOFILE",
               on_stub=safe_default(), on_fake=harmless()),
            op("getuid", 1, on_stub=ignore(), on_fake=harmless()),
            op("geteuid", 1, on_stub=ignore(), on_fake=harmless()),
            op("setuid", 1, on_stub=ignore(), on_fake=harmless()),
            op("setgid", 1, on_stub=ignore(), on_fake=harmless()),
            op("setgroups", 1, on_stub=ignore(), on_fake=harmless()),
            op("umask", 1, checks_return=False, on_stub=ignore(), on_fake=harmless()),
            op("uname", 1, on_stub=ignore(), on_fake=harmless()),
            op("getpid", 2, checks_return=False, on_stub=ignore(), on_fake=harmless()),
            op("rt_sigaction", 10, on_stub=ignore(), on_fake=harmless()),
            op("rt_sigprocmask", 4, on_stub=ignore(), on_fake=harmless()),
            op("sigaltstack", 1, on_stub=ignore(), on_fake=harmless()),
            op("gettimeofday", 4, checks_return=False,
               on_stub=ignore(), on_fake=harmless()),
            # Hybrid MPM: processes + threads, both load-bearing.
            op("clone", 6, on_stub=abort(), on_fake=breaks_core()),
            op("futex", 32, phase=Phase.WORKLOAD, checks_return=False,
               on_stub=abort(), on_fake=breaks_core()),
            op("socket", 1, on_stub=abort(), on_fake=breaks_core()),
            op("setsockopt", 4, on_stub=abort(), on_fake=breaks_core()),
            op("bind", 1, on_stub=abort(), on_fake=breaks_core()),
            op("listen", 1, on_stub=abort(), on_fake=breaks_core()),
            op("accept4", 6, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("epoll_create1", 1, on_stub=abort(), on_fake=breaks_core()),
            op("epoll_ctl", 6, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("epoll_wait", 16, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("read", 16, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("writev", 16, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("sendmsg", 4, phase=Phase.WORKLOAD,
               on_stub=ignore(), on_fake=harmless()),
            op("openat", 4, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("stat", 6, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("close", 12, phase=Phase.WORKLOAD,
               on_stub=ignore(fd_frac=0.5), on_fake=harmless(fd_frac=0.5)),
            op("sendfile", 8, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("mmap", 2, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("munmap", 2, phase=Phase.WORKLOAD,
               on_stub=ignore(mem_frac=0.06), on_fake=harmless(mem_frac=0.06)),
            op("shmget", 1, on_stub=ignore(), on_fake=harmless()),
            op("shmat", 1, on_stub=ignore(), on_fake=harmless()),
            op("semget", 1, on_stub=ignore(), on_fake=harmless()),
            op("semop", 4, phase=Phase.WORKLOAD, checks_return=False,
               on_stub=ignore(), on_fake=harmless()),
            # Per-directory config (suite).
            op("openat", 2, feature="htaccess", when=htaccess,
               phase=Phase.WORKLOAD,
               on_stub=disable("htaccess"), on_fake=breaks("htaccess")),
            op("access", 2, feature="htaccess", when=htaccess,
               on_stub=ignore(), on_fake=harmless()),
            # CGI (suite).
            op("fork", 2, feature="cgi", when=cgi, phase=Phase.WORKLOAD,
               on_stub=disable("cgi"), on_fake=breaks("cgi")),
            op("execve", 2, feature="cgi", when=cgi, phase=Phase.WORKLOAD,
               on_stub=disable("cgi"), on_fake=breaks("cgi")),
            op("wait4", 2, feature="cgi", when=cgi, phase=Phase.WORKLOAD,
               on_stub=disable("cgi"), on_fake=breaks("cgi")),
            op("pipe2", 2, feature="cgi", when=cgi, phase=Phase.WORKLOAD,
               on_stub=disable("cgi"), on_fake=breaks("cgi")),
            op("dup2", 2, feature="cgi", when=cgi, phase=Phase.WORKLOAD,
               on_stub=disable("cgi"), on_fake=breaks("cgi")),
        ]
    )


def build_httpd(version: str = "2.4") -> App:
    """Build the Apache httpd application model."""
    libc = LibcModel("glibc", "2.28", "dynamic", brk_fallback_mem_frac=0.07)
    program = SimProgram(
        name="httpd",
        version=version,
        ops=_httpd_ops(libc),
        features=frozenset({"core", "htaccess", "cgi", "nscd"}),
        profiles={
            "bench": WorkloadProfile(metric=68_000.0, fd_peak=80, mem_peak_kb=24_576),
            "suite": WorkloadProfile(metric=None, fd_peak=112, mem_peak_kb=30_720),
            "health": WorkloadProfile(metric=None, fd_peak=40, mem_peak_kb=20_480),
        },
        description="Apache HTTP server",
    )
    program = with_static_views(program, source_total=88, binary_total=104)
    return App(
        program=program,
        workloads={
            "health": health_check("health"),
            "bench": benchmark("bench", metric_name="requests/s"),
            "suite": test_suite("suite", features=("core", "htaccess", "cgi")),
        },
        category="web-server",
        year=1995,
    )


def _webfsd_ops(libc: LibcModel) -> tuple:
    listing = frozenset({"directory-listing"})
    return tuple(
        list(libc.init_ops())
        + [
            # webfsd logs the identity it runs under and refuses to
            # start when it cannot determine it (Table 1: Kerla must
            # implement the getters; faking also satisfies it).
            op("getuid", 1, on_stub=abort(), on_fake=breaks_core()),
            op("getgid", 1, on_stub=abort(), on_fake=breaks_core()),
            op("geteuid", 1, on_stub=abort(), on_fake=breaks_core()),
            op("getegid", 1, on_stub=abort(), on_fake=breaks_core()),
            op("umask", 1, checks_return=False, on_stub=ignore(), on_fake=harmless()),
            op("getcwd", 1, on_stub=ignore(), on_fake=harmless()),
            op("uname", 1, on_stub=ignore(), on_fake=harmless()),
            op("rt_sigaction", 4, on_stub=ignore(), on_fake=harmless()),
            op("alarm", 1, checks_return=False, on_stub=ignore(), on_fake=harmless()),
            op("socket", 1, on_stub=abort(), on_fake=breaks_core()),
            op("setsockopt", 2, on_stub=abort(), on_fake=breaks_core()),
            op("bind", 1, on_stub=abort(), on_fake=breaks_core()),
            op("listen", 1, on_stub=abort(), on_fake=breaks_core()),
            op("select", 8, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("accept", 4, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("read", 8, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("write", 8, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("openat", 4, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("fstat", 4, phase=Phase.WORKLOAD,
               on_stub=ignore(), on_fake=harmless()),
            op("close", 8, phase=Phase.WORKLOAD,
               on_stub=ignore(fd_frac=0.4), on_fake=harmless(fd_frac=0.4)),
            op("sendfile", 4, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("gettimeofday", 2, checks_return=False,
               on_stub=ignore(), on_fake=harmless()),
            op("getdents64", 4, feature="directory-listing", when=listing,
               phase=Phase.WORKLOAD,
               on_stub=disable("directory-listing"),
               on_fake=breaks("directory-listing")),
            op("stat", 4, feature="directory-listing", when=listing,
               phase=Phase.WORKLOAD,
               on_stub=disable("directory-listing"),
               on_fake=breaks("directory-listing")),
        ]
    )


def build_webfsd(version: str = "1.21") -> App:
    """Build the webfsd application model."""
    libc = LibcModel("glibc", "2.28", "dynamic", brk_fallback_mem_frac=0.03)
    program = SimProgram(
        name="webfsd",
        version=version,
        ops=_webfsd_ops(libc),
        features=frozenset({"core", "directory-listing"}),
        profiles={
            "bench": WorkloadProfile(metric=29_000.0, fd_peak=20, mem_peak_kb=2_048),
            "suite": WorkloadProfile(metric=None, fd_peak=28, mem_peak_kb=3_072),
            "health": WorkloadProfile(metric=None, fd_peak=10, mem_peak_kb=1_536),
        },
        description="simple file-serving daemon",
    )
    program = with_static_views(program, source_total=52, binary_total=68)
    return App(
        program=program,
        workloads={
            "health": health_check("health"),
            "bench": benchmark("bench", metric_name="requests/s"),
            "suite": test_suite("suite", features=("core", "directory-listing")),
        },
        category="web-server",
        year=1999,
    )
