"""iPerf3, etcd, and hello-world models.

* **iPerf3** (Table 2's third subject): a lean TCP benchmark tool whose
  only measurable stub/fake impact is the glibc ``brk``->``mmap``
  fallback (+11% memory).
* **etcd**: a Go binary — no libc at all. The Go runtime issues raw
  syscalls (``futex``, ``sigaltstack``, ``gettid``, ``madvise``,
  ``epoll``...), the pattern Section 7 cites for why libc-level
  compatibility is weaker than syscall-level.
* **hello-world**: the Table 4 subject, buildable against any of the
  four libc configurations (glibc/musl x dynamic/static).
"""

from __future__ import annotations

from repro.appsim.apps import App
from repro.appsim.apps.blocks import op, with_static_views
from repro.appsim.behavior import (
    abort,
    breaks,
    breaks_core,
    disable,
    harmless,
    ignore,
)
from repro.appsim.libc import GLIBC_228_DYNAMIC, LibcModel
from repro.appsim.program import Origin, Phase, SimProgram, WorkloadProfile
from repro.core.workload import benchmark, health_check, test_suite


def _iperf3_ops(libc: LibcModel) -> tuple:
    udp = frozenset({"udp"})
    json_out = frozenset({"json-output"})
    return tuple(
        list(libc.init_ops())
        + [
            op("getpid", 1, checks_return=False, on_stub=ignore(), on_fake=harmless()),
            op("getuid", 1, on_stub=ignore(), on_fake=harmless()),
            op("uname", 1, on_stub=ignore(), on_fake=harmless()),
            op("rt_sigaction", 4, on_stub=ignore(), on_fake=harmless()),
            op("socket", 1, on_stub=abort(), on_fake=breaks_core()),
            op("setsockopt", 4, on_stub=abort(), on_fake=breaks_core()),
            op("bind", 1, on_stub=abort(), on_fake=breaks_core()),
            op("listen", 1, on_stub=abort(), on_fake=breaks_core()),
            op("accept", 2, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("select", 16, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("read", 64, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("write", 64, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("close", 4, phase=Phase.WORKLOAD,
               on_stub=ignore(fd_frac=0.3), on_fake=harmless(fd_frac=0.3)),
            op("getsockopt", 4, phase=Phase.WORKLOAD,
               on_stub=ignore(), on_fake=harmless()),
            op("getsockname", 1, on_stub=ignore(), on_fake=harmless()),
            op("clock_gettime", 32, phase=Phase.WORKLOAD, checks_return=False,
               on_stub=abort(), on_fake=breaks_core()),
            op("gettimeofday", 4, checks_return=False,
               on_stub=ignore(), on_fake=harmless()),
            op("nanosleep", 4, phase=Phase.WORKLOAD, checks_return=False,
               on_stub=ignore(), on_fake=harmless()),
            op("getrandom", 1, on_stub=ignore(), on_fake=harmless()),
            # UDP mode (suite).
            op("socket", 1, feature="udp", when=udp,
               on_stub=disable("udp"), on_fake=breaks("udp")),
            op("sendto", 16, feature="udp", when=udp, phase=Phase.WORKLOAD,
               on_stub=disable("udp"), on_fake=breaks("udp")),
            op("recvfrom", 16, feature="udp", when=udp, phase=Phase.WORKLOAD,
               on_stub=disable("udp"), on_fake=breaks("udp")),
            # JSON report output (suite).
            op("openat", 1, feature="json-output", when=json_out,
               on_stub=disable("json-output"), on_fake=breaks("json-output")),
            op("write", 2, feature="json-output", when=json_out,
               on_stub=disable("json-output"), on_fake=breaks("json-output")),
        ]
    )


def build_iperf3(version: str = "3.9") -> App:
    """Build the iPerf3 application model."""
    libc = LibcModel("glibc", "2.28", "dynamic", brk_fallback_mem_frac=0.11)
    program = SimProgram(
        name="iperf3",
        version=version,
        ops=_iperf3_ops(libc),
        features=frozenset({"core", "udp", "json-output"}),
        profiles={
            "bench": WorkloadProfile(metric=9_400.0, fd_peak=12, mem_peak_kb=3_072),
            "suite": WorkloadProfile(metric=None, fd_peak=18, mem_peak_kb=3_584),
            "health": WorkloadProfile(metric=None, fd_peak=8, mem_peak_kb=2_560),
        },
        description="TCP/UDP throughput benchmark tool",
    )
    program = with_static_views(program, source_total=54, binary_total=70)
    return App(
        program=program,
        workloads={
            "health": health_check("health"),
            "bench": benchmark("bench", metric_name="Mbit/s"),
            "suite": test_suite("suite", features=("core", "udp", "json-output")),
        },
        category="tool",
        year=2014,
    )


def _etcd_ops() -> tuple:
    """Go runtime + etcd: raw syscalls, no libc initialization."""
    raft = frozenset({"raft"})
    watch = frozenset({"watch"})
    go = Origin.APP  # Go links everything statically; it is all "app" code
    return tuple(
        [
            op("execve", 1, origin=go, on_stub=abort(), on_fake=breaks_core()),
            op("arch_prctl", 1, subfeature="ARCH_SET_FS", origin=go,
               on_stub=abort(), on_fake=breaks_core()),
            # Go runtime bring-up: raw, wrapper-less syscalls.
            op("sched_getaffinity", 1, origin=go, checks_return=False,
               on_stub=ignore(), on_fake=harmless()),
            op("mmap", 12, origin=go, on_stub=abort(), on_fake=breaks_core()),
            op("munmap", 2, origin=go, on_stub=ignore(mem_frac=0.05),
               on_fake=harmless(mem_frac=0.05)),
            op("madvise", 4, subfeature="MADV_NOHUGEPAGE", origin=go,
               checks_return=False, on_stub=ignore(), on_fake=harmless()),
            op("rt_sigaction", 50, origin=go, on_stub=abort(), on_fake=breaks_core()),
            op("rt_sigprocmask", 16, origin=go, on_stub=abort(), on_fake=breaks_core()),
            op("sigaltstack", 4, origin=go, on_stub=abort(), on_fake=breaks_core()),
            op("clone", 8, origin=go, on_stub=abort(), on_fake=breaks_core()),
            op("futex", 128, origin=go, phase=Phase.WORKLOAD, checks_return=False,
               on_stub=abort(), on_fake=breaks_core()),
            op("gettid", 8, origin=go, checks_return=False,
               on_stub=ignore(), on_fake=harmless()),
            op("readlinkat", 1, origin=go, on_stub=ignore(), on_fake=harmless()),
            op("getrandom", 2, origin=go, on_stub=ignore(), on_fake=harmless()),
            op("openat", 1, path="/proc/self/maps", origin=go,
               on_stub=ignore(), on_fake=harmless()),
            op("openat", 1, path="/sys/devices/system/cpu/online", origin=go,
               on_stub=ignore(), on_fake=harmless()),
            op("uname", 1, origin=go, on_stub=ignore(), on_fake=harmless()),
            op("getpid", 2, origin=go, checks_return=False,
               on_stub=ignore(), on_fake=harmless()),
            # Network (HTTP/gRPC API).
            op("socket", 2, origin=go, on_stub=abort(), on_fake=breaks_core()),
            op("setsockopt", 6, origin=go, on_stub=abort(), on_fake=breaks_core()),
            op("bind", 2, origin=go, on_stub=abort(), on_fake=breaks_core()),
            op("listen", 2, origin=go, on_stub=abort(), on_fake=breaks_core()),
            op("accept4", 4, origin=go, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("epoll_create1", 1, origin=go, on_stub=abort(), on_fake=breaks_core()),
            op("epoll_ctl", 8, origin=go, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("epoll_pwait", 32, origin=go, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("read", 32, origin=go, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("write", 32, origin=go, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("close", 8, origin=go, phase=Phase.WORKLOAD,
               on_stub=ignore(fd_frac=0.5), on_fake=harmless(fd_frac=0.5)),
            op("fcntl", 2, subfeature="F_SETFL", origin=go,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("pipe2", 1, origin=go, on_stub=ignore(fd_frac=-0.05),
               on_fake=harmless(fd_frac=-0.05)),
            # Storage (bbolt mmap + WAL).
            op("flock", 1, origin=go, on_stub=abort(), on_fake=breaks_core()),
            op("fdatasync", 8, origin=go, feature="raft", when=raft,
               phase=Phase.WORKLOAD,
               on_stub=disable("raft"), on_fake=breaks("raft")),
            op("pwrite64", 16, origin=go, feature="raft", when=raft,
               phase=Phase.WORKLOAD,
               on_stub=disable("raft"), on_fake=breaks("raft")),
            op("pread64", 8, origin=go, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("ftruncate", 2, origin=go, on_stub=ignore(), on_fake=harmless()),
            op("rename", 2, origin=go, feature="raft", when=raft,
               phase=Phase.WORKLOAD,
               on_stub=disable("raft"), on_fake=breaks("raft")),
            op("mkdirat", 1, origin=go, on_stub=ignore(), on_fake=harmless()),
            op("getdents64", 2, origin=go, on_stub=ignore(), on_fake=harmless()),
            op("newfstatat", 4, origin=go, on_stub=ignore(), on_fake=harmless()),
            op("unlinkat", 2, origin=go, on_stub=ignore(), on_fake=harmless()),
            op("fsync", 4, origin=go, feature="raft", when=raft,
               phase=Phase.WORKLOAD,
               on_stub=disable("raft"), on_fake=harmless()),
            # Watch streams (suite).
            op("eventfd2", 1, origin=go, feature="watch", when=watch,
               on_stub=disable("watch"), on_fake=breaks("watch")),
            op("nanosleep", 4, origin=go, feature="watch", when=watch,
               checks_return=False, phase=Phase.WORKLOAD,
               on_stub=ignore(), on_fake=harmless()),
        ]
    )


def build_etcd(version: str = "3.5") -> App:
    """Build the etcd application model (static Go binary)."""
    program = SimProgram(
        name="etcd",
        version=version,
        ops=_etcd_ops(),
        features=frozenset({"core", "raft", "watch"}),
        profiles={
            "bench": WorkloadProfile(metric=14_000.0, fd_peak=48, mem_peak_kb=81_920),
            "suite": WorkloadProfile(metric=None, fd_peak=64, mem_peak_kb=98_304),
            "health": WorkloadProfile(metric=None, fd_peak=24, mem_peak_kb=65_536),
        },
        description="distributed key-value store (Go)",
    )
    program = with_static_views(program, source_total=68, binary_total=86)
    return App(
        program=program,
        workloads={
            "health": health_check("health"),
            "bench": benchmark("bench", metric_name="puts/s"),
            "suite": test_suite("suite", features=("core", "raft", "watch")),
        },
        category="kv-store",
        year=2013,
    )


def build_hello(libc: LibcModel | None = None) -> App:
    """Build the Table 4 hello-world against a chosen libc build."""
    libc = libc or GLIBC_228_DYNAMIC
    stdio = libc.stdio_write_syscall()
    ops = tuple(
        list(libc.init_ops())
        + [
            op(stdio, 1, feature="output", phase=Phase.WORKLOAD,
               on_stub=disable("output"), on_fake=breaks("output")),
            op("exit_group", 1, origin=Origin.LIBC, checks_return=False,
               phase=Phase.SHUTDOWN, on_stub=ignore(), on_fake=harmless()),
        ]
    )
    name = f"hello-{libc.vendor}-{libc.linking}"
    program = SimProgram(
        name=name,
        version=libc.version,
        ops=ops,
        features=frozenset({"core", "output"}),
        profiles={"*": WorkloadProfile(metric=None, fd_peak=4, mem_peak_kb=512)},
        description="Table 4 hello-world",
    )
    program = with_static_views(program, source_total=14, binary_total=24)
    return App(
        program=program,
        workloads={
            "health": health_check("health"),
            "bench": benchmark("bench", metric_name="runs/s", features=("output",)),
            "suite": test_suite("suite", features=("core", "output")),
        },
        category="tool",
        year=1972,
    )
