"""Memcached model (threaded in-memory cache).

Thread-pool architecture: ``clone`` + ``futex`` are load-bearing
(Table 1 shows Unikraft unlocking Memcached by implementing eventfd2
(290) and stubbing set_robust_list (273), getdents64 (218), and
clock_nanosleep (230); Kerla needs accept4 (288) implemented and
clock_nanosleep stubbed). The suite exercises stats introspection and
flush scheduling on top of the cache core.
"""

from __future__ import annotations

from repro.appsim.apps import App
from repro.appsim.apps.blocks import nscd_block, op, with_static_views
from repro.appsim.behavior import (
    abort,
    breaks,
    breaks_core,
    disable,
    harmless,
    ignore,
    safe_default,
)
from repro.appsim.libc import LibcModel
from repro.appsim.program import Phase, SimProgram, WorkloadProfile
from repro.core.workload import benchmark, health_check, test_suite

FEATURES = frozenset({"core", "stats", "flush", "nscd"})

SUITE_FEATURES = ("core", "stats", "flush")


def _ops(libc: LibcModel) -> tuple:
    stats = frozenset({"stats"})
    flush = frozenset({"flush"})
    return tuple(
        list(libc.init_ops())
        + list(libc.runtime_ops(threaded=True))
        + nscd_block()
        + [
            op("prlimit64", 1, subfeature="RLIMIT_NOFILE",
               on_stub=safe_default(), on_fake=harmless()),
            op("getuid", 1, on_stub=ignore(), on_fake=harmless()),
            op("geteuid", 1, on_stub=ignore(), on_fake=harmless()),
            op("getpid", 1, checks_return=False, on_stub=ignore(), on_fake=harmless()),
            op("uname", 1, on_stub=ignore(), on_fake=harmless()),
            op("rt_sigaction", 6, on_stub=ignore(), on_fake=harmless()),
            op("rt_sigprocmask", 2, on_stub=ignore(), on_fake=harmless()),
            # Threaded cache core: workers + locks are required.
            op("clone", 4, on_stub=abort(), on_fake=breaks_core()),
            op("futex", 64, phase=Phase.WORKLOAD, checks_return=False,
               on_stub=abort(), on_fake=breaks_core()),
            op("eventfd2", 1, on_stub=abort(), on_fake=breaks_core()),
            op("sched_getaffinity", 1, on_stub=ignore(), on_fake=harmless()),
            # Network data path.
            op("socket", 1, on_stub=abort(), on_fake=breaks_core()),
            op("setsockopt", 4, on_stub=abort(), on_fake=breaks_core()),
            op("bind", 1, on_stub=abort(), on_fake=breaks_core()),
            op("listen", 1, on_stub=abort(), on_fake=breaks_core()),
            op("accept4", 4, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("epoll_create1", 1, on_stub=abort(), on_fake=breaks_core()),
            op("epoll_ctl", 8, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("epoll_wait", 24, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("read", 32, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("sendmsg", 32, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("close", 8, phase=Phase.WORKLOAD,
               on_stub=ignore(fd_frac=0.5), on_fake=harmless(fd_frac=0.5)),
            op("fcntl", 2, subfeature="F_SETFL",
               on_stub=disable("core"), on_fake=breaks_core()),
            op("fcntl", 2, subfeature="F_SETFD",
               on_stub=ignore(), on_fake=harmless()),
            op("pipe2", 1, on_stub=ignore(fd_frac=-0.08),
               on_fake=harmless(fd_frac=-0.08)),
            # Slab allocator warm-up.
            op("madvise", 2, subfeature="MADV_DONTNEED", checks_return=False,
               phase=Phase.WORKLOAD, on_stub=ignore(), on_fake=harmless()),
            op("getdents64", 1, on_stub=ignore(), on_fake=harmless()),
            op("clock_nanosleep", 2, phase=Phase.WORKLOAD, checks_return=False,
               on_stub=ignore(), on_fake=harmless()),
            # Stats introspection (suite).
            op("getrusage", 2, feature="stats", when=stats,
               checks_return=False, on_stub=ignore(), on_fake=harmless()),
            op("sysinfo", 1, feature="stats", when=stats,
               on_stub=disable("stats"), on_fake=breaks("stats")),
            op("clock_gettime", 8, feature="stats", when=stats,
               phase=Phase.WORKLOAD, checks_return=False,
               on_stub=disable("stats"), on_fake=harmless()),
            # Scheduled flush (suite).
            op("nanosleep", 2, feature="flush", when=flush,
               phase=Phase.WORKLOAD,
               on_stub=disable("flush"), on_fake=breaks("flush")),
            op("gettimeofday", 2, feature="flush", when=flush,
               checks_return=False,
               on_stub=disable("flush"), on_fake=harmless()),
        ]
    )


def build(version: str = "1.6", libc: LibcModel | None = None) -> App:
    """Build the Memcached application model."""
    libc = libc or LibcModel("glibc", "2.28", "dynamic", brk_fallback_mem_frac=0.04)
    program = SimProgram(
        name="memcached",
        version=version,
        ops=_ops(libc),
        features=FEATURES,
        profiles={
            "bench": WorkloadProfile(metric=480_000.0, fd_peak=40, mem_peak_kb=68_608),
            "suite": WorkloadProfile(metric=None, fd_peak=56, mem_peak_kb=70_656),
            "health": WorkloadProfile(metric=None, fd_peak=24, mem_peak_kb=66_560),
        },
        description="distributed memory cache",
    )
    program = with_static_views(program, source_total=72, binary_total=90)
    workloads = {
        "health": health_check("health"),
        "bench": benchmark("bench", metric_name="ops/s"),
        "suite": test_suite("suite", features=SUITE_FEATURES),
    }
    return App(program=program, workloads=workloads, category="kv-store", year=2003)
