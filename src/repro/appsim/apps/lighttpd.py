"""Lighttpd model (lightweight single-process web server).

Calibration notes from the paper: the *suite* has the highest
avoidable fraction of the seven studied apps (58% stub/fake-able) —
lighttpd's tests sweep many optional modules whose syscalls all fail
soft — while the benchmark sits at 51%. Table 1: Fuchsia unlocks it by
implementing dup2 (33) and stubbing set_robust_list (273), prlimit64
(302) and setuid (105); Kerla implements epoll_create1 (291) and stubs
the identity tail (105, 106, 116, 293).
"""

from __future__ import annotations

from repro.appsim.apps import App
from repro.appsim.apps.blocks import op, with_static_views
from repro.appsim.behavior import (
    abort,
    breaks,
    breaks_core,
    disable,
    harmless,
    ignore,
    safe_default,
)
from repro.appsim.libc import LibcModel
from repro.appsim.program import Phase, SimProgram, WorkloadProfile
from repro.core.workload import benchmark, health_check, test_suite

FEATURES = frozenset({"core", "modules", "cgi", "auth"})

SUITE_FEATURES = ("core", "modules", "cgi", "auth")


def _ops(libc: LibcModel) -> tuple:
    modules = frozenset({"modules"})
    cgi = frozenset({"cgi"})
    auth = frozenset({"auth"})
    return tuple(
        list(libc.init_ops())
        + [
            op("prlimit64", 1, subfeature="RLIMIT_NOFILE",
               on_stub=safe_default(), on_fake=harmless()),
            op("getuid", 1, on_stub=ignore(), on_fake=harmless()),
            op("geteuid", 1, on_stub=ignore(), on_fake=harmless()),
            op("getgid", 1, on_stub=ignore(), on_fake=harmless()),
            op("setuid", 1, on_stub=ignore(), on_fake=harmless()),
            op("setgid", 1, on_stub=ignore(), on_fake=harmless()),
            op("setgroups", 1, on_stub=ignore(), on_fake=harmless()),
            op("dup2", 2, on_stub=abort(), on_fake=breaks_core()),
            op("umask", 1, checks_return=False, on_stub=ignore(), on_fake=harmless()),
            op("getcwd", 1, on_stub=ignore(), on_fake=harmless()),
            op("uname", 1, on_stub=ignore(), on_fake=harmless()),
            op("getpid", 1, checks_return=False, on_stub=ignore(), on_fake=harmless()),
            op("rt_sigaction", 8, on_stub=ignore(), on_fake=harmless()),
            op("rt_sigprocmask", 2, on_stub=ignore(), on_fake=harmless()),
            op("set_robust_list", 1, checks_return=False,
               on_stub=ignore(), on_fake=harmless()),
            op("gettimeofday", 2, checks_return=False,
               on_stub=ignore(), on_fake=harmless()),
            op("clock_gettime", 4, phase=Phase.WORKLOAD, checks_return=False,
               on_stub=ignore(), on_fake=harmless()),
            # -- static-file serving core ------------------------------------
            op("socket", 1, on_stub=abort(), on_fake=breaks_core()),
            op("setsockopt", 2, on_stub=abort(), on_fake=breaks_core()),
            op("bind", 1, on_stub=abort(), on_fake=breaks_core()),
            op("listen", 1, on_stub=abort(), on_fake=breaks_core()),
            op("epoll_create1", 1, on_stub=abort(), on_fake=breaks_core()),
            op("epoll_ctl", 4, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("epoll_wait", 16, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("accept4", 4, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("read", 8, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("writev", 8, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("openat", 4, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("fstat", 4, phase=Phase.WORKLOAD,
               on_stub=ignore(), on_fake=harmless()),
            op("stat", 4, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("close", 8, phase=Phase.WORKLOAD,
               on_stub=ignore(fd_frac=0.4), on_fake=harmless(fd_frac=0.4)),
            op("sendfile", 8, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("fcntl", 2, subfeature="F_SETFL",
               on_stub=disable("core"), on_fake=breaks_core()),
            op("fcntl", 2, subfeature="F_SETFD",
               on_stub=ignore(), on_fake=harmless()),
            # -- optional modules swept by the suite: all fail soft ----------
            op("pipe2", 1, feature="modules", when=modules,
               on_stub=ignore(fd_frac=-0.05), on_fake=harmless(fd_frac=-0.05)),
            op("getdents64", 2, feature="modules", when=modules,
               on_stub=ignore(), on_fake=harmless()),
            op("lseek", 2, feature="modules", when=modules,
               on_stub=ignore(), on_fake=harmless()),
            op("readlink", 1, feature="modules", when=modules,
               on_stub=ignore(), on_fake=harmless()),
            op("access", 2, feature="modules", when=modules,
               on_stub=ignore(), on_fake=harmless()),
            op("statfs", 1, feature="modules", when=modules,
               on_stub=ignore(), on_fake=harmless()),
            op("flock", 1, feature="modules", when=modules,
               on_stub=ignore(), on_fake=harmless()),
            op("utimensat", 1, feature="modules", when=modules,
               on_stub=ignore(), on_fake=harmless()),
            op("madvise", 1, subfeature="MADV_SEQUENTIAL", feature="modules",
               when=modules, checks_return=False,
               on_stub=ignore(), on_fake=harmless()),
            op("mkdir", 1, feature="modules", when=modules,
               on_stub=ignore(), on_fake=harmless()),
            op("inotify_init1", 1, feature="modules", when=modules,
               on_stub=ignore(), on_fake=harmless()),
            op("inotify_add_watch", 1, feature="modules", when=modules,
               on_stub=ignore(), on_fake=harmless()),
            # -- CGI execution (suite correctness) ---------------------------
            op("fork", 2, feature="cgi", when=cgi, phase=Phase.WORKLOAD,
               on_stub=disable("cgi"), on_fake=breaks("cgi")),
            op("execve", 2, feature="cgi", when=cgi, phase=Phase.WORKLOAD,
               on_stub=disable("cgi"), on_fake=breaks("cgi")),
            op("wait4", 2, feature="cgi", when=cgi, phase=Phase.WORKLOAD,
               on_stub=disable("cgi"), on_fake=breaks("cgi")),
            op("pipe2", 2, feature="cgi", when=cgi, phase=Phase.WORKLOAD,
               on_stub=disable("cgi"), on_fake=breaks("cgi")),
            op("kill", 1, feature="cgi", when=cgi,
               on_stub=ignore(), on_fake=harmless()),
            # -- auth backends (suite, fail soft) ----------------------------
            op("socket", 1, feature="auth", when=auth,
               on_stub=ignore(), on_fake=harmless()),
            op("connect", 1, feature="auth", when=auth,
               on_stub=ignore(), on_fake=harmless()),
            op("getrandom", 1, feature="auth", when=auth,
               on_stub=ignore(), on_fake=harmless()),
        ]
    )


def build(version: str = "1.4.59", libc: LibcModel | None = None) -> App:
    """Build the Lighttpd application model."""
    libc = libc or LibcModel("glibc", "2.28", "dynamic", brk_fallback_mem_frac=0.06)
    program = SimProgram(
        name="lighttpd",
        version=version,
        ops=_ops(libc),
        features=FEATURES,
        profiles={
            "bench": WorkloadProfile(metric=88_000.0, fd_peak=40, mem_peak_kb=5_120),
            "suite": WorkloadProfile(metric=None, fd_peak=64, mem_peak_kb=7_168),
            "health": WorkloadProfile(metric=None, fd_peak=20, mem_peak_kb=4_096),
        },
        description="lightweight web server",
    )
    program = with_static_views(program, source_total=82, binary_total=97)
    workloads = {
        "health": health_check("health"),
        "bench": benchmark("bench", metric_name="requests/s"),
        "suite": test_suite("suite", features=SUITE_FEATURES),
    }
    return App(program=program, workloads=workloads, category="web-server", year=2003)
