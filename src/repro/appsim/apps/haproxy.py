"""HAProxy model (TCP/HTTP load balancer).

The paper's most stub/fake-tolerant benchmark subject (65% of invoked
syscalls avoidable under load): a long startup tail of limit tuning,
privilege juggling and polling configuration, almost all of it
non-critical, in front of a lean proxy data path. Table 1: Fuchsia
unlocks HAProxy purely by *stubbing* sysinfo (99), timer_create (222)
and timer_settime (223) — nothing to implement; Kerla implements
socketpair-adjacent calls (232, 233, 302) and stubs nine more.
"""

from __future__ import annotations

from repro.appsim.apps import App
from repro.appsim.apps.blocks import nscd_block, op, with_static_views
from repro.appsim.behavior import (
    abort,
    breaks,
    breaks_core,
    disable,
    harmless,
    ignore,
    safe_default,
)
from repro.appsim.libc import LibcModel
from repro.appsim.program import Phase, SimProgram, WorkloadProfile
from repro.core.workload import benchmark, health_check, test_suite

FEATURES = frozenset({"core", "checks", "stats-socket", "seamless-reload", "nscd"})

SUITE_FEATURES = ("core", "checks", "stats-socket", "seamless-reload")


def _ops(libc: LibcModel) -> tuple:
    checks = frozenset({"checks"})
    stats = frozenset({"stats-socket"})
    reload = frozenset({"seamless-reload"})
    return tuple(
        list(libc.init_ops())
        + list(libc.runtime_ops(threaded=True))
        + nscd_block()
        + [
            # -- the famously long, famously optional startup tail ----------
            op("prlimit64", 2, subfeature="RLIMIT_NOFILE",
               on_stub=safe_default(), on_fake=harmless()),
            op("prlimit64", 1, subfeature="RLIMIT_MEMLOCK",
               on_stub=ignore(), on_fake=harmless()),
            op("sysinfo", 1, on_stub=ignore(), on_fake=harmless()),
            op("uname", 1, on_stub=ignore(), on_fake=harmless()),
            op("getpid", 2, checks_return=False, on_stub=ignore(), on_fake=harmless()),
            op("getppid", 1, checks_return=False, on_stub=ignore(), on_fake=harmless()),
            op("getuid", 1, on_stub=ignore(), on_fake=harmless()),
            op("geteuid", 1, on_stub=ignore(), on_fake=harmless()),
            op("getgid", 1, on_stub=ignore(), on_fake=harmless()),
            op("setuid", 1, on_stub=ignore(), on_fake=harmless()),
            op("setgid", 1, on_stub=ignore(), on_fake=harmless()),
            op("setgroups", 1, on_stub=ignore(), on_fake=harmless()),
            op("setsid", 1, on_stub=ignore(), on_fake=harmless()),
            op("umask", 1, checks_return=False, on_stub=ignore(), on_fake=harmless()),
            op("prctl", 1, subfeature="PR_SET_DUMPABLE",
               on_stub=ignore(), on_fake=harmless()),
            op("sched_setaffinity", 1, on_stub=ignore(), on_fake=harmless()),
            op("sched_getaffinity", 1, on_stub=ignore(), on_fake=harmless()),
            op("setpriority", 1, on_stub=ignore(), on_fake=harmless()),
            op("timer_create", 1, on_stub=ignore(), on_fake=harmless()),
            op("timer_settime", 1, on_stub=ignore(), on_fake=harmless()),
            op("rt_sigaction", 10, on_stub=ignore(), on_fake=harmless()),
            op("rt_sigprocmask", 4, on_stub=ignore(), on_fake=harmless()),
            op("pipe2", 1, on_stub=ignore(fd_frac=-0.06),
               on_fake=harmless(fd_frac=-0.06)),
            op("clone", 2, on_stub=ignore(mem_frac=-0.03), on_fake=breaks_core()),
            op("futex", 16, phase=Phase.WORKLOAD, checks_return=False,
               on_stub=ignore(perf_factor=0.97), on_fake=harmless()),
            op("getrandom", 1, on_stub=ignore(), on_fake=harmless()),
            op("gettimeofday", 4, checks_return=False,
               on_stub=ignore(), on_fake=harmless()),
            op("clock_gettime", 8, phase=Phase.WORKLOAD, checks_return=False,
               on_stub=ignore(), on_fake=harmless()),
            # -- proxy data path (the lean required core) --------------------
            op("socket", 2, on_stub=abort(), on_fake=breaks_core()),
            op("setsockopt", 6, on_stub=abort(), on_fake=breaks_core()),
            op("bind", 1, on_stub=abort(), on_fake=breaks_core()),
            op("listen", 1, on_stub=abort(), on_fake=breaks_core()),
            op("accept4", 8, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("connect", 8, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("epoll_create1", 1, on_stub=abort(), on_fake=breaks_core()),
            op("epoll_ctl", 12, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("epoll_wait", 32, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("recvfrom", 32, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("sendto", 32, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("close", 16, phase=Phase.WORKLOAD,
               on_stub=ignore(fd_frac=0.9), on_fake=harmless(fd_frac=0.9)),
            op("shutdown", 4, phase=Phase.WORKLOAD,
               on_stub=ignore(), on_fake=harmless()),
            op("fcntl", 4, subfeature="F_SETFL",
               on_stub=disable("core"), on_fake=breaks_core()),
            op("getsockopt", 4, phase=Phase.WORKLOAD,
               on_stub=ignore(), on_fake=harmless()),
            op("getsockname", 2, on_stub=ignore(), on_fake=harmless()),
            # -- health checks of backends (suite) ---------------------------
            op("socket", 2, feature="checks", when=checks,
               phase=Phase.WORKLOAD,
               on_stub=disable("checks"), on_fake=breaks("checks")),
            op("connect", 2, feature="checks", when=checks,
               phase=Phase.WORKLOAD,
               on_stub=disable("checks"), on_fake=breaks("checks")),
            op("getpeername", 2, feature="checks", when=checks,
               on_stub=ignore(), on_fake=harmless()),
            op("nanosleep", 2, feature="checks", when=checks,
               phase=Phase.WORKLOAD, checks_return=False,
               on_stub=ignore(), on_fake=harmless()),
            # -- admin stats socket (suite) ----------------------------------
            op("socket", 1, feature="stats-socket", when=stats,
               on_stub=disable("stats-socket"), on_fake=breaks("stats-socket")),
            op("unlink", 1, feature="stats-socket", when=stats,
               on_stub=ignore(), on_fake=harmless()),
            op("chmod", 1, feature="stats-socket", when=stats,
               on_stub=ignore(), on_fake=harmless()),
            # -- seamless reload: fd passing over unix sockets (suite) -------
            op("socketpair", 1, feature="seamless-reload", when=reload,
               on_stub=disable("seamless-reload"),
               on_fake=breaks("seamless-reload")),
            op("sendmsg", 2, feature="seamless-reload", when=reload,
               phase=Phase.WORKLOAD,
               on_stub=disable("seamless-reload"),
               on_fake=breaks("seamless-reload")),
            op("recvmsg", 2, feature="seamless-reload", when=reload,
               phase=Phase.WORKLOAD,
               on_stub=disable("seamless-reload"),
               on_fake=breaks("seamless-reload")),
            op("execve", 1, feature="seamless-reload", when=reload,
               phase=Phase.WORKLOAD,
               on_stub=disable("seamless-reload"),
               on_fake=breaks("seamless-reload")),
            op("wait4", 1, feature="seamless-reload", when=reload,
               phase=Phase.WORKLOAD, on_stub=ignore(), on_fake=harmless()),
        ]
    )


def build(version: str = "2.4", libc: LibcModel | None = None) -> App:
    """Build the HAProxy application model."""
    libc = libc or LibcModel("glibc", "2.28", "dynamic", brk_fallback_mem_frac=0.05)
    program = SimProgram(
        name="haproxy",
        version=version,
        ops=_ops(libc),
        features=FEATURES,
        profiles={
            "bench": WorkloadProfile(metric=74_000.0, fd_peak=128, mem_peak_kb=16_384),
            "suite": WorkloadProfile(metric=None, fd_peak=160, mem_peak_kb=20_480),
            "health": WorkloadProfile(metric=None, fd_peak=48, mem_peak_kb=12_288),
        },
        description="TCP/HTTP load balancer",
    )
    program = with_static_views(program, source_total=92, binary_total=106)
    workloads = {
        "health": health_check("health"),
        "bench": benchmark("bench", metric_name="requests/s"),
        "suite": test_suite("suite", features=SUITE_FEATURES),
    }
    return App(program=program, workloads=workloads, category="proxy", year=2006)
