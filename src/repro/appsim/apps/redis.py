"""Redis model (key-value store) — the paper's running example.

Transcribed behaviors:

* Figure 6a: ``getrlimit``/``prlimit64`` failure -> assume 1024
  descriptors (safe default, stub-resilient).
* Section 5.2: ``sysinfo`` and ``ioctl`` failures ignored (debug-log
  values only); ``ioctl(TCGETS)`` terminal width defaults to 80.
* Table 2: ``close`` stub -> x8 descriptors; ``munmap`` stub -> +19%
  memory; ``brk`` -> glibc mmap fallback, +2% memory; ``rt_sigprocmask``
  stub -> jemalloc background threads never start, -15% memory;
  ``futex`` fake -> inconsistent synchronization, -66% throughput and
  +94% descriptors (and outright failure for workloads that verify
  concurrent results); ``pipe2`` stub/fake -> persistence pipes never
  created, -25% descriptors, persistence broken.
* Section 5.1: 103 syscalls by binary static analysis, 68 traced by
  the test suite of which 42 required; ~20 required for
  redis-benchmark.
* Section 5.4: ``fcntl(F_SETFL)`` (non-blocking sockets) is required;
  ``F_SETFD`` (close-on-exec) always stubbable.
"""

from __future__ import annotations

from repro.appsim.apps import App
from repro.appsim.apps.blocks import nscd_block, op, with_static_views
from repro.appsim.behavior import (
    abort,
    breaks,
    breaks_core,
    disable,
    harmless,
    ignore,
    safe_default,
)
from repro.appsim.libc import LibcModel
from repro.appsim.program import Phase, SimProgram, WorkloadProfile
from repro.core.workload import benchmark, health_check, test_suite

FEATURES = frozenset(
    {"core", "persistence", "expiry", "scripting", "concurrency", "nscd"}
)

SUITE_FEATURES = ("core", "persistence", "expiry", "scripting", "concurrency")


def _ops(libc: LibcModel) -> tuple:
    persistence = frozenset({"persistence"})
    scripting = frozenset({"scripting"})
    expiry = frozenset({"expiry"})
    return tuple(
        list(libc.init_ops())
        + list(libc.runtime_ops(threaded=True))
        + nscd_block()
        + [
            # -- startup housekeeping (Figure 6a and friends) -------------
            op("prlimit64", 2, subfeature="RLIMIT_NOFILE",
               on_stub=safe_default(), on_fake=harmless()),
            op("sysinfo", 1, on_stub=ignore(), on_fake=harmless()),
            op("ioctl", 1, subfeature="TCGETS",
               on_stub=safe_default(), on_fake=harmless()),
            op("uname", 1, on_stub=ignore(), on_fake=harmless()),
            op("getpid", 2, checks_return=False, on_stub=ignore(), on_fake=harmless()),
            op("getcwd", 1, on_stub=ignore(), on_fake=harmless()),
            op("stat", 2, on_stub=ignore(), on_fake=harmless()),
            op("newfstatat", 2, on_stub=abort(), on_fake=breaks_core()),
            op("getrandom", 1, on_stub=ignore(), on_fake=harmless()),
            op("openat", 1, path="/dev/urandom", on_stub=ignore(), on_fake=harmless()),
            op("dup2", 2, on_stub=ignore(), on_fake=harmless()),
            op("umask", 1, checks_return=False, on_stub=ignore(), on_fake=harmless()),
            # -- signals; jemalloc background threads (Table 2) ------------
            op("rt_sigaction", 10, on_stub=ignore(), on_fake=harmless()),
            op("rt_sigprocmask", 4,
               on_stub=ignore(mem_frac=-0.15), on_fake=harmless(mem_frac=-0.15)),
            op("sigaltstack", 1, on_stub=ignore(), on_fake=harmless()),
            # -- event loop and network data path (required) ---------------
            op("socket", 1, on_stub=abort(), on_fake=breaks_core()),
            op("setsockopt", 4, on_stub=abort(), on_fake=breaks_core()),
            op("bind", 1, on_stub=abort(), on_fake=breaks_core()),
            op("listen", 1, on_stub=abort(), on_fake=breaks_core()),
            op("accept", 4, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("epoll_create", 1, on_stub=abort(), on_fake=breaks_core()),
            op("epoll_ctl", 8, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("epoll_wait", 32, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("read", 64, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("write", 64, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("fcntl", 4, subfeature="F_SETFL",
               on_stub=disable("core"), on_fake=breaks_core()),
            op("fcntl", 2, subfeature="F_SETFD",
               on_stub=ignore(), on_fake=harmless()),
            op("pread64", 2, on_stub=abort(), on_fake=breaks_core()),
            # Table 2: close and munmap are liberators — stubbable at a
            # resource cost (x8 descriptors, +19% memory).
            op("close", 32, phase=Phase.WORKLOAD,
               on_stub=ignore(fd_frac=6.98), on_fake=harmless(fd_frac=6.98)),
            op("munmap", 6, phase=Phase.WORKLOAD,
               on_stub=ignore(mem_frac=0.18), on_fake=harmless(mem_frac=0.18)),
            op("madvise", 2, subfeature="MADV_FREE", checks_return=False,
               phase=Phase.WORKLOAD, on_stub=ignore(), on_fake=harmless()),
            op("mremap", 1, phase=Phase.WORKLOAD,
               on_stub=ignore(), on_fake=harmless()),
            # -- threading: jemalloc/io threads (Table 2 futex row) --------
            op("clone", 3, on_stub=ignore(mem_frac=-0.04), on_fake=breaks_core()),
            op("futex", 48, phase=Phase.WORKLOAD, checks_return=False,
               on_stub=abort(),
               on_fake=breaks("concurrency", perf_factor=0.34, fd_frac=0.94)),
            op("sched_getaffinity", 1, on_stub=ignore(), on_fake=harmless()),
            # -- time (expiry checks gate suite-level correctness) ---------
            op("clock_gettime", 16, phase=Phase.WORKLOAD, checks_return=False,
               on_stub=ignore(), on_fake=harmless()),
            op("gettimeofday", 2, checks_return=False,
               on_stub=ignore(), on_fake=harmless()),
            op("clock_gettime", 8, feature="expiry", when=expiry,
               phase=Phase.WORKLOAD, checks_return=False,
               on_stub=disable("expiry"), on_fake=harmless()),
            # -- persistence (Table 2 pipe2 row; suite-only correctness) ---
            op("pipe2", 2, feature="persistence",
               on_stub=disable("persistence", fd_frac=-0.25),
               on_fake=breaks("persistence", fd_frac=-0.25)),
            op("fork", 1, feature="persistence", when=persistence,
               phase=Phase.WORKLOAD,
               on_stub=disable("persistence"), on_fake=breaks("persistence")),
            op("wait4", 1, feature="persistence", when=persistence,
               phase=Phase.WORKLOAD,
               on_stub=disable("persistence"), on_fake=breaks("persistence")),
            op("openat", 2, feature="persistence", when=persistence,
               phase=Phase.WORKLOAD,
               on_stub=disable("persistence"), on_fake=breaks("persistence")),
            op("lseek", 4, feature="persistence", when=persistence,
               phase=Phase.WORKLOAD,
               on_stub=disable("persistence"), on_fake=breaks("persistence")),
            op("pwrite64", 4, feature="persistence", when=persistence,
               phase=Phase.WORKLOAD,
               on_stub=disable("persistence"), on_fake=breaks("persistence")),
            op("fdatasync", 2, feature="persistence", when=persistence,
               phase=Phase.WORKLOAD,
               on_stub=disable("persistence"), on_fake=breaks("persistence")),
            op("rename", 2, feature="persistence", when=persistence,
               phase=Phase.WORKLOAD,
               on_stub=disable("persistence"), on_fake=breaks("persistence")),
            op("unlink", 1, feature="persistence", when=persistence,
               phase=Phase.WORKLOAD,
               on_stub=disable("persistence"), on_fake=breaks("persistence")),
            op("ftruncate", 1, feature="persistence", when=persistence,
               on_stub=disable("persistence"), on_fake=breaks("persistence")),
            op("getdents64", 1, feature="persistence", when=persistence,
               on_stub=disable("persistence"), on_fake=breaks("persistence")),
            op("mkdir", 1, feature="persistence", when=persistence,
               on_stub=disable("persistence"), on_fake=breaks("persistence")),
            op("flock", 1, feature="persistence", when=persistence,
               on_stub=disable("persistence"), on_fake=breaks("persistence")),
            op("chdir", 1, feature="persistence", when=persistence,
               on_stub=ignore(), on_fake=harmless()),
            op("readlink", 1, feature="persistence", when=persistence,
               on_stub=ignore(), on_fake=harmless()),
            # -- scripting / debug paths exercised only by the suite -------
            op("memfd_create", 1, feature="scripting", when=scripting,
               on_stub=disable("scripting"), on_fake=breaks("scripting")),
            op("mprotect", 2, feature="scripting", when=scripting,
               on_stub=disable("scripting"), on_fake=harmless()),
            op("kill", 1, feature="scripting", when=scripting,
               on_stub=disable("scripting"), on_fake=breaks("scripting")),
            op("tgkill", 1, feature="scripting", when=scripting,
               checks_return=False, on_stub=ignore(), on_fake=harmless()),
            op("getrusage", 2, feature="scripting", when=scripting,
               checks_return=False, on_stub=ignore(), on_fake=harmless()),
            op("nanosleep", 1, feature="scripting", when=scripting,
               phase=Phase.WORKLOAD,
               on_stub=disable("scripting"), on_fake=breaks("scripting")),
            op("geteuid", 1, feature="scripting", when=scripting,
               on_stub=ignore(), on_fake=harmless()),
            op("times", 1, feature="scripting", when=scripting,
               checks_return=False, on_stub=ignore(), on_fake=harmless()),
            op("pipe", 1, feature="scripting", when=scripting,
               on_stub=disable("scripting"), on_fake=breaks("scripting")),
            op("dup", 1, feature="scripting", when=scripting,
               on_stub=disable("scripting"), on_fake=breaks("scripting")),
            # Concurrency tests drive cross-thread signaling and yields.
            op("sched_yield", 2, feature="concurrency",
               when=frozenset({"concurrency"}), phase=Phase.WORKLOAD,
               checks_return=False, on_stub=ignore(), on_fake=harmless()),
            op("eventfd2", 1, feature="concurrency",
               when=frozenset({"concurrency"}),
               on_stub=disable("concurrency"), on_fake=breaks("concurrency")),
            op("epoll_pwait", 2, feature="concurrency",
               when=frozenset({"concurrency"}), phase=Phase.WORKLOAD,
               on_stub=disable("concurrency"), on_fake=breaks("concurrency")),
        ]
    )


def build(version: str = "6.2", libc: LibcModel | None = None) -> App:
    """Build the Redis application model."""
    libc = libc or LibcModel("glibc", "2.28", "dynamic", brk_fallback_mem_frac=0.02)
    program = SimProgram(
        name="redis",
        version=version,
        ops=_ops(libc),
        features=FEATURES,
        profiles={
            "bench": WorkloadProfile(metric=118_000.0, fd_peak=48, mem_peak_kb=14_336),
            "suite": WorkloadProfile(metric=None, fd_peak=72, mem_peak_kb=22_528),
            "health": WorkloadProfile(metric=None, fd_peak=24, mem_peak_kb=10_240),
        },
        description="in-memory key-value store",
    )
    program = with_static_views(program, source_total=85, binary_total=103)
    workloads = {
        "health": health_check("health"),
        "bench": benchmark("bench", metric_name="SET requests/s"),
        "suite": test_suite("suite", features=SUITE_FEATURES),
    }
    return App(program=program, workloads=workloads, category="kv-store", year=2009)
