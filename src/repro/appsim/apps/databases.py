"""MongoDB, PostgreSQL and MySQL models (database family).

MongoDB is the deepest syscall consumer in the Table 1 app set — every
OS unlocks it last. Kerla must implement rt_sigtimedwait (128), sysinfo
(99), clock_getres (229), mincore (27), flock (73), futex (202) and
timerfd_create (283), stub rt_sigpending-adjacent calls and fake
statfs-family ones. PostgreSQL contributes the classic multi-process +
SysV-shared-memory footprint, MySQL the big threaded one.
"""

from __future__ import annotations

from repro.appsim.apps import App
from repro.appsim.apps.blocks import nscd_block, op, with_static_views
from repro.appsim.behavior import (
    abort,
    breaks,
    breaks_core,
    disable,
    harmless,
    ignore,
    safe_default,
)
from repro.appsim.libc import LibcModel
from repro.appsim.program import Phase, SimProgram, WorkloadProfile
from repro.core.workload import benchmark, health_check, test_suite


def _mongodb_ops(libc: LibcModel) -> tuple:
    journal = frozenset({"journal"})
    aggregation = frozenset({"aggregation"})
    return tuple(
        list(libc.init_ops())
        + list(libc.runtime_ops(threaded=True))
        + nscd_block()
        + [
            # Deep startup introspection: MongoDB refuses degraded hosts.
            op("sysinfo", 1, on_stub=abort(), on_fake=harmless()),
            op("mincore", 2, on_stub=abort(), on_fake=breaks_core()),
            op("clock_getres", 1, on_stub=abort(), on_fake=harmless()),
            op("rt_sigtimedwait", 2, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("timerfd_create", 1, on_stub=abort(), on_fake=breaks_core()),
            op("timerfd_settime", 1, on_stub=abort(), on_fake=breaks_core()),
            op("flock", 1, on_stub=abort(), on_fake=breaks_core()),
            op("statfs", 1, on_stub=ignore(), on_fake=harmless()),
            op("fstatfs", 1, on_stub=ignore(), on_fake=harmless()),
            op("gettid", 2, checks_return=False, on_stub=ignore(), on_fake=harmless()),
            op("getpid", 2, checks_return=False, on_stub=ignore(), on_fake=harmless()),
            op("uname", 1, on_stub=ignore(), on_fake=harmless()),
            op("prlimit64", 2, subfeature="RLIMIT_NOFILE",
               on_stub=safe_default(), on_fake=harmless()),
            op("prlimit64", 1, subfeature="RLIMIT_MEMLOCK",
               on_stub=ignore(), on_fake=harmless()),
            op("rt_sigaction", 12, on_stub=ignore(), on_fake=harmless()),
            op("rt_sigprocmask", 6, on_stub=ignore(), on_fake=harmless()),
            op("sigaltstack", 2, on_stub=ignore(), on_fake=harmless()),
            op("sched_getaffinity", 2, on_stub=ignore(), on_fake=harmless()),
            op("getrandom", 2, on_stub=ignore(), on_fake=harmless()),
            op("openat", 1, path="/proc/self/status",
               on_stub=ignore(), on_fake=harmless()),
            op("openat", 1, path="/sys/kernel/mm/transparent_hugepage/enabled",
               on_stub=ignore(), on_fake=harmless()),
            # Threaded storage engine.
            op("clone", 8, on_stub=abort(), on_fake=breaks_core()),
            op("futex", 96, phase=Phase.WORKLOAD, checks_return=False,
               on_stub=abort(), on_fake=breaks_core()),
            op("madvise", 4, subfeature="MADV_DONTNEED", checks_return=False,
               phase=Phase.WORKLOAD, on_stub=ignore(), on_fake=harmless()),
            op("mmap", 4, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("munmap", 4, phase=Phase.WORKLOAD,
               on_stub=ignore(mem_frac=0.12), on_fake=harmless(mem_frac=0.12)),
            # Network layer.
            op("socket", 1, on_stub=abort(), on_fake=breaks_core()),
            op("setsockopt", 4, on_stub=abort(), on_fake=breaks_core()),
            op("bind", 1, on_stub=abort(), on_fake=breaks_core()),
            op("listen", 1, on_stub=abort(), on_fake=breaks_core()),
            op("accept4", 4, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("epoll_create1", 1, on_stub=abort(), on_fake=breaks_core()),
            op("epoll_ctl", 6, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("epoll_wait", 16, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("recvmsg", 16, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("sendmsg", 16, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("close", 8, phase=Phase.WORKLOAD,
               on_stub=ignore(fd_frac=0.5), on_fake=harmless(fd_frac=0.5)),
            # Storage files.
            op("openat", 6, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("pread64", 16, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("pwrite64", 16, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("fstat", 6, on_stub=ignore(), on_fake=harmless()),
            op("stat", 4, on_stub=ignore(), on_fake=harmless()),
            op("getdents64", 2, on_stub=ignore(), on_fake=harmless()),
            op("mkdir", 2, on_stub=ignore(), on_fake=harmless()),
            # Journaling (suite).
            op("fdatasync", 8, feature="journal", when=journal,
               phase=Phase.WORKLOAD,
               on_stub=disable("journal"), on_fake=breaks("journal")),
            op("fsync", 4, feature="journal", when=journal,
               phase=Phase.WORKLOAD,
               on_stub=disable("journal"), on_fake=harmless()),
            op("rename", 2, feature="journal", when=journal,
               phase=Phase.WORKLOAD,
               on_stub=disable("journal"), on_fake=breaks("journal")),
            op("fallocate", 2, feature="journal", when=journal,
               on_stub=ignore(), on_fake=harmless()),
            op("ftruncate", 1, feature="journal", when=journal,
               on_stub=disable("journal"), on_fake=breaks("journal")),
            # Aggregation temp spills (suite).
            op("unlink", 2, feature="aggregation", when=aggregation,
               phase=Phase.WORKLOAD, on_stub=ignore(), on_fake=harmless()),
            op("lseek", 4, feature="aggregation", when=aggregation,
               phase=Phase.WORKLOAD,
               on_stub=disable("aggregation"), on_fake=breaks("aggregation")),
            op("nanosleep", 2, feature="aggregation", when=aggregation,
               checks_return=False, phase=Phase.WORKLOAD,
               on_stub=ignore(), on_fake=harmless()),
        ]
    )


def build_mongodb(version: str = "5.0") -> App:
    """Build the MongoDB application model."""
    libc = LibcModel("glibc", "2.28", "dynamic", brk_fallback_mem_frac=0.06)
    program = SimProgram(
        name="mongodb",
        version=version,
        ops=_mongodb_ops(libc),
        features=frozenset({"core", "journal", "aggregation", "nscd"}),
        profiles={
            "bench": WorkloadProfile(metric=31_000.0, fd_peak=96, mem_peak_kb=262_144),
            "suite": WorkloadProfile(metric=None, fd_peak=128, mem_peak_kb=294_912),
            "health": WorkloadProfile(metric=None, fd_peak=48, mem_peak_kb=229_376),
        },
        description="document database",
    )
    program = with_static_views(program, source_total=102, binary_total=118)
    return App(
        program=program,
        workloads={
            "health": health_check("health"),
            "bench": benchmark("bench", metric_name="ops/s"),
            "suite": test_suite("suite", features=("core", "journal", "aggregation")),
        },
        category="database",
        year=2009,
    )


def _postgres_ops(libc: LibcModel) -> tuple:
    wal = frozenset({"wal"})
    vacuum = frozenset({"vacuum"})
    return tuple(
        list(libc.init_ops())
        + nscd_block()
        + [
            op("getuid", 1, on_stub=abort(), on_fake=harmless()),
            op("geteuid", 1, on_stub=abort(), on_fake=harmless()),
            op("getpid", 2, checks_return=False, on_stub=ignore(), on_fake=harmless()),
            op("umask", 1, checks_return=False, on_stub=ignore(), on_fake=harmless()),
            op("getcwd", 1, on_stub=ignore(), on_fake=harmless()),
            op("uname", 1, on_stub=ignore(), on_fake=harmless()),
            op("prlimit64", 1, subfeature="RLIMIT_NOFILE",
               on_stub=safe_default(), on_fake=harmless()),
            op("rt_sigaction", 12, on_stub=ignore(), on_fake=harmless()),
            op("rt_sigprocmask", 6, on_stub=ignore(), on_fake=harmless()),
            op("setsid", 1, on_stub=ignore(), on_fake=harmless()),
            # Multi-process architecture over SysV/POSIX shared memory.
            op("shmget", 1, on_stub=abort(), on_fake=breaks_core()),
            op("shmat", 1, on_stub=abort(), on_fake=breaks_core()),
            op("mmap", 2, on_stub=abort(), on_fake=breaks_core()),
            op("fork", 6, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("wait4", 4, phase=Phase.WORKLOAD,
               on_stub=ignore(), on_fake=harmless()),
            op("kill", 2, phase=Phase.WORKLOAD,
               on_stub=ignore(), on_fake=harmless()),
            op("socket", 2, on_stub=abort(), on_fake=breaks_core()),
            op("setsockopt", 4, on_stub=abort(), on_fake=breaks_core()),
            op("bind", 2, on_stub=abort(), on_fake=breaks_core()),
            op("listen", 2, on_stub=abort(), on_fake=breaks_core()),
            op("accept", 4, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("poll", 16, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("recvfrom", 16, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("sendto", 16, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("close", 12, phase=Phase.WORKLOAD,
               on_stub=ignore(fd_frac=0.6), on_fake=harmless(fd_frac=0.6)),
            op("openat", 8, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("lseek", 16, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("read", 16, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("write", 16, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("fstat", 6, on_stub=ignore(), on_fake=harmless()),
            op("stat", 4, on_stub=ignore(), on_fake=harmless()),
            op("semget", 2, on_stub=ignore(), on_fake=harmless()),
            op("semop", 8, phase=Phase.WORKLOAD, checks_return=False,
               on_stub=ignore(), on_fake=harmless()),
            op("getrandom", 1, on_stub=ignore(), on_fake=harmless()),
            # WAL (suite).
            op("fdatasync", 8, feature="wal", when=wal, phase=Phase.WORKLOAD,
               on_stub=disable("wal"), on_fake=breaks("wal")),
            op("fsync", 8, feature="wal", when=wal, phase=Phase.WORKLOAD,
               on_stub=disable("wal"), on_fake=harmless()),
            op("rename", 2, feature="wal", when=wal, phase=Phase.WORKLOAD,
               on_stub=disable("wal"), on_fake=breaks("wal")),
            op("pwrite64", 8, feature="wal", when=wal, phase=Phase.WORKLOAD,
               on_stub=disable("wal"), on_fake=breaks("wal")),
            # Vacuum (suite).
            op("getdents64", 2, feature="vacuum", when=vacuum,
               on_stub=disable("vacuum"), on_fake=breaks("vacuum")),
            op("unlink", 2, feature="vacuum", when=vacuum,
               phase=Phase.WORKLOAD, on_stub=ignore(), on_fake=harmless()),
            op("ftruncate", 2, feature="vacuum", when=vacuum,
               on_stub=disable("vacuum"), on_fake=breaks("vacuum")),
        ]
    )


def build_postgres(version: str = "13") -> App:
    """Build the PostgreSQL application model."""
    libc = LibcModel("glibc", "2.28", "dynamic", brk_fallback_mem_frac=0.05)
    program = SimProgram(
        name="postgres",
        version=version,
        ops=_postgres_ops(libc),
        features=frozenset({"core", "wal", "vacuum", "nscd"}),
        profiles={
            "bench": WorkloadProfile(metric=18_500.0, fd_peak=88, mem_peak_kb=131_072),
            "suite": WorkloadProfile(metric=None, fd_peak=120, mem_peak_kb=147_456),
            "health": WorkloadProfile(metric=None, fd_peak=40, mem_peak_kb=114_688),
        },
        description="relational database",
    )
    program = with_static_views(program, source_total=96, binary_total=110)
    return App(
        program=program,
        workloads={
            "health": health_check("health"),
            "bench": benchmark("bench", metric_name="transactions/s"),
            "suite": test_suite("suite", features=("core", "wal", "vacuum")),
        },
        category="database",
        year=1996,
    )


def _mysql_ops(libc: LibcModel) -> tuple:
    innodb = frozenset({"innodb"})
    replication = frozenset({"replication"})
    return tuple(
        list(libc.init_ops())
        + list(libc.runtime_ops(threaded=True))
        + nscd_block()
        + [
            op("getuid", 1, on_stub=ignore(), on_fake=harmless()),
            op("geteuid", 1, on_stub=ignore(), on_fake=harmless()),
            op("getpid", 2, checks_return=False, on_stub=ignore(), on_fake=harmless()),
            op("uname", 1, on_stub=ignore(), on_fake=harmless()),
            op("prlimit64", 2, subfeature="RLIMIT_NOFILE",
               on_stub=safe_default(), on_fake=harmless()),
            op("sysinfo", 1, on_stub=ignore(), on_fake=harmless()),
            op("rt_sigaction", 10, on_stub=ignore(), on_fake=harmless()),
            op("rt_sigprocmask", 6, on_stub=ignore(), on_fake=harmless()),
            op("sigaltstack", 2, on_stub=ignore(), on_fake=harmless()),
            op("sched_getaffinity", 2, on_stub=ignore(), on_fake=harmless()),
            op("getrusage", 1, checks_return=False, on_stub=ignore(), on_fake=harmless()),
            op("openat", 1, path="/proc/cpuinfo", on_stub=ignore(), on_fake=harmless()),
            op("openat", 1, path="/proc/meminfo", on_stub=ignore(), on_fake=harmless()),
            op("clone", 12, on_stub=abort(), on_fake=breaks_core()),
            op("futex", 128, phase=Phase.WORKLOAD, checks_return=False,
               on_stub=abort(), on_fake=breaks_core()),
            op("socket", 2, on_stub=abort(), on_fake=breaks_core()),
            op("setsockopt", 6, on_stub=abort(), on_fake=breaks_core()),
            op("bind", 2, on_stub=abort(), on_fake=breaks_core()),
            op("listen", 2, on_stub=abort(), on_fake=breaks_core()),
            op("accept4", 4, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("poll", 16, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("recvfrom", 24, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("sendto", 24, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("shutdown", 2, phase=Phase.WORKLOAD,
               on_stub=ignore(), on_fake=harmless()),
            op("close", 12, phase=Phase.WORKLOAD,
               on_stub=ignore(fd_frac=0.7), on_fake=harmless(fd_frac=0.7)),
            op("openat", 8, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("pread64", 24, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("pwrite64", 24, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("lseek", 8, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("fstat", 8, on_stub=ignore(), on_fake=harmless()),
            op("stat", 6, on_stub=ignore(), on_fake=harmless()),
            op("getdents64", 2, on_stub=ignore(), on_fake=harmless()),
            op("mkdir", 1, on_stub=ignore(), on_fake=harmless()),
            op("getrandom", 2, on_stub=ignore(), on_fake=harmless()),
            op("eventfd2", 1, on_stub=ignore(), on_fake=harmless()),
            op("io_setup", 1, checks_return=False, on_stub=ignore(), on_fake=harmless()),
            # InnoDB durability (suite).
            op("fsync", 12, feature="innodb", when=innodb, phase=Phase.WORKLOAD,
               on_stub=disable("innodb"), on_fake=harmless()),
            op("fdatasync", 8, feature="innodb", when=innodb,
               phase=Phase.WORKLOAD,
               on_stub=disable("innodb"), on_fake=breaks("innodb")),
            op("fallocate", 2, feature="innodb", when=innodb,
               on_stub=ignore(), on_fake=harmless()),
            op("ftruncate", 2, feature="innodb", when=innodb,
               on_stub=disable("innodb"), on_fake=breaks("innodb")),
            op("unlink", 2, feature="innodb", when=innodb,
               phase=Phase.WORKLOAD, on_stub=ignore(), on_fake=harmless()),
            # Replication (suite).
            op("socket", 1, feature="replication", when=replication,
               on_stub=disable("replication"), on_fake=breaks("replication")),
            op("connect", 2, feature="replication", when=replication,
               phase=Phase.WORKLOAD,
               on_stub=disable("replication"), on_fake=breaks("replication")),
            op("rename", 2, feature="replication", when=replication,
               phase=Phase.WORKLOAD,
               on_stub=disable("replication"), on_fake=breaks("replication")),
        ]
    )


def build_mysql(version: str = "8.0") -> App:
    """Build the MySQL application model."""
    libc = LibcModel("glibc", "2.28", "dynamic", brk_fallback_mem_frac=0.08)
    program = SimProgram(
        name="mysql",
        version=version,
        ops=_mysql_ops(libc),
        features=frozenset({"core", "innodb", "replication", "nscd"}),
        profiles={
            "bench": WorkloadProfile(metric=22_000.0, fd_peak=144, mem_peak_kb=393_216),
            "suite": WorkloadProfile(metric=None, fd_peak=176, mem_peak_kb=425_984),
            "health": WorkloadProfile(metric=None, fd_peak=64, mem_peak_kb=360_448),
        },
        description="relational database",
    )
    program = with_static_views(program, source_total=104, binary_total=120)
    return App(
        program=program,
        workloads={
            "health": health_check("health"),
            "bench": benchmark("bench", metric_name="queries/s"),
            "suite": test_suite("suite", features=("core", "innodb", "replication")),
        },
        category="database",
        year=1995,
    )
