"""Execution engine for simulated applications.

:class:`SimProcess` runs a :class:`~repro.appsim.program.SimProgram`
under an interposition policy and produces the same
:class:`~repro.core.runner.RunResult` a real traced process would:
which syscalls were invoked, whether the workload's test script passed,
the performance metric, and peak resource usage.

Semantics:

* every executed op is **traced**, even when stubbed or faked (the
  interposition layer sees the invocation either way);
* ``STUB`` routes the op through its :class:`StubReaction` — possibly
  invoking a fallback syscall *through the same policy* (so stubbing
  both ``brk`` and ``mmap`` aborts even though stubbing either alone
  may work);
* ``FAKE`` routes through the :class:`FakeReaction`; ``AS_FAILURE``
  reactions degrade to the stub path, modeling callers that validate
  result values rather than trusting return codes;
* ops gated by a ``when`` feature set only run when the workload
  exercises one of those features (test suites execute more of the
  application than benchmarks — the paper's Figure 4 gap);
* a run succeeds when no op aborted and every feature the workload
  exercises is still healthy.

Metric noise is deterministic: a hash of (app, workload, policy,
replica) drives a small relative perturbation, so replicated runs have
realistic but perfectly reproducible variance.
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections import Counter

from repro.appsim.behavior import FakeKind, StubKind
from repro.appsim.program import SimProgram, SyscallOp
from repro.core.policy import Action, InterpositionPolicy
from repro.core.pseudofiles import is_pseudo_path
from repro.core.runner import ResourceUsage, RunResult
from repro.core.workload import SimWorkload, Workload
from repro.errors import BackendError, WorkloadError

#: Recursion guard for fallback chains (a fallback's fallback...).
_MAX_FALLBACK_DEPTH = 8


def _deterministic_noise(*parts: str, scale: float) -> float:
    """A reproducible perturbation in [-scale, +scale]."""
    if scale == 0.0:
        return 0.0
    digest = hashlib.blake2b("|".join(parts).encode(), digest_size=8).digest()
    unit = int.from_bytes(digest, "big") / float(2**64)  # [0, 1)
    return (2.0 * unit - 1.0) * scale


@dataclasses.dataclass
class _RunState:
    """Mutable state accumulated while executing the program."""

    traced: Counter = dataclasses.field(default_factory=Counter)
    pseudo_files: Counter = dataclasses.field(default_factory=Counter)
    health: dict[str, bool] = dataclasses.field(default_factory=dict)
    aborted: bool = False
    abort_reason: str | None = None
    perf_factor: float = 1.0
    fd_frac: float = 0.0
    mem_frac: float = 0.0


class SimProcess:
    """Runs one simulated program under one policy."""

    def __init__(self, program: SimProgram) -> None:
        self.program = program

    # -- public ------------------------------------------------------------

    def run(
        self,
        workload: Workload,
        policy: InterpositionPolicy,
        *,
        replica: int = 0,
    ) -> RunResult:
        if not isinstance(workload, SimWorkload):
            raise BackendError(
                f"simulation backend needs a SimWorkload, got {type(workload).__name__}"
            )
        exercised = workload.features_exercised
        known = self.program.features | {"core"}
        unknown = exercised - known
        if unknown:
            raise WorkloadError(
                f"workload {workload.name!r} exercises features "
                f"{sorted(unknown)} unknown to {self.program.name}"
            )

        state = _RunState(health={feature: True for feature in known})
        for op in self.program.ops:
            if state.aborted:
                break
            if not self._op_runs(op, exercised):
                continue
            self._execute(op, policy, state, depth=0)

        success = not state.aborted and all(
            state.health[feature] for feature in exercised
        )
        failure_reason = None
        if state.aborted:
            failure_reason = state.abort_reason
        elif not success:
            broken = sorted(f for f in exercised if not state.health[f])
            failure_reason = f"broken feature(s): {', '.join(broken)}"

        profile = self.program.profile(workload.name)
        metric = None
        if workload.measures_performance and profile.metric is not None and success:
            noise = _deterministic_noise(
                self.program.name,
                workload.name,
                policy.describe(),
                str(replica),
                scale=profile.noise,
            )
            metric = profile.metric * state.perf_factor * (1.0 + noise)

        resources = ResourceUsage(
            fd_peak=max(0, round(profile.fd_peak * (1.0 + state.fd_frac))),
            mem_peak_kb=max(0, round(profile.mem_peak_kb * (1.0 + state.mem_frac))),
        )
        return RunResult(
            success=success,
            traced=state.traced,
            pseudo_files=state.pseudo_files,
            metric=metric,
            resources=resources,
            exit_code=0 if success else 1,
            failure_reason=failure_reason,
            duration_s=0.0,
        )

    # -- op execution --------------------------------------------------------

    @staticmethod
    def _op_runs(op: SyscallOp, exercised: frozenset[str]) -> bool:
        when = getattr(op, "when", None)
        if when is None:
            return True
        return bool(when & exercised)

    def _execute(
        self,
        op: SyscallOp,
        policy: InterpositionPolicy,
        state: _RunState,
        depth: int,
    ) -> None:
        if depth > _MAX_FALLBACK_DEPTH:
            state.aborted = True
            state.abort_reason = f"fallback chain too deep at {op.qualified}"
            return

        self._trace(op, state)
        action = self._action_for(op, policy)
        if action is Action.PASSTHROUGH:
            return
        if action is Action.STUB:
            self._apply_stub(op, policy, state, depth)
            return
        # FAKE
        reaction = op.on_fake
        if reaction.kind is FakeKind.AS_FAILURE:
            self._apply_stub(op, policy, state, depth)
            return
        self._apply_shift(reaction.shift, state)
        if reaction.kind is FakeKind.BREAKS_FEATURE:
            state.health[reaction.feature] = False  # type: ignore[index]
        elif reaction.kind is FakeKind.BREAKS_CORE:
            state.health["core"] = False

    def _apply_stub(
        self,
        op: SyscallOp,
        policy: InterpositionPolicy,
        state: _RunState,
        depth: int,
    ) -> None:
        reaction = op.on_stub
        self._apply_shift(reaction.shift, state)
        kind = reaction.kind
        if kind is StubKind.IGNORE or kind is StubKind.SAFE_DEFAULT:
            return
        if kind is StubKind.ABORT:
            state.aborted = True
            state.abort_reason = f"fatal: {op.qualified} failed (treated as fatal)"
            return
        if kind is StubKind.DISABLE_FEATURE:
            state.health[reaction.feature] = False  # type: ignore[index]
            return
        if kind is StubKind.FALLBACK:
            fallback_op = reaction.fallback
            assert isinstance(fallback_op, SyscallOp)
            self._execute(fallback_op, policy, state, depth + 1)
            return
        raise BackendError(f"unhandled stub reaction {kind!r}")

    @staticmethod
    def _apply_shift(shift: object, state: _RunState) -> None:
        state.perf_factor *= shift.perf_factor  # type: ignore[attr-defined]
        state.fd_frac += shift.fd_frac  # type: ignore[attr-defined]
        state.mem_frac += shift.mem_frac  # type: ignore[attr-defined]

    @staticmethod
    def _trace(op: SyscallOp, state: _RunState) -> None:
        state.traced[op.syscall] += op.count
        if op.subfeature is not None:
            state.traced[op.qualified] += op.count
        if op.path is not None and is_pseudo_path(op.path):
            state.pseudo_files[op.path] += op.count

    def _action_for(self, op: SyscallOp, policy: InterpositionPolicy) -> Action:
        if op.path is not None and is_pseudo_path(op.path):
            path_action = policy.action_for_path(op.path)
            if path_action is not Action.PASSTHROUGH:
                return path_action
        return policy.action_for(op.syscall, op.subfeature)
