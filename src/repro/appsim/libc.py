"""C standard library models: init sequences and wrapper choices.

Section 5.6 of the paper shows the libc dominates an application's
syscall footprint through (1) its initialization sequence and (2) its
choice among syscall alternatives (``write`` vs ``writev``, ``fstat``
vs ``ioctl`` TTY checks, ``openat`` vs ``open``). Table 4 gives the
exact hello-world sequences for glibc 2.28 and musl 1.2.2, dynamic and
static; Table 3 the full Nginx footprints under glibc 2.3.2 (i386) and
2.31. The models below reproduce those sequences with the paper's
invocation counts, expressed as :class:`SyscallOp` lists with realistic
failure semantics (the glibc early allocator falls back to ``mmap``
when ``brk`` fails; the dynamic loader aborts when it cannot map the
libc; musl probes the TTY with ``ioctl`` and shrugs off failure...).
"""

from __future__ import annotations

import dataclasses

from repro.appsim.behavior import (
    abort,
    as_failure,
    breaks_core,
    fallback,
    harmless,
    ignore,
)
from repro.appsim.program import Origin, Phase, SyscallOp


@dataclasses.dataclass(frozen=True)
class LibcModel:
    """One concrete libc build: vendor, version, linking mode."""

    vendor: str                 # "glibc" | "musl"
    version: str
    linking: str = "dynamic"    # "dynamic" | "static"
    #: Relative memory growth when the early allocator's ``brk`` is
    #: denied and the libc falls back to ``mmap`` (Table 2 measures
    #: +17% for Nginx, +2% for Redis, +11% for iPerf3).
    brk_fallback_mem_frac: float = 0.05

    def __post_init__(self) -> None:
        if self.vendor not in ("glibc", "musl"):
            raise ValueError(f"unknown libc vendor {self.vendor!r}")
        if self.linking not in ("dynamic", "static"):
            raise ValueError(f"unknown linking mode {self.linking!r}")

    # -- building blocks -----------------------------------------------------

    def _op(self, syscall: str, count: int = 1, **kwargs: object) -> SyscallOp:
        kwargs.setdefault("origin", Origin.LIBC)
        kwargs.setdefault("phase", Phase.INIT)
        kwargs.setdefault("checks_return", True)
        return SyscallOp(syscall=syscall, count=count, **kwargs)  # type: ignore[arg-type]

    def _brk(self, count: int) -> SyscallOp:
        # The early allocator validates the returned break address, so a
        # faked success is detected and takes the same mmap fallback
        # (AS_FAILURE). Memory grows because mmap allocates page-granular.
        mmap_fallback = self._op(
            "mmap", 1, on_stub=abort(), on_fake=breaks_core()
        )
        return self._op(
            "brk",
            count,
            on_stub=fallback(mmap_fallback, mem_frac=self.brk_fallback_mem_frac),
            on_fake=as_failure(),
        )

    def init_ops(self) -> tuple[SyscallOp, ...]:
        """The libc initialization sequence (program entry to ``main``)."""
        if self.vendor == "glibc":
            if self.linking == "dynamic":
                return self._glibc_dynamic_init()
            return self._glibc_static_init()
        if self.linking == "dynamic":
            return self._musl_dynamic_init()
        return self._musl_static_init()

    def _glibc_dynamic_init(self) -> tuple[SyscallOp, ...]:
        return (
            # The exec itself: nothing runs if it is not real.
            self._op("execve", 1, on_stub=abort(), on_fake=breaks_core()),
            self._brk(3),
            # TLS setup: a lied ARCH_SET_FS leaves %fs dangling.
            self._op(
                "arch_prctl", 1, subfeature="ARCH_SET_FS",
                on_stub=abort(), on_fake=breaks_core(),
            ),
            # ld.so debugging feature (LD_PRELOAD probing): best-effort.
            self._op("access", 1, on_stub=ignore(), on_fake=harmless()),
            # Mapping the libc: openat + read + fstat + mmap + mprotect.
            self._op("openat", 2, on_stub=abort(), on_fake=as_failure()),
            self._op("read", 1, on_stub=abort(), on_fake=breaks_core()),
            self._op("fstat", 3, on_stub=ignore(), on_fake=harmless()),
            self._op("mmap", 7, on_stub=abort(), on_fake=breaks_core()),
            # RELRO hardening: the loader treats failure as fatal, but a
            # forged success merely skips the protection (HermiTux fakes
            # mprotect this way, paper Section 2).
            self._op("mprotect", 4, on_stub=abort(), on_fake=harmless()),
            self._op("close", 2, on_stub=ignore(fd_frac=0.02), on_fake=harmless(fd_frac=0.02)),
            self._op("munmap", 1, on_stub=ignore(mem_frac=0.01), on_fake=harmless(mem_frac=0.01)),
        )

    def _glibc_static_init(self) -> tuple[SyscallOp, ...]:
        return (
            self._op("execve", 1, on_stub=abort(), on_fake=breaks_core()),
            self._op(
                "arch_prctl", 1, subfeature="ARCH_SET_FS",
                on_stub=abort(), on_fake=breaks_core(),
            ),
            self._brk(4),
            self._op("fstat", 1, on_stub=ignore(), on_fake=harmless()),
            # Kernel-version sanity check; always checked, yet stubbable
            # (Section 5.2 lists uname among the checked-but-stubbable).
            self._op("uname", 1, on_stub=ignore(), on_fake=harmless()),
            # $ORIGIN expansion for statically linked binaries.
            self._op("readlink", 1, on_stub=ignore(), on_fake=harmless()),
        )

    def _musl_dynamic_init(self) -> tuple[SyscallOp, ...]:
        return (
            self._op("execve", 1, on_stub=abort(), on_fake=breaks_core()),
            self._brk(2),
            self._op(
                "arch_prctl", 1, subfeature="ARCH_SET_FS",
                on_stub=abort(), on_fake=breaks_core(),
            ),
            # musl embeds the libc in the dynamic linker: a single mmap,
            # no openat/read dance (Section 5.6).
            self._op("mmap", 1, on_stub=abort(), on_fake=breaks_core()),
            self._op("mprotect", 2, on_stub=abort(), on_fake=harmless()),
            # TTY writability probe; failure is shrugged off.
            self._op(
                "ioctl", 1, subfeature="TCGETS",
                on_stub=ignore(), on_fake=harmless(),
            ),
            # TLS/threading bookkeeping; musl does not check the result.
            self._op(
                "set_tid_address", 1, checks_return=False,
                on_stub=ignore(), on_fake=harmless(),
            ),
        )

    def _musl_static_init(self) -> tuple[SyscallOp, ...]:
        return (
            self._op("execve", 1, on_stub=abort(), on_fake=breaks_core()),
            self._op(
                "arch_prctl", 1, subfeature="ARCH_SET_FS",
                on_stub=abort(), on_fake=breaks_core(),
            ),
            self._op(
                "ioctl", 1, subfeature="TCGETS",
                on_stub=ignore(), on_fake=harmless(),
            ),
            self._op(
                "set_tid_address", 1, checks_return=False,
                on_stub=ignore(), on_fake=harmless(),
            ),
        )

    # -- wrapper choices -------------------------------------------------------

    def stdio_write_syscall(self) -> str:
        """The syscall ``printf`` bottoms out in (Section 5.6)."""
        return "write" if self.vendor == "glibc" else "writev"

    def runtime_ops(self, *, threaded: bool = False) -> tuple[SyscallOp, ...]:
        """Post-init libc runtime calls common to long-running servers.

        Modern glibc registers robust futex lists and queries stack
        limits during startup of threaded programs; musl registers its
        thread pointer during init instead.
        """
        ops: list[SyscallOp] = [
            # Process teardown: traced in every footprint (Table 3 lists
            # exit_group for both Nginx builds), trivially avoidable.
            self._op(
                "exit_group", 1, phase=Phase.SHUTDOWN,
                checks_return=False, on_stub=ignore(), on_fake=harmless(),
            )
        ]
        if self.vendor == "glibc":
            ops.append(
                self._op(
                    "set_tid_address", 1, phase=Phase.STARTUP,
                    checks_return=False, on_stub=ignore(), on_fake=harmless(),
                )
            )
            ops.append(
                self._op(
                    "set_robust_list", 1, phase=Phase.STARTUP,
                    checks_return=False, on_stub=ignore(), on_fake=harmless(),
                )
            )
            ops.append(
                self._op(
                    "prlimit64", 1, subfeature="RLIMIT_STACK",
                    phase=Phase.STARTUP,
                    on_stub=ignore(), on_fake=harmless(),
                )
            )
        if threaded:
            ops.append(
                self._op(
                    "rt_sigprocmask", 2, phase=Phase.STARTUP,
                    on_stub=ignore(), on_fake=harmless(),
                )
            )
        return tuple(ops)


#: The concrete builds the paper measures (Tables 3 and 4).
GLIBC_228_DYNAMIC = LibcModel("glibc", "2.28", "dynamic")
GLIBC_228_STATIC = LibcModel("glibc", "2.28", "static")
MUSL_122_DYNAMIC = LibcModel("musl", "1.2.2", "dynamic")
MUSL_122_STATIC = LibcModel("musl", "1.2.2", "static")
GLIBC_231_DYNAMIC = LibcModel("glibc", "2.31", "dynamic")
