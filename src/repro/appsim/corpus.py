"""The 116-application corpus.

Fifteen cloud applications are hand-modeled from the paper's text
(:mod:`repro.appsim.apps`); the rest of the corpus is generated
deterministically from seeded templates so that the aggregate
statistics of Section 5.1 hold:

* ~180 distinct syscalls traced across the corpus (naive dynamic view),
* ~148 of them required by at least one application (Loupe view),
* the most commonly *traced* syscalls (libc init + housekeeping)
  appear in nearly every application, while required-ness thins out —
  naive analysis dominates Loupe pointwise on the importance curve
  (Figure 3).

Generation is pure: ``corpus()`` always returns the same applications,
op for op. Each synthetic app is assembled from the same building
blocks as the hand-built ones, with seeded variation in category,
libc, resilience strictness, and a long tail of rare syscalls.
"""

from __future__ import annotations

import random
from collections.abc import Callable

from repro.appsim.apps import App
from repro.appsim.apps import haproxy, lighttpd, memcached, nginx, redis, sqlite, weborf
from repro.appsim.apps import databases, misc, webservers
from repro.appsim.apps.blocks import op, with_static_views
from repro.appsim.behavior import (
    abort,
    breaks,
    breaks_core,
    disable,
    harmless,
    ignore,
    safe_default,
)
from repro.appsim.libc import LibcModel
from repro.appsim.program import Phase, SimProgram, WorkloadProfile
from repro.core.workload import benchmark, health_check, test_suite

#: Builders for the hand-modeled applications, keyed by app name.
HANDBUILT: dict[str, Callable[[], App]] = {
    "redis": redis.build,
    "nginx": nginx.build,
    "memcached": memcached.build,
    "sqlite": sqlite.build,
    "haproxy": haproxy.build,
    "lighttpd": lighttpd.build,
    "weborf": weborf.build,
    "h2o": webservers.build_h2o,
    "httpd": webservers.build_httpd,
    "webfsd": webservers.build_webfsd,
    "mongodb": databases.build_mongodb,
    "postgres": databases.build_postgres,
    "mysql": databases.build_mysql,
    "iperf3": misc.build_iperf3,
    "etcd": misc.build_etcd,
}

#: The paper's Figure 4/5 seven-app comparison set.
SEVEN_APPS = ("redis", "nginx", "memcached", "sqlite", "haproxy", "lighttpd", "weborf")

#: The 15 popular cloud applications targeted by Table 1.
CLOUD_APPS = tuple(HANDBUILT)

CORPUS_SIZE = 116

_CATEGORIES = (
    "web-server", "kv-store", "database", "proxy", "tool",
    "runtime", "message-queue",
)

#: Rare syscalls sprinkled across synthetic apps so the corpus-wide
#: traced union reaches the paper's ~180 distinct syscalls. Sized so
#: that core blocks (~110 distinct across the corpus) plus this tail
#: land near 180.
_TAIL_SYSCALLS = tuple(
    "alarm getitimer setitimer pause dup3 chown fchmod fchown "
    "mknod symlink link rmdir utime utimes truncate sync "
    "capget capset setpriority getpriority sched_setscheduler "
    "sched_setparam setreuid setregid setresuid getresuid "
    "getsid getpgid setpgid getpgrp personality getgroups times "
    "signalfd4 inotify_init1 inotify_add_watch inotify_rm_watch "
    "timer_create timer_settime timer_delete waitid "
    "splice sync_file_range preadv pwritev setxattr "
    "getxattr listxattr epoll_pwait "
    "mlock munlock mlockall msync "
    "getcpu ioprio_set unshare "
    "seccomp membarrier "
    "statx rseq semctl "
    "msgget msgsnd mq_open mq_timedsend "
    "renameat2 symlinkat linkat "
    "fchownat faccessat pselect6 ppoll "
    "sendmmsg recvmmsg syslog "
    "_sysctl restart_syscall sendfile readahead fadvise64 "
    "io_setup tkill "
    "rt_sigpending rt_sigtimedwait "
    "get_robust_list perf_event_open getdents".split()
)


def _synthetic_app(index: int) -> App:
    """Build synthetic corpus member *index* (deterministic)."""
    rng = random.Random(0xC0FFEE ^ (index * 2654435761))
    category = _CATEGORIES[index % len(_CATEGORIES)]
    name = f"app-{index:03d}"
    vendor = "musl" if rng.random() < 0.15 else "glibc"
    go_style = rng.random() < 0.08

    ops = []
    features = {"core", "extra"}
    if go_style:
        ops += [
            op("execve", 1, on_stub=abort(), on_fake=breaks_core()),
            op("arch_prctl", 1, subfeature="ARCH_SET_FS",
               on_stub=abort(), on_fake=breaks_core()),
            op("mmap", 8, on_stub=abort(), on_fake=breaks_core()),
            op("rt_sigaction", 40, on_stub=abort(), on_fake=breaks_core()),
            op("rt_sigprocmask", 12, on_stub=abort(), on_fake=breaks_core()),
            op("sigaltstack", 2, on_stub=abort(), on_fake=breaks_core()),
            op("clone", 6, on_stub=abort(), on_fake=breaks_core()),
            op("futex", 64, phase=Phase.WORKLOAD, checks_return=False,
               on_stub=abort(), on_fake=breaks_core()),
            op("gettid", 4, checks_return=False, on_stub=ignore(), on_fake=harmless()),
            op("sched_getaffinity", 1, checks_return=False,
               on_stub=ignore(), on_fake=harmless()),
            op("madvise", 2, subfeature="MADV_NOHUGEPAGE", checks_return=False,
               on_stub=ignore(), on_fake=harmless()),
        ]
    else:
        libc = LibcModel(
            vendor,
            "2.28" if vendor == "glibc" else "1.2.2",
            "dynamic",
            brk_fallback_mem_frac=round(rng.uniform(0.02, 0.12), 2),
        )
        ops += list(libc.init_ops())
        ops += list(libc.runtime_ops(threaded=rng.random() < 0.5))

    # Apps are bimodal (the Figure 2 effect): most need only the common
    # core plus avoidable extras; a hard minority validates aggressively
    # and carries most of the corpus's rare required syscalls. Greedy
    # planning exploits exactly this structure.
    hard = rng.random() < 0.45

    # Housekeeping tail: individually mostly avoidable, occasionally a
    # strict app treats one as fatal (that diversity drives Figure 3).
    strictness = rng.uniform(0.08, 0.3) if hard else 0.0

    def maybe_strict(default_stub, default_fake):
        if rng.random() < strictness:
            # Strict call sites validate results: half of them detect a
            # forged success too, making the syscall outright required.
            if rng.random() < 0.5:
                return abort(), breaks_core()
            return abort(), harmless()
        return default_stub, default_fake

    for housekeeping in (
        ("getpid", 2, False), ("getuid", 1, True), ("geteuid", 1, True),
        ("getgid", 1, False), ("umask", 1, False), ("uname", 1, True),
        ("getcwd", 1, True), ("sysinfo", 1, True), ("getrusage", 1, False),
        ("gettimeofday", 2, False), ("clock_gettime", 4, False),
        ("rt_sigaction", 6, True), ("rt_sigprocmask", 2, True),
    ):
        sysname, count, checks = housekeeping
        if go_style and sysname.startswith("rt_sig"):
            continue
        if rng.random() < 0.25:
            continue
        stub, fake = maybe_strict(ignore(), harmless())
        ops.append(
            op(sysname, count, checks_return=checks, on_stub=stub, on_fake=fake)
        )

    if rng.random() < 0.8:
        ops.append(
            op("prlimit64", 1, subfeature="RLIMIT_NOFILE",
               on_stub=safe_default(), on_fake=harmless())
        )
    if rng.random() < 0.5:
        ops.append(
            op("ioctl", 1, subfeature="TCGETS",
               on_stub=safe_default(), on_fake=harmless())
        )

    # Pseudo-file usage: entropy is common, introspection less so, and
    # a strict minority genuinely depends on what it reads.
    for path, probability in (
        ("/dev/urandom", 0.4),
        ("/proc/self/status", 0.2),
        ("/proc/meminfo", 0.15),
        ("/proc/cpuinfo", 0.1),
        ("/sys/devices/system/cpu/online", 0.1),
    ):
        if rng.random() < probability:
            strict_pseudo = hard and rng.random() < 0.2
            ops.append(
                op("openat", 1, path=path,
                   on_stub=abort() if strict_pseudo else ignore(),
                   on_fake=breaks_core() if strict_pseudo else harmless())
            )

    # Category core.
    networked = category in (
        "web-server", "kv-store", "database", "proxy", "message-queue"
    )
    if networked:
        # Easy apps follow modern conventions; hard apps pull in the
        # classic/diverse variants, widening their required sets.
        if hard:
            accept_call = rng.choice(("accept", "accept4"))
            epoll_call = rng.choice(("epoll_create", "epoll_create1"))
            recv_call = rng.choice(("read", "recvfrom", "recvmsg"))
            send_call = rng.choice(("write", "writev", "sendto", "sendmsg"))
        else:
            accept_call, epoll_call = "accept4", "epoll_create1"
            recv_call, send_call = "read", "write"
        ops += [
            op("socket", 1, on_stub=abort(), on_fake=breaks_core()),
            op("setsockopt", 2, on_stub=abort(), on_fake=breaks_core()),
            op("bind", 1, on_stub=abort(), on_fake=breaks_core()),
            op("listen", 1, on_stub=abort(), on_fake=breaks_core()),
            op(accept_call, 4, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op(epoll_call, 1, on_stub=abort(), on_fake=breaks_core()),
            op("epoll_ctl", 4, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op("epoll_wait", 8, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core()),
            op(recv_call, 16, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op(send_call, 16, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("close", 8, phase=Phase.WORKLOAD,
               on_stub=ignore(fd_frac=round(rng.uniform(0.1, 1.5), 2)),
               on_fake=harmless(fd_frac=round(rng.uniform(0.1, 1.5), 2))),
        ]
        if rng.random() < 0.8:
            ops.append(
                op("fcntl", 2, subfeature="F_SETFL",
                   on_stub=disable("core"), on_fake=breaks_core())
            )
            ops.append(
                op("fcntl", 1, subfeature="F_SETFD",
                   on_stub=ignore(), on_fake=harmless())
            )
    else:
        ops += [
            op("openat", 2, on_stub=abort(), on_fake=breaks_core()),
            op("read", 8, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("write", 8, phase=Phase.WORKLOAD,
               on_stub=disable("core"), on_fake=breaks_core()),
            op("lseek", 2, phase=Phase.WORKLOAD,
               on_stub=ignore(), on_fake=harmless()),
            op("close", 4, phase=Phase.WORKLOAD,
               on_stub=ignore(fd_frac=0.3), on_fake=harmless(fd_frac=0.3)),
            op("fstat", 2, on_stub=ignore(), on_fake=harmless()),
        ]

    # Threading for half the non-Go apps.
    if not go_style and rng.random() < 0.5:
        ops += [
            op("clone", 2, on_stub=abort(), on_fake=breaks_core()),
            op("futex", 16, phase=Phase.WORKLOAD, checks_return=False,
               on_stub=abort(), on_fake=breaks_core()),
        ]

    # JIT-style runtimes genuinely need memory protection switching.
    if category == "runtime":
        ops.append(
            op("mprotect", 4, phase=Phase.WORKLOAD,
               on_stub=abort(), on_fake=breaks_core())
        )
        ops.append(
            op("madvise", 2, subfeature="MADV_FREE", checks_return=False,
               on_stub=ignore(), on_fake=harmless())
        )

    # Suite-only feature with required file-handling ops.
    gate = frozenset({"extra"})
    suite_pool = (
        ("openat", disable("extra"), breaks("extra")),
        ("stat", ignore(), harmless()),
        ("unlink", ignore(), harmless()),
        ("rename", disable("extra"), breaks("extra")),
        ("fsync", disable("extra"), harmless()),
        ("getdents64", ignore(), harmless()),
        ("mkdir", ignore(), harmless()),
        ("pipe2", ignore(fd_frac=-0.05), harmless(fd_frac=-0.05)),
        ("fork", disable("extra"), breaks("extra")),
        ("wait4", ignore(), harmless()),
        ("kill", ignore(), harmless()),
        ("nanosleep", ignore(), harmless()),
        ("pread64", disable("extra"), breaks("extra")),
        ("pwrite64", disable("extra"), breaks("extra")),
        ("flock", ignore(), harmless()),
        ("getrandom", ignore(), harmless()),
    )
    for sysname, stub, fake in suite_pool:
        if rng.random() < 0.45:
            # A third of the drawn extras also run under benchmarks
            # (startup code paths), widening the bench-traced union.
            gated = None if rng.random() < 0.33 else gate
            ops.append(
                op(sysname, rng.randint(1, 4), feature="extra", when=gated,
                   phase=Phase.WORKLOAD, on_stub=stub, on_fake=fake)
            )

    # Long-tail syscalls: 3-9 per app, drawn deterministically. Most
    # fail soft; some apps treat a tail call as load-bearing, which is
    # how rare syscalls end up "required by at least one app".
    tail_count = rng.randint(6, 12) if hard else rng.randint(2, 5)
    start = (index * 7) % len(_TAIL_SYSCALLS)
    for offset in range(tail_count):
        sysname = _TAIL_SYSCALLS[(start + offset * 13) % len(_TAIL_SYSCALLS)]
        draw = rng.random()
        # Section 5.2: higher-numbered syscalls map to more recent,
        # generally less critical functionality — strict handling of
        # their failures is rarer than for the old core services.
        from repro.syscalls import number_of
        from repro.syscalls.categories import MODERN_THRESHOLD

        strict_cutoff = 0.30 if number_of(sysname) >= MODERN_THRESHOLD else 0.70
        if hard and draw < strict_cutoff:
            stub, fake = abort(), breaks_core()     # genuinely required here
        elif draw < strict_cutoff + 0.10:
            stub, fake = abort(), harmless()        # fake-only
        else:
            stub, fake = ignore(), harmless()       # fully avoidable
        ops.append(op(sysname, 1, checks_return=rng.random() < 0.7,
                      on_stub=stub, on_fake=fake))

    program = SimProgram(
        name=name,
        version="1.0",
        ops=tuple(ops),
        features=frozenset(features),
        profiles={
            "bench": WorkloadProfile(
                metric=float(rng.randint(5_000, 200_000)),
                fd_peak=rng.randint(8, 128),
                mem_peak_kb=rng.randint(2_048, 131_072),
            ),
            "suite": WorkloadProfile(
                metric=None,
                fd_peak=rng.randint(16, 160),
                mem_peak_kb=rng.randint(4_096, 163_840),
            ),
            "health": WorkloadProfile(metric=None, fd_peak=8, mem_peak_kb=2_048),
        },
        description=f"synthetic corpus member ({category})",
    )
    live = len(program.live_syscalls())
    program = with_static_views(
        program,
        source_total=live + rng.randint(15, 35),
        binary_total=live + rng.randint(35, 60),
    )
    workloads = {
        "health": health_check("health"),
        "bench": benchmark("bench", metric_name="ops/s"),
        "suite": test_suite("suite", features=("core", "extra")),
    }
    # Demanding applications skew old (the organic OSv history tackled
    # the big famous servers first — which is what makes Figure 2's
    # organic curve pay its heaviest costs early).
    year = rng.randint(1996, 2010) if hard else rng.randint(2006, 2020)
    return App(program=program, workloads=workloads, category=category, year=year)


def build(name: str) -> App:
    """Build one hand-modeled application by name."""
    return HANDBUILT[name]()


def cloud_apps() -> list[App]:
    """The 15 popular cloud applications (Table 1's target set)."""
    return [builder() for builder in HANDBUILT.values()]


def seven_apps() -> list[App]:
    """The Figure 4/5 seven-application comparison set."""
    return [HANDBUILT[name]() for name in SEVEN_APPS]


#: Hand-modeled apps beyond the Table 1 cloud set (corpus diversity:
#: a pipe-filter tool, a language runtime, an Erlang-style broker).
def _extra_apps() -> list[App]:
    from repro.appsim.apps import extras

    return [
        extras.build_gzip(),
        extras.build_pyruntime(),
        extras.build_rabbitmq(),
    ]


def corpus(size: int = CORPUS_SIZE) -> list[App]:
    """The full application corpus.

    Hand-built cloud apps first (so ``corpus()[:15]`` is always the
    Table 1 set), then the extra hand-built apps, then deterministic
    synthetics up to *size*.
    """
    apps = cloud_apps()
    if size > len(apps):
        apps += _extra_apps()
    index = 0
    while len(apps) < size:
        apps.append(_synthetic_app(index))
        index += 1
    return apps[:size]
