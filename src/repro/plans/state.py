"""OS support state: which syscalls an OS under development handles.

The paper's workflow: "OS developers can specify the system calls
supported by their OS in CSV form" (Section 3.1). We read and write
that format — one syscall per line, optionally with a status column
(``implemented`` / ``stubbed`` / ``faked``) — and track the three sets
as the plan executes.
"""

from __future__ import annotations

import dataclasses
import io
from collections.abc import Iterable
from pathlib import Path

from repro.errors import PlanError
from repro.syscalls import exists

_VALID_STATUSES = ("implemented", "stubbed", "faked")


@dataclasses.dataclass
class SupportState:
    """Mutable record of an OS's compatibility-layer coverage."""

    os_name: str
    implemented: set[str] = dataclasses.field(default_factory=set)
    stubbed: set[str] = dataclasses.field(default_factory=set)
    faked: set[str] = dataclasses.field(default_factory=set)

    def __post_init__(self) -> None:
        for collection in (self.implemented, self.stubbed, self.faked):
            for name in collection:
                if not exists(name):
                    raise PlanError(
                        f"{self.os_name}: unknown syscall {name!r} in support state"
                    )

    # -- queries ----------------------------------------------------------

    @property
    def implemented_frozen(self) -> frozenset[str]:
        return frozenset(self.implemented)

    def handles(self, syscall: str) -> bool:
        """True when invoking *syscall* does something deliberate."""
        return (
            syscall in self.implemented
            or syscall in self.stubbed
            or syscall in self.faked
        )

    def counts(self) -> tuple[int, int, int]:
        return len(self.implemented), len(self.stubbed), len(self.faked)

    def copy(self) -> "SupportState":
        return SupportState(
            os_name=self.os_name,
            implemented=set(self.implemented),
            stubbed=set(self.stubbed),
            faked=set(self.faked),
        )

    # -- mutation ----------------------------------------------------------

    def implement(self, syscalls: Iterable[str]) -> None:
        for name in syscalls:
            self.implemented.add(name)
            self.stubbed.discard(name)
            self.faked.discard(name)

    def stub(self, syscalls: Iterable[str]) -> None:
        for name in syscalls:
            if name not in self.implemented:
                self.stubbed.add(name)

    def fake(self, syscalls: Iterable[str]) -> None:
        for name in syscalls:
            if name not in self.implemented:
                self.faked.add(name)
                self.stubbed.discard(name)

    # -- CSV I/O -----------------------------------------------------------

    def to_csv(self) -> str:
        """Serialize as ``syscall,status`` lines (sorted, stable)."""
        buffer = io.StringIO()
        for name in sorted(self.implemented):
            buffer.write(f"{name},implemented\n")
        for name in sorted(self.stubbed):
            buffer.write(f"{name},stubbed\n")
        for name in sorted(self.faked):
            buffer.write(f"{name},faked\n")
        return buffer.getvalue()

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_csv())

    @staticmethod
    def from_csv(text: str, os_name: str = "unnamed-os") -> "SupportState":
        """Parse the CSV form; a bare syscall name means 'implemented'."""
        state = SupportState(os_name=os_name)
        for line_number, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            name, _, status = line.partition(",")
            name = name.strip()
            status = status.strip() or "implemented"
            if status not in _VALID_STATUSES:
                raise PlanError(
                    f"{os_name}: line {line_number}: unknown status {status!r}"
                )
            if not exists(name):
                raise PlanError(
                    f"{os_name}: line {line_number}: unknown syscall {name!r}"
                )
            if status == "implemented":
                state.implemented.add(name)
            elif status == "stubbed":
                state.stubbed.add(name)
            else:
                state.faked.add(name)
        return state

    @staticmethod
    def load(path: str | Path, os_name: str | None = None) -> "SupportState":
        path = Path(path)
        return SupportState.from_csv(
            path.read_text(), os_name=os_name or path.stem
        )
