"""Support-plan engine: OS feature support guidance (paper Section 4)."""

from repro.plans.effort import (
    EffortCurve,
    EffortStudy,
    loupe_curve,
    naive_curve,
    organic_curve,
    run_effort_study,
    synthesize_chronology,
)
from repro.plans.osdb import (
    OS_NAMES,
    all_states,
    calibrated_state,
    expected_initial_apps,
    table1_states,
    tiered_state,
    unsupported_apps,
)
from repro.plans.planner import PlanStep, SupportPlan, generate_plan, render_plan
from repro.plans.requirements import (
    AppRequirements,
    clear_cache,
    requirements_for,
    requirements_for_all,
)
from repro.plans.state import SupportState

__all__ = [
    "AppRequirements",
    "EffortCurve",
    "EffortStudy",
    "OS_NAMES",
    "PlanStep",
    "SupportPlan",
    "SupportState",
    "all_states",
    "calibrated_state",
    "clear_cache",
    "expected_initial_apps",
    "generate_plan",
    "loupe_curve",
    "naive_curve",
    "organic_curve",
    "render_plan",
    "requirements_for",
    "requirements_for_all",
    "run_effort_study",
    "synthesize_chronology",
    "table1_states",
    "tiered_state",
    "unsupported_apps",
]
