"""Profiles of the 11 OSes under development targeted by the paper.

The paper generates support plans for Unikraft, Google Fuchsia, Kerla,
HermiTux, gVisor, Graphene/Gramine, FreeBSD Linuxulator, Browsix, OSv,
Zephyr, and Linux nolibc. The exact historical syscall lists of those
commits are not recoverable from the paper, so each profile is
**calibrated**: its supported set is constructed from the requirement
records of the applications the paper says it initially supports, then
padded with "safe" syscalls (ones that complete no additional target
app) up to the paper's reported set size — Unikraft commit 7d6707f
supports 174 syscalls and 12 of the 15 cloud apps, Fuchsia 5d20758
supports 152 and 10 apps, Kerla 73a1873 supports 58 and 4 apps.

The remaining eight OSes have no per-commit numbers in the paper; they
are modeled as coverage tiers over the corpus-wide requirement union,
ordered by how mature their Linux compatibility is known to be.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from collections.abc import Iterable, Mapping, Sequence

from repro.plans.requirements import AppRequirements
from repro.plans.state import SupportState
from repro.syscalls import SYSCALLS_X86_64

#: (os name, target set size, initially unsupported cloud apps)
_CALIBRATED_PROFILES: dict[str, tuple[int, tuple[str, ...]]] = {
    "unikraft": (174, ("memcached", "h2o", "mongodb")),
    "fuchsia": (152, ("lighttpd", "memcached", "haproxy", "nginx", "mongodb")),
    "kerla": (
        58,
        (
            "httpd", "weborf", "sqlite", "haproxy", "redis", "lighttpd",
            "h2o", "memcached", "nginx", "webfsd", "mongodb",
        ),
    ),
}

#: Coverage tiers for the OSes without per-commit numbers in the paper.
_TIERED_PROFILES: dict[str, float] = {
    "linuxulator": 0.97,
    "gvisor": 0.93,
    "gramine": 0.85,
    "osv": 0.78,
    "hermitux": 0.70,
    "zephyr": 0.35,
    "browsix": 0.28,
    "nolibc": 0.18,
}

OS_NAMES = tuple(_CALIBRATED_PROFILES) + tuple(_TIERED_PROFILES)


def _pad_pool(
    requirements: Mapping[str, AppRequirements],
    unsupported: Iterable[str],
) -> list[str]:
    """Syscalls safe to add without completing any unsupported app.

    Ordered so padding looks like a real OS: commonly traced syscalls
    first, then the rest of the table.
    """
    blocked: set[str] = set()
    for name in unsupported:
        blocked |= requirements[name].required
    popularity: Counter = Counter()
    for record in requirements.values():
        for syscall in record.traced:
            popularity[syscall] += 1
    ranked = [s for s, _ in popularity.most_common() if s not in blocked]
    remainder = [
        s for s in sorted(SYSCALLS_X86_64.values())
        if s not in blocked and s not in ranked
    ]
    return ranked + remainder


def calibrated_state(
    os_name: str,
    requirements: Mapping[str, AppRequirements],
) -> SupportState:
    """Build one of the three Table 1 OS profiles.

    The state implements exactly the union of required syscalls of the
    apps the OS initially supports, padded up to the documented set
    size with syscalls that unlock nothing further.
    """
    size, unsupported = _CALIBRATED_PROFILES[os_name]
    supported_apps = [
        name for name in requirements if name not in unsupported
    ]
    implemented: set[str] = set()
    for name in supported_apps:
        implemented |= requirements[name].required
    # Pad with deterministic gaps: real OSes skip some popular-but-
    # avoidable syscalls (Fuchsia famously lacked set_robust_list),
    # which is what puts Stub/Fake entries into the plan steps.
    pool = _pad_pool(requirements, unsupported)
    skipped: list[str] = []
    for filler in pool:
        if len(implemented) >= size:
            break
        digest = hashlib.blake2b(
            f"{os_name}|{filler}".encode(), digest_size=2
        ).digest()
        if digest[0] % 10 < 3:
            skipped.append(filler)
            continue
        implemented.add(filler)
    for filler in skipped:
        if len(implemented) >= size:
            break
        implemented.add(filler)
    return SupportState(os_name=os_name, implemented=implemented)


def tiered_state(
    os_name: str,
    requirements: Mapping[str, AppRequirements],
) -> SupportState:
    """Build a coverage-tier profile for the non-calibrated OSes."""
    coverage = _TIERED_PROFILES[os_name]
    popularity: Counter = Counter()
    for record in requirements.values():
        for syscall in record.required:
            popularity[syscall] += 1
    ranked = [s for s, _ in popularity.most_common()]
    take = round(len(ranked) * coverage)
    return SupportState(os_name=os_name, implemented=set(ranked[:take]))


def all_states(
    requirements: Mapping[str, AppRequirements],
) -> dict[str, SupportState]:
    """Profiles for all 11 OSes, keyed by OS name."""
    states: dict[str, SupportState] = {}
    for name in _CALIBRATED_PROFILES:
        states[name] = calibrated_state(name, requirements)
    for name in _TIERED_PROFILES:
        states[name] = tiered_state(name, requirements)
    return states


def table1_states(
    requirements: Mapping[str, AppRequirements],
) -> dict[str, SupportState]:
    """The three OSes shown in the paper's Table 1."""
    return {
        name: calibrated_state(name, requirements)
        for name in _CALIBRATED_PROFILES
    }


def expected_initial_apps(os_name: str, total_apps: int = 15) -> int:
    """How many of the cloud apps the OS supports before any plan step."""
    if os_name in _CALIBRATED_PROFILES:
        return total_apps - len(_CALIBRATED_PROFILES[os_name][1])
    raise KeyError(os_name)


def unsupported_apps(os_name: str) -> Sequence[str]:
    """The calibration's initially unsupported cloud apps for *os_name*."""
    return _CALIBRATED_PROFILES[os_name][1]
