"""Incremental support-plan generation (paper Section 4.1, Table 1).

Given an OS's current support state and a set of target applications,
emit the ordered steps — implement these syscalls, stub those, fake the
others — that unlock applications as early as possible. Each step
unlocks exactly one new application; the next app chosen is always the
one with the fewest syscalls left to *implement* (stubs and fakes are
considered cheap), with ties broken by fewer stubs+fakes and then
alphabetically so plans are stable.

This greedy minimal-marginal-cost rule is what produces the paper's
signature plan shape: >80% of steps require implementing only 1-3
syscalls, and step counts track OS maturity (Unikraft 3 steps vs Kerla
11 for the same 15 apps).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Mapping, Sequence

from repro.plans.requirements import AppRequirements
from repro.plans.state import SupportState


@dataclasses.dataclass(frozen=True)
class PlanStep:
    """One step of an incremental support plan."""

    index: int
    app: str
    implement: tuple[str, ...]
    stub: tuple[str, ...]
    fake: tuple[str, ...]

    @property
    def implementation_cost(self) -> int:
        return len(self.implement)


@dataclasses.dataclass(frozen=True)
class SupportPlan:
    """A full plan: initial coverage plus ordered steps."""

    os_name: str
    initially_supported: tuple[str, ...]
    steps: tuple[PlanStep, ...]
    unsatisfiable: tuple[str, ...] = ()

    @property
    def total_implemented(self) -> int:
        return sum(step.implementation_cost for step in self.steps)

    @property
    def apps_supported(self) -> int:
        return len(self.initially_supported) + len(self.steps)

    def small_step_fraction(self, threshold: int = 3) -> float:
        """Fraction of steps implementing at most *threshold* syscalls."""
        if not self.steps:
            return 1.0
        small = sum(1 for s in self.steps if s.implementation_cost <= threshold)
        return small / len(self.steps)

    def cumulative_curve(self) -> list[tuple[int, int]]:
        """(syscalls implemented, apps supported) after each step."""
        curve = [(0, len(self.initially_supported))]
        total = 0
        for position, step in enumerate(self.steps, start=1):
            total += step.implementation_cost
            curve.append((total, len(self.initially_supported) + position))
        return curve


def _new_handles(
    state: SupportState, record: AppRequirements
) -> tuple[tuple[str, ...], tuple[str, ...], tuple[str, ...]]:
    """What must newly be implemented/stubbed/faked to unlock *record*."""
    implement = tuple(sorted(record.required - state.implemented))
    stub = tuple(
        sorted(
            s for s in record.stubbable
            if not state.handles(s) and s not in record.required
        )
    )
    fake = tuple(
        sorted(
            s for s in record.fake_only
            if not state.handles(s) and s not in record.required
        )
    )
    return implement, stub, fake


def generate_plan(
    state: SupportState,
    targets: Mapping[str, AppRequirements] | Iterable[AppRequirements],
) -> SupportPlan:
    """Generate the incremental support plan for *targets*.

    The input state is not mutated; the returned plan starts from a
    copy. Apps whose required syscalls are already covered form the
    plan's step 0 ("initially supported").
    """
    if isinstance(targets, Mapping):
        records: list[AppRequirements] = list(targets.values())
    else:
        records = list(targets)
    working = state.copy()

    initially = []
    remaining = []
    for record in sorted(records, key=lambda r: r.app):
        if record.supported_by(frozenset(working.implemented)):
            initially.append(record.app)
        else:
            remaining.append(record)

    steps: list[PlanStep] = []
    while remaining:
        best = min(
            remaining,
            key=lambda r: (
                len(r.required - working.implemented),
                len(_new_handles(working, r)[1]) + len(_new_handles(working, r)[2]),
                r.app,
            ),
        )
        implement, stub, fake = _new_handles(working, best)
        working.implement(implement)
        working.stub(stub)
        working.fake(fake)
        steps.append(
            PlanStep(
                index=len(steps) + 1,
                app=best.app,
                implement=implement,
                stub=stub,
                fake=fake,
            )
        )
        remaining.remove(best)

    return SupportPlan(
        os_name=state.os_name,
        initially_supported=tuple(initially),
        steps=tuple(steps),
    )


def render_plan(plan: SupportPlan, *, syscall_numbers: bool = True) -> str:
    """Table 1-style text rendering of a plan."""
    from repro.syscalls import number_of

    def fmt(names: Sequence[str]) -> str:
        if not names:
            return "-"
        if syscall_numbers:
            return ", ".join(str(number_of(n)) for n in names)
        return ", ".join(names)

    lines = [
        f"{plan.os_name}: step-by-step support plan",
        f"{'Step':<5} {'Implement':<28} {'Stub':<28} {'Fake':<20} Support for...",
        f"{'0':<5} {'-':<28} {'-':<28} {'-':<20} ({len(plan.initially_supported)} apps)",
    ]
    for step in plan.steps:
        lines.append(
            f"{step.index:<5} {fmt(step.implement):<28} "
            f"{fmt(step.stub):<28} {fmt(step.fake):<20} + {step.app}"
        )
    lines.append(
        f"total: {plan.total_implemented} syscalls implemented over "
        f"{len(plan.steps)} steps; "
        f"{plan.small_step_fraction():.0%} of steps implement <= 3 syscalls"
    )
    return "\n".join(lines)
