"""Per-application requirement records consumed by the planner.

A support plan only needs three facts per application (Section 4.1):
which syscalls must be **implemented**, which can be **stubbed**, and
which can only be **faked**. These come straight out of an
:class:`~repro.core.result.AnalysisResult`; this module extracts and
caches them for whole app sets.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Mapping

from repro.appsim.apps import App
from repro.core.analyzer import Analyzer, AnalyzerConfig
from repro.core.result import AnalysisResult


@dataclasses.dataclass(frozen=True)
class AppRequirements:
    """The planner's view of one analyzed application."""

    app: str
    workload: str
    required: frozenset[str]      # must implement
    stubbable: frozenset[str]     # -ENOSYS suffices
    fake_only: frozenset[str]     # success code needed, no implementation
    traced: frozenset[str]        # everything invoked (naive view)

    @staticmethod
    def from_result(result: AnalysisResult) -> "AppRequirements":
        required = result.required_syscalls()
        stubbable = result.stubbable_syscalls()
        fake_only = result.fakeable_syscalls() - stubbable
        return AppRequirements(
            app=result.app,
            workload=result.workload,
            required=required,
            stubbable=stubbable,
            fake_only=fake_only,
            traced=result.traced_syscalls(),
        )

    @property
    def avoidable(self) -> frozenset[str]:
        return self.stubbable | self.fake_only

    def supported_by(self, implemented: frozenset[str]) -> bool:
        """True when an OS implementing *implemented* can run the app."""
        return self.required <= implemented

    def missing(self, implemented: frozenset[str]) -> frozenset[str]:
        """Syscalls still to implement before the app runs."""
        return self.required - implemented


_REQUIREMENTS_CACHE: dict[tuple[str, str, str], AppRequirements] = {}


def requirements_for(
    app: App, workload_name: str = "bench", *, replicas: int = 3
) -> AppRequirements:
    """Analyze one app (memoized) and return its requirement record."""
    key = (app.name, app.version, workload_name)
    cached = _REQUIREMENTS_CACHE.get(key)
    if cached is not None:
        return cached
    analyzer = Analyzer(AnalyzerConfig(replicas=replicas))
    result = analyzer.analyze(
        app.backend(),
        app.workload(workload_name),
        app=app.name,
        app_version=app.version,
    )
    record = AppRequirements.from_result(result)
    _REQUIREMENTS_CACHE[key] = record
    return record


def requirements_for_all(
    apps: Iterable[App], workload_name: str = "bench"
) -> Mapping[str, AppRequirements]:
    """Requirement records for an app collection, keyed by app name."""
    return {app.name: requirements_for(app, workload_name) for app in apps}


def clear_cache() -> None:
    """Drop memoized analyses (used by tests that mutate app models)."""
    _REQUIREMENTS_CACHE.clear()
