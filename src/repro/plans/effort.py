"""Engineering-effort comparison (paper Section 4.2, Figure 2).

Three ways to build OSv's compatibility layer for 62 applications:

* **organic** — applications in the order OSv developers historically
  added them (we synthesize a deterministic chronology, as the paper
  reconstructs one from git folder-creation dates); developers stub and
  fake maximally, so each app costs its *required* set.
* **loupe** — the same required sets, but apps ordered by the greedy
  support planner (cheapest-first).
* **naive** — chronological order, but every *traced* syscall gets an
  implementation (no stubbing/faking — what an strace-driven process
  yields).

The paper's headline: to support half the apps (31), Loupe needs 37
implemented syscalls vs 92 organic vs 142 naive.
"""

from __future__ import annotations

import dataclasses
import random
from collections.abc import Mapping, Sequence

from repro.appsim.apps import App
from repro.plans.planner import generate_plan
from repro.plans.requirements import AppRequirements, requirements_for_all
from repro.plans.state import SupportState


@dataclasses.dataclass(frozen=True)
class EffortCurve:
    """Cumulative (syscalls implemented, apps supported) trajectory."""

    strategy: str
    points: tuple[tuple[int, int], ...]   # (cumulative syscalls, apps)

    def syscalls_for_apps(self, apps: int) -> int:
        """Implemented-syscall count at the moment *apps* are supported."""
        for syscalls, supported in self.points:
            if supported >= apps:
                return syscalls
        return self.points[-1][0]

    @property
    def final_syscalls(self) -> int:
        return self.points[-1][0]

    @property
    def final_apps(self) -> int:
        return self.points[-1][1]


def synthesize_chronology(
    apps: Sequence[App], *, seed: int = 2014, mode: str = "creation"
) -> list[App]:
    """A deterministic stand-in for the OSv-apps git folder dates.

    The paper orders apps by folder-creation date in the osv-apps
    repository; absent that history we shuffle deterministically with a
    bias toward older applications having been added earlier, which is
    how the repository actually grew.

    ``mode="last-commit"`` models the paper's robustness check ("we
    repeated the study using the date of the last commit in each
    application's folder; results were similar"): last-commit dates are
    the creation dates plus independent maintenance jitter, which
    perturbs but does not reshuffle the ordering wholesale.
    """
    if mode not in ("creation", "last-commit"):
        raise ValueError(f"unknown chronology mode {mode!r}")
    rng = random.Random(seed)
    jittered = [(app.year + rng.uniform(0, 10), app.name, app) for app in apps]
    if mode == "last-commit":
        maintenance = random.Random(seed ^ 0x5EED)
        jittered = [
            (date + maintenance.uniform(0, 4), name, app)
            for date, name, app in jittered
        ]
    return [entry[2] for entry in sorted(jittered, key=lambda e: (e[0], e[1]))]


def _ordered_curve(
    ordered: Sequence[AppRequirements],
    *,
    strategy: str,
    use_traced: bool,
) -> EffortCurve:
    implemented: set[str] = set()
    points = [(0, 0)]
    for position, record in enumerate(ordered, start=1):
        newly = (record.traced if use_traced else record.required) - implemented
        implemented |= newly
        points.append((len(implemented), position))
    return EffortCurve(strategy=strategy, points=tuple(points))


def organic_curve(
    chronological: Sequence[AppRequirements],
) -> EffortCurve:
    """Historical order, stub/fake used maximally (required sets only)."""
    return _ordered_curve(chronological, strategy="organic", use_traced=False)


def naive_curve(chronological: Sequence[AppRequirements]) -> EffortCurve:
    """Historical order, every traced syscall implemented (strace-style)."""
    return _ordered_curve(chronological, strategy="naive", use_traced=True)


def loupe_curve(
    requirements: Mapping[str, AppRequirements], os_name: str = "osv-plan"
) -> EffortCurve:
    """Greedy planner order over the same apps, required sets only."""
    plan = generate_plan(SupportState(os_name=os_name), requirements)
    # The empty OS supports nothing initially, so the plan's cumulative
    # curve is exactly the effort trajectory.
    return EffortCurve(strategy="loupe", points=tuple(plan.cumulative_curve()))


@dataclasses.dataclass(frozen=True)
class EffortStudy:
    """All three Figure 2 curves plus the headline comparison."""

    loupe: EffortCurve
    organic: EffortCurve
    naive: EffortCurve
    app_count: int

    def at_half(self) -> dict[str, int]:
        half = self.app_count // 2
        return {
            "apps": half,
            "loupe": self.loupe.syscalls_for_apps(half),
            "organic": self.organic.syscalls_for_apps(half),
            "naive": self.naive.syscalls_for_apps(half),
        }


def run_effort_study(
    apps: Sequence[App],
    *,
    workload: str = "bench",
    seed: int = 2014,
    chronology_mode: str = "creation",
) -> EffortStudy:
    """Reproduce Figure 2 over *apps* (the paper uses 62 OSv apps)."""
    requirements = requirements_for_all(apps, workload)
    chronological_apps = synthesize_chronology(
        apps, seed=seed, mode=chronology_mode
    )
    chronological = [requirements[a.name] for a in chronological_apps]
    return EffortStudy(
        loupe=loupe_curve(requirements),
        organic=organic_curve(chronological),
        naive=naive_curve(chronological),
        app_count=len(apps),
    )
