"""repro — a reproduction of Loupe (ASPLOS'24).

Loupe measures, for an application and workload, which OS features
(system calls, pseudo-files) a new OS's compatibility layer must
actually implement and which can be stubbed, faked, or partially
implemented — then turns a corpus of such measurements into incremental
support plans for OSes under development.

Package map:

* :mod:`repro.syscalls`  — Linux syscall knowledge base (x86-64 + i386)
* :mod:`repro.core`      — the Loupe analyzer and its data model
* :mod:`repro.ptracer`   — real ptrace/seccomp tracing substrate
* :mod:`repro.appsim`    — simulated application corpus substrate
* :mod:`repro.staticx`   — static analysis baselines
* :mod:`repro.plans`     — support-plan engine (Table 1 / Figure 2)
* :mod:`repro.study`     — the Section 5 studies (Figures 3-8, Tables 2-4)
* :mod:`repro.db`        — loupedb-style results database
* :mod:`repro.api`       — the programmatic front door (:class:`LoupeSession`,
  typed progress events, pluggable backend registry)
* :mod:`repro.cli`       — the ``loupe`` command-line tool
"""

from repro.core import (
    Action,
    AnalysisResult,
    Analyzer,
    AnalyzerConfig,
    Decision,
    InterpositionPolicy,
    RunResult,
    Verdict,
    analyze,
    benchmark,
    combined,
    faking,
    health_check,
    passthrough,
    stubbing,
    test_suite,
)
from repro.api.registry import (
    available_backends,
    register_backend,
    resolve_backend,
)
from repro.api.session import AnalysisRequest, LoupeSession
from repro.core.runner import BackendCapabilities, capabilities_of
from repro.report import CrossValidationReport, cross_validate

__version__ = "1.0.0"

__all__ = [
    "Action",
    "AnalysisRequest",
    "AnalysisResult",
    "Analyzer",
    "AnalyzerConfig",
    "BackendCapabilities",
    "CrossValidationReport",
    "Decision",
    "InterpositionPolicy",
    "LoupeSession",
    "RunResult",
    "Verdict",
    "__version__",
    "analyze",
    "available_backends",
    "benchmark",
    "capabilities_of",
    "combined",
    "cross_validate",
    "faking",
    "health_check",
    "passthrough",
    "register_backend",
    "resolve_backend",
    "stubbing",
    "test_suite",
]
