"""Real execution backend: live Linux processes behind the protocol.

Implements :class:`~repro.core.runner.ExecutionBackend` for
:class:`~repro.core.workload.CommandWorkload`: the application runs
under the ptrace interposition tracer, then the workload's test script
(if any) decides success, exactly like the paper's architecture
(Figure 1: B starts the app, C drives it and judges the run).

The test script contract (Section 3.2): exit code 0 means success; a
scalar on the last stdout line, when parseable, is the performance
metric.
"""

from __future__ import annotations

import dataclasses
import subprocess

from repro.core.policy import InterpositionPolicy
from repro.core.runner import BackendCapabilities, ResourceUsage, RunResult
from repro.core.workload import CommandWorkload, Workload
from repro.errors import BackendError
from repro.ptracer.ctypes_bindings import require_ptrace
from repro.ptracer.tracer import SyscallTracer


def _parse_metric(stdout: str) -> float | None:
    """Last stdout line, if it is a bare number, is the metric."""
    for line in reversed(stdout.strip().splitlines()):
        token = line.strip()
        if not token:
            continue
        try:
            return float(token)
        except ValueError:
            return None
    return None


@dataclasses.dataclass
class PtraceBackend:
    """Runs CommandWorkloads under real syscall interposition."""

    subfeature_level: bool = True
    track_pseudofiles: bool = True

    def __post_init__(self) -> None:
        self.name = "ptrace"
        # The legacy attribute spellings stay for callers that still
        # read them directly; schedulers go through capabilities(),
        # which reads back through these.
        self.deterministic = False
        self.parallel_safe = False
        self.process_safe = False
        require_ptrace()

    def capabilities(self) -> BackendCapabilities:
        """The live tracer's contract: real execution, no scheduling
        liberties.

        Live processes are not reproducible run-to-run (that is why
        the analysis replicates), so runs are never cached; overlapping
        replicas of the same live command would contend on ports and
        on-disk state, so runs stay serial; and a traced process holds
        OS handles no worker process could inherit, so runs never
        shard. What this backend *does* offer is ``real_execution`` —
        it observes the actual application on the actual kernel, which
        makes it the preferred reference of a cross-validation report —
        plus pseudo-file and sub-feature observation when the
        corresponding tracer options are on.

        Like :meth:`SimBackend.capabilities
        <repro.appsim.backend.SimBackend.capabilities>`, this reads
        through the instance attributes, so an embedder tuning a flag
        on one backend object (before handing it to a scheduler) gets
        a contract that follows.
        """
        return BackendCapabilities(
            deterministic=self.deterministic,
            parallel_safe=self.parallel_safe,
            process_safe=self.process_safe,
            supports_pseudo_files=self.track_pseudofiles,
            supports_subfeatures=self.subfeature_level,
            real_execution=True,
        )

    def run(
        self,
        workload: Workload,
        policy: InterpositionPolicy,
        *,
        replica: int = 0,
    ) -> RunResult:
        if not isinstance(workload, CommandWorkload):
            raise BackendError(
                "the ptrace backend needs a CommandWorkload, got "
                f"{type(workload).__name__}"
            )
        tracer = SyscallTracer(
            policy,
            binaries=workload.binaries,
            subfeature_level=self.subfeature_level,
            track_pseudofiles=self.track_pseudofiles,
            timeout_s=workload.timeout_s,
        )
        env = dict(workload.env) if workload.env is not None else None
        outcome = tracer.run(list(workload.argv), env)

        success = (
            not outcome.timed_out
            and outcome.exit_code == workload.expect_exit_code
        )
        metric = None
        failure_reason = None
        if outcome.timed_out:
            failure_reason = f"timed out after {workload.timeout_s}s"
        elif not success:
            failure_reason = (
                f"exit code {outcome.exit_code} "
                f"(expected {workload.expect_exit_code})"
            )

        if success and workload.test_argv is not None:
            completed = subprocess.run(
                list(workload.test_argv),
                capture_output=True,
                text=True,
                timeout=workload.timeout_s,
            )
            if completed.returncode != 0:
                success = False
                failure_reason = (
                    f"test script failed with code {completed.returncode}"
                )
            else:
                metric = _parse_metric(completed.stdout)

        return RunResult(
            success=success,
            traced=outcome.traced,
            pseudo_files=outcome.pseudo_files,
            metric=metric,
            resources=ResourceUsage(
                fd_peak=outcome.fd_peak, mem_peak_kb=outcome.mem_peak_kb
            ),
            exit_code=outcome.exit_code,
            failure_reason=failure_reason,
            duration_s=outcome.duration_s,
        )
