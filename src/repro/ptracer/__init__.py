"""Real Linux tracing substrate: ptrace interposition, seccomp-BPF
filter builder, and a minimal ELF reader."""

from repro.ptracer.backend import PtraceBackend
from repro.ptracer.ctypes_bindings import (
    ptrace_works,
    read_cstring,
    require_ptrace,
)
from repro.ptracer.elf import ElfFile, ElfSection, is_elf, parse
from repro.ptracer.frameworks import (
    ProjectSuite,
    discover_debhelper_suite,
    discover_make_suite,
    suite_workload,
    workload_for_project,
)
from repro.ptracer.seccomp_bpf import (
    SECCOMP_RET_ALLOW,
    SECCOMP_RET_KILL,
    SECCOMP_RET_TRACE,
    BpfInstruction,
    build_trace_filter,
    pack_program,
    simulate,
)
from repro.ptracer.tracer import SyscallTracer, TraceOutcome

__all__ = [
    "BpfInstruction",
    "ElfFile",
    "ElfSection",
    "ProjectSuite",
    "PtraceBackend",
    "SECCOMP_RET_ALLOW",
    "SECCOMP_RET_KILL",
    "SECCOMP_RET_TRACE",
    "SyscallTracer",
    "TraceOutcome",
    "build_trace_filter",
    "discover_debhelper_suite",
    "discover_make_suite",
    "is_elf",
    "pack_program",
    "parse",
    "ptrace_works",
    "read_cstring",
    "require_ptrace",
    "simulate",
    "suite_workload",
    "workload_for_project",
]
