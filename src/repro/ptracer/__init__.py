"""Real Linux tracing substrate: ptrace interposition, seccomp-BPF
filter builder, and a minimal ELF reader."""

from repro.ptracer.backend import PtraceBackend
from repro.ptracer.ctypes_bindings import (
    ptrace_works,
    read_cstring,
    require_ptrace,
)
from repro.ptracer.elf import ElfFile, ElfSection, is_elf, parse
from repro.ptracer.frameworks import (
    ProjectSuite,
    discover_debhelper_suite,
    discover_make_suite,
    suite_workload,
    workload_for_project,
)
from repro.ptracer.seccomp_bpf import (
    SECCOMP_RET_ALLOW,
    SECCOMP_RET_KILL,
    SECCOMP_RET_TRACE,
    BpfInstruction,
    build_trace_filter,
    pack_program,
    simulate,
)
from repro.ptracer.tracer import SyscallTracer, TraceOutcome
from repro.api.registry import (
    BackendResolutionError,
    ResolvedTarget,
    register_backend,
)


def _ptrace_backend_factory(request) -> ResolvedTarget:
    """Resolve an :class:`~repro.api.session.AnalysisRequest` to a live
    ptrace-traced command (``argv`` is the command line to run)."""
    from repro.core.workload import CommandWorkload, WorkloadKind

    if not request.argv:
        raise BackendResolutionError(
            "the ptrace backend needs a command to trace; "
            "set AnalysisRequest.argv (CLI: --exec CMD [ARG...])"
        )
    workload = CommandWorkload(
        name="cli-exec",
        kind=WorkloadKind.HEALTH_CHECK,
        argv=list(request.argv),
        timeout_s=request.timeout_s,
    )
    # PtraceBackend() probes ptrace availability at construction time,
    # so an unusable substrate fails here — at resolution — rather
    # than mid-campaign. The full command line is the target's build
    # identity: without it, two commands sharing argv[0] would collide
    # on one session-memoization/database key.
    return ResolvedTarget(
        backend=PtraceBackend(),
        workload=workload,
        app=request.argv[0],
        app_version=" ".join(request.argv),
    )


# Self-registration: importing the package makes live tracing
# reachable as ``--backend ptrace`` / ``AnalysisRequest(backend="ptrace")``.
# No replace=True: a conflicting earlier registration under this name
# should fail loudly rather than be silently clobbered (re-importing is
# harmless — identical factories re-register freely).
register_backend("ptrace", _ptrace_backend_factory)

__all__ = [
    "BpfInstruction",
    "ElfFile",
    "ElfSection",
    "ProjectSuite",
    "PtraceBackend",
    "SECCOMP_RET_ALLOW",
    "SECCOMP_RET_KILL",
    "SECCOMP_RET_TRACE",
    "SyscallTracer",
    "TraceOutcome",
    "build_trace_filter",
    "discover_debhelper_suite",
    "discover_make_suite",
    "is_elf",
    "pack_program",
    "parse",
    "ptrace_works",
    "read_cstring",
    "require_ptrace",
    "simulate",
    "suite_workload",
    "workload_for_project",
]
