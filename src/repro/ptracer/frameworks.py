"""Testing-framework integration (paper Section 3.3).

Test suites are awkward for dynamic analysis: they start the
application repeatedly, from wrapper scripts, alongside helper tools
whose syscalls must not be attributed to the application (the paper's
example: the Ruby suite shelling out to git). Loupe solves this with a
binary whitelist plus direct integration with build systems —
``make test`` and Debian's debhelper ``dh_auto_test``.

This module reproduces those integrations: given a project directory,
it discovers how to run the suite and builds a
:class:`~repro.core.workload.CommandWorkload` with the right argv and
whitelist, ready for the ptrace backend.
"""

from __future__ import annotations

import dataclasses
import re
import stat
from pathlib import Path

from repro.core.workload import CommandWorkload, WorkloadKind
from repro.errors import WorkloadError

#: Makefile targets probed for a test entry point, in priority order.
MAKE_TEST_TARGETS = ("test", "check")


@dataclasses.dataclass(frozen=True)
class ProjectSuite:
    """A discovered way to run a project's test suite."""

    project: str
    runner: tuple[str, ...]          # e.g. ("make", "-C", dir, "test")
    binaries: frozenset[str]         # whitelist: the project's own binaries
    source: str                      # "makefile" | "debhelper"


def _makefile_targets(makefile: Path) -> set[str]:
    targets = set()
    pattern = re.compile(r"^([A-Za-z0-9_.-]+)\s*:")
    for line in makefile.read_text(errors="replace").splitlines():
        match = pattern.match(line)
        if match:
            targets.add(match.group(1))
    return targets


def _executables_in(directory: Path) -> frozenset[str]:
    """Project-built executables: the whitelist candidates."""
    found = set()
    for path in directory.rglob("*"):
        if not path.is_file():
            continue
        mode = path.stat().st_mode
        if not (mode & stat.S_IXUSR):
            continue
        with open(path, "rb") as handle:
            if handle.read(4) == b"\x7fELF":
                found.add(str(path.resolve()))
    return frozenset(found)


def discover_make_suite(project_dir: str | Path) -> ProjectSuite:
    """Discover a ``make test``/``make check`` suite in *project_dir*."""
    directory = Path(project_dir)
    makefile = directory / "Makefile"
    if not makefile.is_file():
        raise WorkloadError(f"{directory}: no Makefile")
    targets = _makefile_targets(makefile)
    for target in MAKE_TEST_TARGETS:
        if target in targets:
            return ProjectSuite(
                project=directory.name,
                runner=("make", "-C", str(directory), target),
                binaries=_executables_in(directory),
                source="makefile",
            )
    raise WorkloadError(
        f"{directory}: Makefile has no test target "
        f"(looked for {', '.join(MAKE_TEST_TARGETS)})"
    )


def discover_debhelper_suite(package_dir: str | Path) -> ProjectSuite:
    """Discover a debhelper-built package's ``dh_auto_test`` hook.

    Mirrors the paper's Debian integration: the package's
    ``debian/rules`` drives the build, and ``dh_auto_test`` runs the
    upstream suite; the package's built binaries form the whitelist.
    """
    directory = Path(package_dir)
    rules = directory / "debian" / "rules"
    if not rules.is_file():
        raise WorkloadError(f"{directory}: no debian/rules — not a package")
    return ProjectSuite(
        project=directory.name,
        runner=("make", "-f", str(rules), "dh_auto_test"),
        binaries=_executables_in(directory),
        source="debhelper",
    )


def suite_workload(
    suite: ProjectSuite, *, timeout_s: float = 600.0
) -> CommandWorkload:
    """The traced workload for a discovered suite.

    Only syscalls from the whitelisted binaries count: make, shells and
    helper tools are supervised but excluded from the analysis, exactly
    like the paper's unmodified `make test` runs.
    """
    return CommandWorkload(
        name=f"{suite.project}-suite",
        kind=WorkloadKind.TEST_SUITE,
        argv=suite.runner,
        binaries=suite.binaries,
        timeout_s=timeout_s,
    )


def workload_for_project(
    project_dir: str | Path, *, timeout_s: float = 600.0
) -> CommandWorkload:
    """One-call integration: debhelper package or Makefile project."""
    directory = Path(project_dir)
    if (directory / "debian" / "rules").is_file():
        suite = discover_debhelper_suite(directory)
    else:
        suite = discover_make_suite(directory)
    return suite_workload(suite, timeout_s=timeout_s)
