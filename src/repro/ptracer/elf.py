"""Minimal ELF64 reader.

Two consumers: the static binary analyzer (extracting executable
sections to scan for ``syscall`` instructions) and the tracing
backend's binary whitelist (identifying what a path actually is).
Only the small slice of the format we need is implemented — header,
section table, section payloads — but it is implemented properly,
with validation and helpful errors.
"""

from __future__ import annotations

import dataclasses
import struct
from pathlib import Path

from repro.errors import ElfFormatError

ELF_MAGIC = b"\x7fELF"
ELFCLASS64 = 2
ELFDATA2LSB = 1
EM_X86_64 = 62
EM_386 = 3

ET_EXEC = 2
ET_DYN = 3

SHF_EXECINSTR = 0x4

_EHDR = struct.Struct("<16sHHIQQQIHHHHHH")
_SHDR = struct.Struct("<IIQQQQIIQQ")


@dataclasses.dataclass(frozen=True)
class ElfSection:
    """One section: name, flags, and raw payload."""

    name: str
    sh_type: int
    flags: int
    addr: int
    offset: int
    size: int
    data: bytes

    @property
    def executable(self) -> bool:
        return bool(self.flags & SHF_EXECINSTR)


@dataclasses.dataclass(frozen=True)
class ElfFile:
    """A parsed 64-bit little-endian ELF object."""

    path: str
    machine: int
    elf_type: int
    sections: tuple[ElfSection, ...]

    @property
    def is_x86_64(self) -> bool:
        return self.machine == EM_X86_64

    def executable_sections(self) -> tuple[ElfSection, ...]:
        return tuple(s for s in self.sections if s.executable and s.size)

    def section(self, name: str) -> ElfSection:
        for candidate in self.sections:
            if candidate.name == name:
                return candidate
        raise ElfFormatError(f"{self.path}: no section {name!r}")


def parse(path: str | Path) -> ElfFile:
    """Parse the ELF file at *path*; raises :class:`ElfFormatError`."""
    path = Path(path)
    blob = path.read_bytes()
    if len(blob) < _EHDR.size or blob[:4] != ELF_MAGIC:
        raise ElfFormatError(f"{path}: not an ELF file")
    ident = blob[:16]
    if ident[4] != ELFCLASS64:
        raise ElfFormatError(f"{path}: only 64-bit ELF is supported")
    if ident[5] != ELFDATA2LSB:
        raise ElfFormatError(f"{path}: only little-endian ELF is supported")

    (
        _e_ident, e_type, e_machine, _e_version, _e_entry, _e_phoff,
        e_shoff, _e_flags, _e_ehsize, _e_phentsize, _e_phnum,
        e_shentsize, e_shnum, e_shstrndx,
    ) = _EHDR.unpack_from(blob, 0)

    if e_shoff == 0 or e_shnum == 0:
        return ElfFile(str(path), e_machine, e_type, ())
    if e_shentsize != _SHDR.size:
        raise ElfFormatError(f"{path}: unexpected section header size")
    if e_shoff + e_shnum * e_shentsize > len(blob):
        raise ElfFormatError(f"{path}: section table out of bounds")

    raw_headers = []
    for index in range(e_shnum):
        fields = _SHDR.unpack_from(blob, e_shoff + index * e_shentsize)
        raw_headers.append(fields)

    if e_shstrndx >= len(raw_headers):
        raise ElfFormatError(f"{path}: bad section-name string table index")
    str_offset = raw_headers[e_shstrndx][4]
    str_size = raw_headers[e_shstrndx][5]
    if str_offset + str_size > len(blob):
        raise ElfFormatError(f"{path}: string table out of bounds")
    string_table = blob[str_offset:str_offset + str_size]

    def section_name(name_offset: int) -> str:
        end = string_table.find(b"\x00", name_offset)
        if end == -1:
            return ""
        return string_table[name_offset:end].decode("ascii", errors="replace")

    SHT_NOBITS = 8
    sections = []
    for fields in raw_headers:
        (
            sh_name, sh_type, sh_flags, sh_addr, sh_offset,
            sh_size, _sh_link, _sh_info, _sh_addralign, _sh_entsize,
        ) = fields
        if sh_type == SHT_NOBITS:
            data = b""
        else:
            if sh_offset + sh_size > len(blob):
                raise ElfFormatError(f"{path}: section payload out of bounds")
            data = blob[sh_offset:sh_offset + sh_size]
        sections.append(
            ElfSection(
                name=section_name(sh_name),
                sh_type=sh_type,
                flags=sh_flags,
                addr=sh_addr,
                offset=sh_offset,
                size=sh_size,
                data=data,
            )
        )
    return ElfFile(str(path), e_machine, e_type, tuple(sections))


def is_elf(path: str | Path) -> bool:
    """Cheap check: does *path* start with the ELF magic?"""
    try:
        with open(path, "rb") as handle:
            return handle.read(4) == ELF_MAGIC
    except OSError:
        return False
