"""Raw ptrace bindings for x86-64 Linux via ctypes.

The paper implements its interposition hooks in ~500 LoC of C on top of
seccomp and ptrace; this module is the Python equivalent of that layer.
Everything here is a thin, faithful mapping of ``<sys/ptrace.h>`` — no
policy, no interpretation.
"""

from __future__ import annotations

import ctypes
import ctypes.util
import os

from repro.errors import PtraceUnavailableError

# -- ptrace requests (x86-64 numbering) --------------------------------------

PTRACE_TRACEME = 0
PTRACE_PEEKDATA = 2
PTRACE_POKEDATA = 5
PTRACE_CONT = 7
PTRACE_KILL = 8
PTRACE_GETREGS = 12
PTRACE_SETREGS = 13
PTRACE_ATTACH = 16
PTRACE_DETACH = 17
PTRACE_SYSCALL = 24
PTRACE_SETOPTIONS = 0x4200

# -- ptrace event options ------------------------------------------------------

PTRACE_O_TRACESYSGOOD = 0x00000001
PTRACE_O_TRACEFORK = 0x00000002
PTRACE_O_TRACEVFORK = 0x00000004
PTRACE_O_TRACECLONE = 0x00000008
PTRACE_O_TRACEEXEC = 0x00000010
PTRACE_O_EXITKILL = 0x00100000
PTRACE_O_TRACESECCOMP = 0x00000080

PTRACE_EVENT_FORK = 1
PTRACE_EVENT_VFORK = 2
PTRACE_EVENT_CLONE = 3
PTRACE_EVENT_EXEC = 4
PTRACE_EVENT_SECCOMP = 7

#: Written into ``orig_rax`` to make the kernel skip the current
#: syscall; the subsequent exit stop then lets us forge ``rax``.
SKIP_SYSCALL = ctypes.c_ulonglong(-1).value

#: ``-ENOSYS`` as an unsigned 64-bit register value.
ENOSYS = 38
NEG_ENOSYS = ctypes.c_ulonglong(-ENOSYS).value


class UserRegs(ctypes.Structure):
    """``struct user_regs_struct`` for x86-64 (``<sys/user.h>``)."""

    _fields_ = [
        (name, ctypes.c_ulonglong)
        for name in (
            "r15", "r14", "r13", "r12", "rbp", "rbx", "r11", "r10",
            "r9", "r8", "rax", "rcx", "rdx", "rsi", "rdi", "orig_rax",
            "rip", "cs", "eflags", "rsp", "ss", "fs_base", "gs_base",
            "ds", "es", "fs", "gs",
        )
    ]

    #: Argument registers in syscall-ABI order.
    ARG_REGISTERS = ("rdi", "rsi", "rdx", "r10", "r8", "r9")

    def syscall_args(self) -> tuple[int, ...]:
        return tuple(getattr(self, reg) for reg in self.ARG_REGISTERS)


_libc = ctypes.CDLL(None, use_errno=True)
_libc.ptrace.restype = ctypes.c_long
_libc.ptrace.argtypes = (
    ctypes.c_long, ctypes.c_long, ctypes.c_void_p, ctypes.c_void_p,
)


def ptrace(request: int, pid: int, addr: int = 0, data: int = 0) -> int:
    """Invoke ptrace(2); raises OSError on failure (except PEEKDATA -1)."""
    ctypes.set_errno(0)
    result = _libc.ptrace(request, pid, addr, data)
    if result == -1:
        errno = ctypes.get_errno()
        if errno != 0:
            raise OSError(errno, os.strerror(errno), f"ptrace({request}, {pid})")
    return result


def traceme() -> None:
    """Called in the child before exec: request tracing by the parent."""
    ptrace(PTRACE_TRACEME, 0)


def get_regs(pid: int) -> UserRegs:
    regs = UserRegs()
    ctypes.set_errno(0)
    result = _libc.ptrace(PTRACE_GETREGS, pid, 0, ctypes.byref(regs))
    if result == -1 and ctypes.get_errno() != 0:
        errno = ctypes.get_errno()
        raise OSError(errno, os.strerror(errno), f"PTRACE_GETREGS({pid})")
    return regs


def set_regs(pid: int, regs: UserRegs) -> None:
    ctypes.set_errno(0)
    result = _libc.ptrace(PTRACE_SETREGS, pid, 0, ctypes.byref(regs))
    if result == -1 and ctypes.get_errno() != 0:
        errno = ctypes.get_errno()
        raise OSError(errno, os.strerror(errno), f"PTRACE_SETREGS({pid})")


def read_cstring(pid: int, address: int, limit: int = 4096) -> str:
    """Read a NUL-terminated string from the tracee's memory."""
    if address == 0:
        return ""
    chunks = []
    offset = 0
    while offset < limit:
        try:
            word = ptrace(PTRACE_PEEKDATA, pid, address + offset)
        except OSError:
            break
        raw = (word & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
        if b"\x00" in raw:
            chunks.append(raw.split(b"\x00", 1)[0])
            break
        chunks.append(raw)
        offset += 8
    return b"".join(chunks).decode("utf-8", errors="replace")


def ptrace_works() -> bool:
    """Probe whether this environment permits ptrace at all.

    Some sandboxes deny ptrace via seccomp or Yama; tests skip the real
    backend there instead of failing.
    """
    pid = os.fork()
    if pid == 0:
        try:
            traceme()
        except OSError:
            os._exit(13)
        os._exit(0)
    _, status = os.waitpid(pid, 0)
    if os.WIFEXITED(status):
        return os.WEXITSTATUS(status) == 0
    if os.WIFSTOPPED(status):
        # TRACEME succeeded and exit triggered a trace stop.
        try:
            ptrace(PTRACE_KILL, pid)
        except OSError:
            pass
        try:
            os.waitpid(pid, 0)
        except ChildProcessError:
            pass
        return True
    return False


def require_ptrace() -> None:
    """Raise :class:`PtraceUnavailableError` unless ptrace is usable."""
    if not ptrace_works():
        raise PtraceUnavailableError(
            "this environment denies ptrace(2); the real tracing backend "
            "is unavailable (simulation backend remains fully functional)"
        )
