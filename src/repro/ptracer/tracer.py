"""The syscall-interposition tracer (paper Section 3.1, points A/B/D).

Runs a command under ``PTRACE_SYSCALL`` supervision and applies an
:class:`~repro.core.policy.InterpositionPolicy` to every system call
the process (and, with follow-children, its descendants) makes:

* **trace** — record (syscall, sub-feature, path argument) occurrences;
* **stub**  — rewrite ``orig_rax`` to an invalid number at syscall
  entry so the kernel executes nothing, then write ``-ENOSYS`` into
  ``rax`` at the exit stop;
* **fake**  — same skip, but forge a syscall-specific success value
  (0, the requested length, the requested break address...).

Binary whitelisting (Section 3.3) is honored at ``execve`` boundaries:
children running non-whitelisted binaries are still supervised (their
stubs/fakes are not applied, to avoid corrupting helper tools) and
their syscalls are excluded from the trace, exactly like Loupe
ignoring ``git`` invocations inside the Ruby test suite.

Resource usage (peak RSS via ``/proc/<pid>/status`` VmHWM, peak open
descriptors via ``/proc/<pid>/fd``) is sampled at syscall stops,
mirroring the paper's /proc-based measurements (point D in Figure 1).
"""

from __future__ import annotations

import dataclasses
import errno as errno_module
import os
import signal
import time
from collections import Counter

from repro.core.policy import Action, FakeStrategy, InterpositionPolicy, fake_strategy
from repro.core.pseudofiles import OPEN_FAMILY, is_pseudo_path
from repro.errors import TraceeError
from repro.ptracer.ctypes_bindings import (
    NEG_ENOSYS,
    PTRACE_CONT,
    PTRACE_EVENT_CLONE,
    PTRACE_EVENT_EXEC,
    PTRACE_EVENT_FORK,
    PTRACE_EVENT_VFORK,
    PTRACE_KILL,
    PTRACE_O_EXITKILL,
    PTRACE_O_TRACECLONE,
    PTRACE_O_TRACEEXEC,
    PTRACE_O_TRACEFORK,
    PTRACE_O_TRACESYSGOOD,
    PTRACE_O_TRACEVFORK,
    PTRACE_SETOPTIONS,
    PTRACE_SYSCALL,
    SKIP_SYSCALL,
    UserRegs,
    get_regs,
    ptrace,
    read_cstring,
    set_regs,
    traceme,
)
from repro.syscalls import TABLE_X86_64, decode

_TRACE_OPTIONS = (
    PTRACE_O_TRACESYSGOOD
    | PTRACE_O_TRACEFORK
    | PTRACE_O_TRACEVFORK
    | PTRACE_O_TRACECLONE
    | PTRACE_O_TRACEEXEC
    | PTRACE_O_EXITKILL
)

_SYSCALL_STOP = signal.SIGTRAP | 0x80

#: The path-argument register index for open-family syscalls.
_PATH_ARG_INDEX = {
    "open": 0, "creat": 0, "stat": 0, "lstat": 0, "access": 0,
    "readlink": 0, "statx": 1, "openat": 1, "openat2": 1,
    "faccessat": 1, "faccessat2": 1, "readlinkat": 1,
}


@dataclasses.dataclass
class TraceOutcome:
    """Raw result of one traced execution."""

    exit_code: int
    traced: Counter                  # qualified feature -> count
    pseudo_files: Counter            # path -> count
    fd_peak: int
    mem_peak_kb: int
    duration_s: float
    timed_out: bool = False
    term_signal: int | None = None


@dataclasses.dataclass
class _PidState:
    in_syscall: bool = False
    skipped_number: int | None = None
    skipped_args: tuple[int, ...] = ()
    pending_action: Action = Action.STUB
    whitelisted: bool = True


class SyscallTracer:
    """Trace one command tree under an interposition policy."""

    def __init__(
        self,
        policy: InterpositionPolicy,
        *,
        binaries: frozenset[str] = frozenset(),
        subfeature_level: bool = True,
        track_pseudofiles: bool = True,
        timeout_s: float = 120.0,
        sample_every: int = 16,
    ) -> None:
        self.policy = policy
        self.binaries = binaries
        self.subfeature_level = subfeature_level
        self.track_pseudofiles = track_pseudofiles
        self.timeout_s = timeout_s
        self.sample_every = sample_every

    # -- public -----------------------------------------------------------

    def run(self, argv: "list[str]", env: "dict[str, str] | None" = None) -> TraceOutcome:
        """Execute *argv* under trace and return the raw outcome."""
        started = time.monotonic()
        child = os.fork()
        if child == 0:
            self._child(argv, env)
            os._exit(127)  # not reached

        outcome = TraceOutcome(
            exit_code=-1,
            traced=Counter(),
            pseudo_files=Counter(),
            fd_peak=0,
            mem_peak_kb=0,
            duration_s=0.0,
        )
        try:
            self._supervise(child, outcome, started)
        finally:
            outcome.duration_s = time.monotonic() - started
        return outcome

    # -- child side ----------------------------------------------------------

    @staticmethod
    def _child(argv: "list[str]", env: "dict[str, str] | None") -> None:
        try:
            traceme()
            # The exec below delivers the first trace stop to the parent.
            if env is None:
                os.execvp(argv[0], argv)
            else:
                os.execvpe(argv[0], argv, env)
        except OSError:
            os._exit(127)

    # -- parent side -----------------------------------------------------------

    def _supervise(self, root: int, outcome: TraceOutcome, started: float) -> None:
        states: dict[int, _PidState] = {}
        stops = 0

        # First stop: exec of the root child. The execve itself happened
        # before syscall tracing could observe its entry, so account for
        # it here — the process exists only because execve succeeded.
        pid, status = os.waitpid(root, 0)
        if not os.WIFSTOPPED(status):
            raise TraceeError("tracee vanished before its first stop")
        ptrace(PTRACE_SETOPTIONS, root, 0, _TRACE_OPTIONS)
        states[root] = _PidState(whitelisted=self._is_whitelisted(root))
        if states[root].whitelisted:
            outcome.traced["execve"] += 1
        ptrace(PTRACE_SYSCALL, root, 0, 0)

        while states:
            if time.monotonic() - started > self.timeout_s:
                outcome.timed_out = True
                self._kill_all(states)
                break
            try:
                pid, status = os.waitpid(-1, 0)
            except ChildProcessError:
                break
            if pid not in states:
                states[pid] = _PidState()

            if os.WIFEXITED(status):
                if pid == root:
                    outcome.exit_code = os.WEXITSTATUS(status)
                del states[pid]
                continue
            if os.WIFSIGNALED(status):
                if pid == root:
                    outcome.exit_code = 128 + os.WTERMSIG(status)
                    outcome.term_signal = os.WTERMSIG(status)
                del states[pid]
                continue
            if not os.WIFSTOPPED(status):
                continue

            stop_signal = os.WSTOPSIG(status)
            event = status >> 16
            deliver = 0
            if stop_signal == _SYSCALL_STOP:
                stops += 1
                if stops % self.sample_every == 0:
                    self._sample_resources(root, outcome)
                self._on_syscall_stop(pid, states[pid], outcome)
            elif event in (
                PTRACE_EVENT_FORK, PTRACE_EVENT_VFORK, PTRACE_EVENT_CLONE
            ):
                # The new child inherits supervision; its own first stop
                # registers it in `states`.
                pass
            elif event == PTRACE_EVENT_EXEC:
                states[pid] = _PidState(
                    whitelisted=self._is_whitelisted(pid)
                )
            elif stop_signal != signal.SIGTRAP:
                deliver = stop_signal
            try:
                ptrace(PTRACE_SYSCALL, pid, 0, deliver)
            except OSError:
                states.pop(pid, None)

    def _kill_all(self, states: "dict[int, _PidState]") -> None:
        for pid in list(states):
            try:
                ptrace(PTRACE_KILL, pid)
            except OSError:
                pass
            try:
                os.kill(pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
        deadline = time.monotonic() + 2.0
        while states and time.monotonic() < deadline:
            try:
                pid, _status = os.waitpid(-1, os.WNOHANG)
            except ChildProcessError:
                break
            if pid:
                states.pop(pid, None)
            else:
                time.sleep(0.01)
        states.clear()

    # -- syscall handling ----------------------------------------------------------

    def _on_syscall_stop(
        self, pid: int, state: _PidState, outcome: TraceOutcome
    ) -> None:
        try:
            regs = get_regs(pid)
        except OSError:
            return
        if not state.in_syscall:
            state.in_syscall = True
            self._on_entry(pid, state, regs, outcome)
        else:
            state.in_syscall = False
            self._on_exit(pid, state, regs)

    def _on_entry(
        self, pid: int, state: _PidState, regs: UserRegs, outcome: TraceOutcome
    ) -> None:
        number = regs.orig_rax
        if number == SKIP_SYSCALL:
            return
        name = TABLE_X86_64.by_number.get(int(number))
        if name is None:
            return
        if not state.whitelisted:
            return

        args = regs.syscall_args()
        subfeature = None
        if self.subfeature_level:
            sub = decode(name, args[self._selector_index(name)]) if self._selector_index(name) is not None else None
            if sub is not None:
                subfeature = sub.name

        outcome.traced[name] += 1
        if subfeature is not None:
            outcome.traced[f"{name}:{subfeature}"] += 1

        path = None
        if self.track_pseudofiles and name in OPEN_FAMILY:
            index = _PATH_ARG_INDEX.get(name)
            if index is not None:
                path = read_cstring(pid, args[index], limit=512)
                if path and is_pseudo_path(path):
                    outcome.pseudo_files[path] += 1

        action = self._action(name, subfeature, path)
        if action is Action.PASSTHROUGH:
            return
        # Make the kernel skip the call; remember what we skipped so
        # the exit stop can forge the right return value.
        state.skipped_number = int(number)
        state.skipped_args = args
        state.pending_action = action
        regs.orig_rax = SKIP_SYSCALL
        set_regs(pid, regs)

    def _on_exit(self, pid: int, state: _PidState, regs: UserRegs) -> None:
        if state.skipped_number is None:
            return
        action = state.pending_action
        name = TABLE_X86_64.by_number.get(state.skipped_number, "")
        if action is Action.STUB:
            regs.rax = NEG_ENOSYS
        else:
            regs.rax = self._fake_value(name, state.skipped_args)
        set_regs(pid, regs)
        state.skipped_number = None
        state.skipped_args = ()

    @staticmethod
    def _selector_index(name: str) -> "int | None":
        from repro.syscalls.subfeatures import VECTORED_SYSCALLS

        vectored = VECTORED_SYSCALLS.get(name)
        if vectored is None:
            return None
        return vectored.selector_arg

    def _action(
        self, name: str, subfeature: "str | None", path: "str | None"
    ) -> Action:
        if path is not None and is_pseudo_path(path):
            path_action = self.policy.action_for_path(path)
            if path_action is not Action.PASSTHROUGH:
                return path_action
        return self.policy.action_for(name, subfeature)

    @staticmethod
    def _fake_value(name: str, args: tuple[int, ...]) -> int:
        strategy = fake_strategy(name)
        if strategy is FakeStrategy.FIRST_ARG and args:
            return args[0]
        if strategy is FakeStrategy.LENGTH_ARG3 and len(args) >= 3:
            return args[2]
        if strategy is FakeStrategy.FAKE_FD:
            return 1022  # plausibly-valid, plausibly-unused descriptor
        if strategy is FakeStrategy.FAKE_PID:
            return 4242
        return 0

    # -- whitelist and resources ------------------------------------------------------

    def _is_whitelisted(self, pid: int) -> bool:
        if not self.binaries:
            return True
        try:
            exe = os.readlink(f"/proc/{pid}/exe")
        except OSError:
            return True
        return exe in self.binaries or os.path.basename(exe) in {
            os.path.basename(b) for b in self.binaries
        }

    @staticmethod
    def _sample_resources(pid: int, outcome: TraceOutcome) -> None:
        try:
            with open(f"/proc/{pid}/status") as status_file:
                for line in status_file:
                    if line.startswith("VmHWM:"):
                        kb = int(line.split()[1])
                        outcome.mem_peak_kb = max(outcome.mem_peak_kb, kb)
                        break
        except OSError:
            pass
        try:
            fd_count = len(os.listdir(f"/proc/{pid}/fd"))
            outcome.fd_peak = max(outcome.fd_peak, fd_count)
        except OSError:
            pass
