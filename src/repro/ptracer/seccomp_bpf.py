"""Classic-BPF filter builder for seccomp-assisted tracing.

The paper's Loupe pairs ptrace with seccomp: a BPF filter makes the
kernel raise a ptrace event only for the syscalls under interposition,
so untouched syscalls run at full speed. This module assembles exactly
that filter program — ``SECCOMP_RET_TRACE`` for the listed syscall
numbers, ``SECCOMP_RET_ALLOW`` for everything else — as raw bytes that
``seccomp(2)``/``prctl(2)`` accept.

The builder is fully functional and unit-tested as a pure function
(instruction encoding, jump offsets, architecture guard). Installing
the filter requires ``no_new_privs`` and affects the whole process, so
the tracing backend uses the pure-ptrace path by default and treats
seccomp acceleration as an opt-in; semantics are identical either way
(see DESIGN.md, substitution table).
"""

from __future__ import annotations

import dataclasses
import struct
from collections.abc import Iterable, Sequence

# -- BPF instruction set (the subset classic seccomp filters use) -----------

BPF_LD = 0x00
BPF_JMP = 0x05
BPF_RET = 0x06
BPF_W = 0x00
BPF_ABS = 0x20
BPF_JEQ = 0x10
BPF_K = 0x00

SECCOMP_RET_ALLOW = 0x7FFF0000
SECCOMP_RET_TRACE = 0x7FF00000
SECCOMP_RET_KILL = 0x00000000

#: Offsets into ``struct seccomp_data``.
SECCOMP_DATA_NR = 0
SECCOMP_DATA_ARCH = 4

AUDIT_ARCH_X86_64 = 0xC000003E

_INSTRUCTION = struct.Struct("<HBBI")


@dataclasses.dataclass(frozen=True)
class BpfInstruction:
    """One ``struct sock_filter``."""

    code: int
    jt: int
    jf: int
    k: int

    def pack(self) -> bytes:
        return _INSTRUCTION.pack(self.code, self.jt, self.jf, self.k)


def load_word(offset: int) -> BpfInstruction:
    return BpfInstruction(BPF_LD | BPF_W | BPF_ABS, 0, 0, offset)


def jump_eq(value: int, jt: int, jf: int) -> BpfInstruction:
    return BpfInstruction(BPF_JMP | BPF_JEQ | BPF_K, jt, jf, value)


def ret(value: int) -> BpfInstruction:
    return BpfInstruction(BPF_RET | BPF_K, 0, 0, value)


def build_trace_filter(
    traced_numbers: Iterable[int], *, kill_on_wrong_arch: bool = True
) -> list[BpfInstruction]:
    """Build the filter: TRACE listed syscalls, ALLOW the rest.

    Layout::

        ld  arch
        jeq AUDIT_ARCH_X86_64 ? +1 : KILL/ALLOW
        ld  nr
        jeq nr_0 -> TRACE
        jeq nr_1 -> TRACE
        ...
        ret ALLOW
        ret TRACE
        [ret KILL]
    """
    numbers = sorted(set(int(n) for n in traced_numbers))
    program: list[BpfInstruction] = []
    program.append(load_word(SECCOMP_DATA_ARCH))
    # Jump offsets are relative to the *next* instruction. On arch
    # mismatch, jump to the trailing KILL (index 3+N+2) or, when kill
    # is disabled, to RET ALLOW (index 3+N); this jeq sits at index 1.
    if kill_on_wrong_arch:
        program.append(jump_eq(AUDIT_ARCH_X86_64, 0, len(numbers) + 3))
    else:
        program.append(jump_eq(AUDIT_ARCH_X86_64, 0, len(numbers) + 1))
    program.append(load_word(SECCOMP_DATA_NR))
    for position, number in enumerate(numbers):
        # Jump straight to the shared RET TRACE at the end.
        remaining = len(numbers) - position - 1
        program.append(jump_eq(number, remaining + 1, 0))
    program.append(ret(SECCOMP_RET_ALLOW))
    program.append(ret(SECCOMP_RET_TRACE))
    if kill_on_wrong_arch:
        program.append(ret(SECCOMP_RET_KILL))
    return program


def pack_program(program: Sequence[BpfInstruction]) -> bytes:
    """Serialize to the bytes ``struct sock_fprog.filter`` points at."""
    return b"".join(instruction.pack() for instruction in program)


def simulate(program: Sequence[BpfInstruction], *, nr: int, arch: int = AUDIT_ARCH_X86_64) -> int:
    """Interpret the filter against a seccomp_data — used by tests.

    Implements the handful of classic-BPF opcodes the builder emits.
    Returns the SECCOMP_RET_* action value.
    """
    accumulator = 0
    pc = 0
    data = {SECCOMP_DATA_NR: nr, SECCOMP_DATA_ARCH: arch}
    while pc < len(program):
        instruction = program[pc]
        code = instruction.code
        if code == BPF_LD | BPF_W | BPF_ABS:
            accumulator = data.get(instruction.k, 0)
            pc += 1
        elif code == BPF_JMP | BPF_JEQ | BPF_K:
            if accumulator == instruction.k:
                pc += 1 + instruction.jt
            else:
                pc += 1 + instruction.jf
            continue
        elif code == BPF_RET | BPF_K:
            return instruction.k
        else:
            raise ValueError(f"unsupported BPF opcode {code:#x}")
    raise ValueError("BPF program fell off the end")
