"""Pluggable execution-backend registry.

Loupe's portability comes from the :class:`~repro.core.runner.ExecutionBackend`
protocol, but until now *choosing* a backend was hard-wired into each
caller (the CLI special-cased ``--exec``, the studies constructed
``SimBackend`` by hand). This registry makes the choice a name:

* backend packages **self-register** a factory at import time —
  :mod:`repro.appsim` registers ``appsim``, :mod:`repro.ptracer`
  registers ``ptrace`` — and third-party backends can do the same with
  :func:`register_backend`;
* :func:`resolve_backend` maps a name to its factory, importing the
  built-in packages on first use so the registry is always populated;
* a factory turns one :class:`~repro.api.session.AnalysisRequest` into
  a :class:`ResolvedTarget` — the concrete backend/workload pair plus
  the identity facts the database records.

This is what the CLI's ``loupe analyze --backend NAME`` flag resolves
through, and the substrate for the roadmap's multi-backend fan-out
(one request, several registered backends).
"""

from __future__ import annotations

import dataclasses
import importlib
import threading
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

from repro.core.runner import ExecutionBackend
from repro.core.workload import Workload
from repro.errors import LoupeError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import AnalysisRequest


class BackendRegistryError(LoupeError):
    """A backend registration is invalid (duplicate or malformed name)."""


class UnknownBackendError(BackendRegistryError):
    """No backend is registered under the requested name."""

    def __init__(self, name: str, available: tuple[str, ...]) -> None:
        super().__init__(
            f"unknown backend {name!r}; available: "
            f"{', '.join(available) or 'none'}"
        )
        self.name = name
        self.available = available


class BackendResolutionError(BackendRegistryError):
    """A registered factory could not build a target from the request
    (unknown app, missing argv, unavailable substrate, ...)."""


@dataclasses.dataclass(frozen=True)
class ResolvedTarget:
    """A concrete analysis target a factory produced from a request."""

    backend: ExecutionBackend
    workload: Workload
    app: str
    app_version: str = ""


#: A factory maps one request to a concrete target. Factories must be
#: cheap to *register*; all heavy lifting (building app models,
#: probing ptrace availability) belongs inside the call.
BackendFactory = Callable[["AnalysisRequest"], ResolvedTarget]

_LOCK = threading.Lock()
_FACTORIES: dict[str, BackendFactory] = {}

#: Packages that self-register a backend when imported.
_BUILTIN_BACKEND_MODULES = ("repro.appsim", "repro.ptracer")
_bootstrapped = False
_bootstrapping = False
_BOOTSTRAP_LOCK = threading.RLock()


def register_backend(
    name: str, factory: BackendFactory, *, replace: bool = False
) -> BackendFactory:
    """Register *factory* under *name*.

    Re-registering an existing name raises unless ``replace=True`` (or
    the factory object is identical, which makes module re-imports
    harmless). Returns the factory so the call composes as a one-liner.
    """
    if not name or not name.strip():
        raise BackendRegistryError("backend name must be non-empty")
    with _LOCK:
        current = _FACTORIES.get(name)
        if current is not None and current is not factory and not replace:
            raise BackendRegistryError(
                f"backend {name!r} is already registered "
                f"(pass replace=True to override)"
            )
        _FACTORIES[name] = factory
    return factory


def unregister_backend(name: str) -> None:
    """Remove *name* from the registry (no-op when absent)."""
    with _LOCK:
        _FACTORIES.pop(name, None)


def _bootstrap() -> None:
    """Import the built-in backend packages once so they self-register.

    Thread-safe: a campaign's very first backend resolution may happen
    on several session workers at once (``analyze_many(jobs=N)`` on a
    fresh process), and every one of them must block until the
    built-ins are registered — a completion flag set *before* the
    imports would let the losers resolve against an empty registry.
    The importing thread itself may re-enter (the packages' own
    imports touch this module); the in-progress flag lets it fall
    through instead of deadlocking on the reentrant lock.
    """
    global _bootstrapped, _bootstrapping
    if _bootstrapped:
        return
    with _BOOTSTRAP_LOCK:
        if _bootstrapped or _bootstrapping:
            return
        _bootstrapping = True
        try:
            for module in _BUILTIN_BACKEND_MODULES:
                importlib.import_module(module)
            _bootstrapped = True
        finally:
            _bootstrapping = False


def available_backends() -> tuple[str, ...]:
    """Sorted names every registered backend answers to."""
    _bootstrap()
    with _LOCK:
        return tuple(sorted(_FACTORIES))


def resolve_backend(name: str) -> BackendFactory:
    """The factory registered under *name*.

    Raises :class:`UnknownBackendError` (listing what *is* available)
    when nothing answers to the name.
    """
    _bootstrap()
    with _LOCK:
        factory = _FACTORIES.get(name)
    if factory is None:
        raise UnknownBackendError(name, available_backends())
    return factory


def create_target(name: str, request: Any) -> ResolvedTarget:
    """Resolve *name* and build the target for *request* in one step."""
    return resolve_backend(name)(request)
