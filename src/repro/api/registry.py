"""Pluggable execution-backend registry.

Loupe's portability comes from the :class:`~repro.core.runner.ExecutionBackend`
protocol, but until now *choosing* a backend was hard-wired into each
caller (the CLI special-cased ``--exec``, the studies constructed
``SimBackend`` by hand). This registry makes the choice a name:

* backend packages **self-register** a factory at import time —
  :mod:`repro.appsim` registers ``appsim``, :mod:`repro.ptracer`
  registers ``ptrace``, :mod:`repro.staticx` registers the ``static``
  footprint pseudo-backend — and third-party backends can do the same
  with :func:`register_backend`;
* :func:`resolve_backend` maps a name to its factory, importing the
  built-in packages on first use so the registry is always populated;
* a factory turns one :class:`~repro.api.session.AnalysisRequest` into
  a :class:`ResolvedTarget` — the concrete backend/workload pair plus
  the identity facts the database records.

This is what the CLI's ``loupe analyze --backend NAME`` flag resolves
through, and — via :func:`parse_backend_names` /
:func:`create_targets` — what the multi-backend fan-out addresses:
one request, a comma list of registered backends (``--backend
appsim,ptrace``), one resolved target per unique name.
"""

from __future__ import annotations

import dataclasses
import importlib
import threading
from collections.abc import Callable, Iterable
from typing import TYPE_CHECKING, Any

from repro.core.runner import ExecutionBackend
from repro.core.workload import Workload
from repro.errors import LoupeError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import AnalysisRequest


class BackendRegistryError(LoupeError):
    """A backend registration is invalid (duplicate or malformed name)."""


class UnknownBackendError(BackendRegistryError):
    """No backend is registered under the requested name."""

    def __init__(self, name: str, available: tuple[str, ...]) -> None:
        super().__init__(
            f"unknown backend {name!r}; available: "
            f"{', '.join(available) or 'none'}"
        )
        self.name = name
        self.available = available


class BackendResolutionError(BackendRegistryError):
    """A registered factory could not build a target from the request
    (unknown app, missing argv, unavailable substrate, ...)."""


@dataclasses.dataclass(frozen=True)
class ResolvedTarget:
    """A concrete analysis target a factory produced from a request."""

    backend: ExecutionBackend
    workload: Workload
    app: str
    app_version: str = ""


#: A factory maps one request to a concrete target. Factories must be
#: cheap to *register*; all heavy lifting (building app models,
#: probing ptrace availability) belongs inside the call.
BackendFactory = Callable[["AnalysisRequest"], ResolvedTarget]

_LOCK = threading.Lock()
_FACTORIES: dict[str, BackendFactory] = {}

#: Packages that self-register a backend when imported.
_BUILTIN_BACKEND_MODULES = ("repro.appsim", "repro.ptracer", "repro.staticx")
_bootstrapped = False
_bootstrapping = False
_BOOTSTRAP_LOCK = threading.RLock()


def register_backend(
    name: str, factory: BackendFactory, *, replace: bool = False
) -> BackendFactory:
    """Register *factory* under *name*.

    Re-registering an existing name raises unless ``replace=True`` (or
    the factory object is identical, which makes module re-imports
    harmless). Returns the factory so the call composes as a one-liner.

    Names must be addressable by the spec grammar
    (:func:`parse_backend_names` splits on commas and strips
    surrounding whitespace), so a comma or leading/trailing whitespace
    in a name — which no spec could ever resolve back to it — is
    rejected at registration time rather than discovered as an
    unaddressable registry entry later.
    """
    if not name or not name.strip():
        raise BackendRegistryError("backend name must be non-empty")
    if "," in name or name != name.strip():
        raise BackendRegistryError(
            f"backend name {name!r} is not addressable: names may not "
            f"contain commas or leading/trailing whitespace (the "
            f"backend-spec grammar splits on commas and strips names)"
        )
    with _LOCK:
        current = _FACTORIES.get(name)
        if current is not None and current is not factory and not replace:
            raise BackendRegistryError(
                f"backend {name!r} is already registered "
                f"(pass replace=True to override)"
            )
        _FACTORIES[name] = factory
    return factory


def unregister_backend(name: str) -> None:
    """Remove *name* from the registry (no-op when absent)."""
    with _LOCK:
        _FACTORIES.pop(name, None)


def register_chaos(
    inner: str,
    spec: "object | None" = None,
    *,
    name: "str | None" = None,
    replace: bool = False,
) -> str:
    """Register a chaos-wrapped variant of backend *inner*.

    The new entry (``chaos:<inner>`` by default, or *name*) resolves
    exactly like *inner* and then wraps the resulting execution
    backend in a :class:`~repro.core.faults.ChaosBackend` carrying
    *spec* (a :class:`~repro.core.faults.ChaosSpec`; ``None`` means
    the spec's inert defaults). Injection is seeded and deterministic
    per run identity, so a chaos campaign is exactly reproducible —
    this is the harness the fault-tolerance tests and the CI
    fault-smoke job drive. Returns the registered name.

    Resolution of *inner* is deferred to analysis time (the wrapper
    factory resolves it per request), so registration order between
    the two names never matters.
    """
    from repro.core.faults import ChaosBackend, ChaosSpec

    chaos_spec = spec if spec is not None else ChaosSpec()
    if not isinstance(chaos_spec, ChaosSpec):
        raise BackendRegistryError(
            f"register_chaos expects a ChaosSpec, got {type(spec).__name__}"
        )
    registered = name if name is not None else f"chaos:{inner}"

    def factory(request: "AnalysisRequest") -> ResolvedTarget:
        target = resolve_backend(inner)(request)
        return dataclasses.replace(
            target, backend=ChaosBackend(target.backend, chaos_spec)
        )

    register_backend(registered, factory, replace=replace)
    return registered


def _bootstrap() -> None:
    """Import the built-in backend packages once so they self-register.

    Thread-safe: a campaign's very first backend resolution may happen
    on several session workers at once (``analyze_many(jobs=N)`` on a
    fresh process), and every one of them must block until the
    built-ins are registered — a completion flag set *before* the
    imports would let the losers resolve against an empty registry.
    The importing thread itself may re-enter (the packages' own
    imports touch this module); the in-progress flag lets it fall
    through instead of deadlocking on the reentrant lock.
    """
    global _bootstrapped, _bootstrapping
    if _bootstrapped:
        return
    with _BOOTSTRAP_LOCK:
        if _bootstrapped or _bootstrapping:
            return
        _bootstrapping = True
        try:
            for module in _BUILTIN_BACKEND_MODULES:
                importlib.import_module(module)
            _bootstrapped = True
        finally:
            _bootstrapping = False


def available_backends() -> tuple[str, ...]:
    """Sorted names every registered backend answers to."""
    _bootstrap()
    with _LOCK:
        return tuple(sorted(_FACTORIES))


def resolve_backend(name: str) -> BackendFactory:
    """The factory registered under *name*.

    Raises :class:`UnknownBackendError` (listing what *is* available)
    when nothing answers to the name.
    """
    _bootstrap()
    with _LOCK:
        factory = _FACTORIES.get(name)
    if factory is None:
        raise UnknownBackendError(name, available_backends())
    return factory


def parse_backend_names(spec: "str | Iterable[str]") -> tuple[str, ...]:
    """Normalize a backend spec into unique, order-preserving names.

    *spec* is either one comma-separated string (``"appsim,ptrace"``)
    or an iterable of names (each of which may itself carry commas —
    the CLI and :class:`~repro.api.session.AnalysisRequest` both feed
    this). Whitespace around names is stripped; duplicates collapse
    deterministically to their first occurrence, so
    ``"appsim,ptrace,appsim"`` resolves to ``("appsim", "ptrace")``
    on every call. Empty names (``"appsim,"``, ``""``) raise
    :class:`BackendRegistryError` — a silent drop would hide a typo'd
    comma list.
    """
    if isinstance(spec, str):
        entries = spec.split(",")
    else:
        entries = [
            part for entry in spec for part in str(entry).split(",")
        ]
    names: list[str] = []
    for entry in entries:
        name = entry.strip()
        if not name:
            raise BackendRegistryError(
                f"backend name must be non-empty (spec: {spec!r})"
            )
        if name not in names:
            names.append(name)
    if not names:
        raise BackendRegistryError("at least one backend name is required")
    return tuple(names)


def create_targets(
    spec: "str | Iterable[str]", request: Any
) -> tuple[ResolvedTarget, ...]:
    """Resolve a backend spec and build one target per unique name.

    The multi-backend entry point: ``create_targets("appsim,ptrace",
    request)`` hands the same request to each named factory and
    returns the targets in spec order (duplicates deduplicated by
    :func:`parse_backend_names`). An unknown name anywhere in the
    spec raises :class:`UnknownBackendError` before *any* factory
    runs, so a typo cannot leave a campaign half-resolved.
    """
    names = parse_backend_names(spec)
    factories = [resolve_backend(name) for name in names]
    return tuple(
        factory(request) for factory in factories
    )


def create_target(name: "str | Iterable[str]", request: Any) -> ResolvedTarget:
    """Resolve *name* and build the target for *request* in one step.

    Accepts any spec :func:`parse_backend_names` does, as long as it
    resolves to exactly one backend (``"appsim"`` and
    ``"appsim,appsim"`` both do); a spec naming several distinct
    backends belongs to :func:`create_targets` and is refused here.
    """
    names = parse_backend_names(name)
    if len(names) != 1:
        raise BackendRegistryError(
            f"create_target resolves exactly one backend, got "
            f"{len(names)} from {name!r}; use create_targets for a "
            f"multi-backend spec"
        )
    return resolve_backend(names[0])(request)
